// kanond_client: command-line client for the kanond service (docs/serving.md).
//
// Exit codes: 0 success, 1 usage/transport error, 2 typed server error,
// 3 the awaited job finished in the `failed` state.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "kanon/common/flags.h"
#include "kanon/serve/client.h"
#include "kanon/serve/json.h"

namespace {

using kanon::FlagParser;
using kanon::Result;
using kanon::Status;
using kanon::serve::Client;
using kanon::serve::Json;

void PrintUsage() {
  std::fprintf(stderr, R"(kanond_client: client for the kanond service

Usage: kanond_client --port=N [--host=127.0.0.1] <command> [flags]

Commands:
  ping
  submit   --csv=FILE [--spec=FILE] [--k=N] [--method=NAME] [--distance=D]
           [--measure=M] [--attr-weights=w1,w2,...] [--timeout-ms=N]
           [--max-steps=N] [--publish-as=NAME] [--capture-trace] [--wait]
  poll     --job=N
  wait     --job=N [--wait-timeout-ms=N]
  fetch    --job=N [--output=FILE]      (CSV to stdout without --output)
  trace    --job=N [--output=FILE]      (Chrome/Perfetto trace JSON of a
                                         job submitted with --capture-trace;
                                         stdout without --output)
  flight   [--output=FILE]              (the daemon's live flight-recorder
                                         ring as JSON lines)
  cancel   --job=N
  register --name=NAME --csv=FILE --generalized=FILE [--spec=FILE]
  verify   --table=NAME --k=N [--notion=k-anonymity|1k|k1|kk|global-1k]
  attack   --table=NAME --k=N
  metrics
  shutdown

Every command prints the server's JSON result on stdout (except fetch,
which emits the raw CSV).
)");
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

/// Builds submit params from flags; exits via Status on unreadable files.
Result<Json> SubmitParams(const FlagParser& flags) {
  const std::string csv_path = flags.GetString("csv", "");
  if (csv_path.empty()) {
    return Status::InvalidArgument("submit requires --csv=FILE");
  }
  Json params = Json::Object();
  KANON_ASSIGN_OR_RETURN(std::string csv, ReadFileToString(csv_path));
  params.Set("csv", Json::Str(std::move(csv)));
  const std::string spec_path = flags.GetString("spec", "");
  if (!spec_path.empty()) {
    KANON_ASSIGN_OR_RETURN(std::string spec, ReadFileToString(spec_path));
    params.Set("spec", Json::Str(std::move(spec)));
  }
  if (flags.Has("k")) params.Set("k", Json::Number(flags.GetInt("k", 5)));
  if (flags.Has("method")) {
    params.Set("method", Json::Str(flags.GetString("method", "")));
  }
  if (flags.Has("distance")) {
    params.Set("distance", Json::Str(flags.GetString("distance", "")));
  }
  if (flags.Has("measure")) {
    params.Set("measure", Json::Str(flags.GetString("measure", "")));
  }
  if (flags.Has("attr-weights")) {
    Json weights = Json::Array();
    std::istringstream list(flags.GetString("attr-weights", ""));
    std::string item;
    while (std::getline(list, item, ',')) {
      weights.Push(Json::Number(std::stod(item)));
    }
    params.Set("attr_weights", std::move(weights));
  }
  if (flags.Has("timeout-ms")) {
    params.Set("timeout_ms", Json::Number(flags.GetInt("timeout-ms", 0)));
  }
  if (flags.Has("max-steps")) {
    params.Set("max_steps", Json::Number(flags.GetInt("max-steps", 0)));
  }
  if (flags.Has("debug-sleep-ms")) {
    params.Set("debug_sleep_ms",
               Json::Number(flags.GetInt("debug-sleep-ms", 0)));
  }
  if (flags.Has("publish-as")) {
    params.Set("publish_as", Json::Str(flags.GetString("publish-as", "")));
  }
  if (flags.GetBool("capture-trace", false)) {
    params.Set("capture_trace", Json::Bool(true));
  }
  return params;
}

Json JobParams(const FlagParser& flags) {
  Json params = Json::Object();
  params.Set("job_id", Json::Number(flags.GetInt("job", 0)));
  return params;
}

int FailTransport(const Status& status) {
  std::fprintf(stderr, "kanond_client: %s\n", status.ToString().c_str());
  return 1;
}

/// Writes `data` to --output, or stdout when the flag is absent.
int EmitRaw(const FlagParser& flags, const std::string& data) {
  const std::string output = flags.GetString("output", "");
  if (output.empty()) {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return 0;
  }
  std::ofstream out(output, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return FailTransport(Status::IOError("cannot write " + output));
  return 0;
}

/// Prints the result (or typed error) of one call; returns the exit code.
int Finish(const Result<Json>& response) {
  if (!response.ok()) {
    // Client::Call turns typed server errors into Internal("<code>: ...").
    std::fprintf(stderr, "kanond_client: %s\n",
                 response.status().ToString().c_str());
    return response.status().code() == kanon::StatusCode::kInternal ? 2 : 1;
  }
  std::printf("%s\n", response.value().Dump().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return FailTransport(parsed);
  if (flags.GetBool("help", false) || flags.positional().size() != 1) {
    PrintUsage();
    return flags.GetBool("help", false) ? 0 : 1;
  }
  const std::string command = flags.positional()[0];
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "kanond_client: --port=N is required\n");
    return 1;
  }
  const int recv_timeout_ms =
      static_cast<int>(flags.GetInt("recv-timeout-ms", 120000));

  Result<Client> connected = Client::Connect(host, port, recv_timeout_ms);
  if (!connected.ok()) return FailTransport(connected.status());
  Client client = std::move(connected).value();

  if (command == "ping" || command == "metrics" || command == "shutdown") {
    return Finish(client.Call(command, Json::Object()));
  }
  if (command == "submit") {
    Result<Json> params = SubmitParams(flags);
    if (!params.ok()) return FailTransport(params.status());
    Result<Json> result = client.Call("submit", std::move(params).value());
    if (!result.ok() || !flags.GetBool("wait", false)) return Finish(result);
    const uint64_t job_id =
        static_cast<uint64_t>(result.value().GetInt("job_id", 0));
    Result<Json> final_state = client.WaitJob(
        job_id, /*poll_interval_ms=*/20,
        static_cast<int>(flags.GetInt("wait-timeout-ms", 120000)));
    const int code = Finish(final_state);
    if (code != 0) return code;
    return final_state.value().GetString("state", "") == "done" ? 0 : 3;
  }
  if (command == "poll" || command == "cancel") {
    return Finish(client.Call(command, JobParams(flags)));
  }
  if (command == "wait") {
    Result<Json> final_state = client.WaitJob(
        static_cast<uint64_t>(flags.GetInt("job", 0)),
        /*poll_interval_ms=*/20,
        static_cast<int>(flags.GetInt("wait-timeout-ms", 120000)));
    const int code = Finish(final_state);
    if (code != 0) return code;
    return final_state.value().GetString("state", "") == "done" ? 0 : 3;
  }
  if (command == "fetch") {
    Result<Json> result = client.Call("fetch", JobParams(flags));
    if (!result.ok()) return Finish(result);
    return EmitRaw(flags, result.value().GetString("csv", ""));
  }
  if (command == "trace") {
    Result<Json> result = client.Call("fetch_trace", JobParams(flags));
    if (!result.ok()) return Finish(result);
    return EmitRaw(flags, result.value().GetString("trace", ""));
  }
  if (command == "flight") {
    Result<Json> result = client.Call("flight_recorder", Json::Object());
    if (!result.ok()) return Finish(result);
    // One JSON object per line, like the dump-file format, so the same
    // tooling reads both.
    const Json* events = result.value().Find("events");
    std::string lines;
    if (events != nullptr && events->is_array()) {
      for (const Json& event : events->array_items()) {
        lines += event.Dump();
        lines += '\n';
      }
    }
    return EmitRaw(flags, lines);
  }
  if (command == "register") {
    Json params = Json::Object();
    params.Set("name", Json::Str(flags.GetString("name", "")));
    Result<std::string> csv = ReadFileToString(flags.GetString("csv", ""));
    if (!csv.ok()) return FailTransport(csv.status());
    params.Set("csv", Json::Str(std::move(csv).value()));
    Result<std::string> generalized =
        ReadFileToString(flags.GetString("generalized", ""));
    if (!generalized.ok()) return FailTransport(generalized.status());
    params.Set("generalized_csv", Json::Str(std::move(generalized).value()));
    const std::string spec_path = flags.GetString("spec", "");
    if (!spec_path.empty()) {
      Result<std::string> spec = ReadFileToString(spec_path);
      if (!spec.ok()) return FailTransport(spec.status());
      params.Set("spec", Json::Str(std::move(spec).value()));
    }
    return Finish(client.Call("register_table", std::move(params)));
  }
  if (command == "verify" || command == "attack") {
    Json params = Json::Object();
    params.Set("table", Json::Str(flags.GetString("table", "")));
    params.Set("k", Json::Number(flags.GetInt("k", 0)));
    if (command == "verify" && flags.Has("notion")) {
      params.Set("notion", Json::Str(flags.GetString("notion", "")));
    }
    return Finish(client.Call(command, std::move(params)));
  }
  std::fprintf(stderr, "kanond_client: unknown command '%s'\n",
               command.c_str());
  PrintUsage();
  return 1;
}
