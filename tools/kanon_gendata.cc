// Synthetic-workload generator: writes one of the library's generator
// datasets as a plain CSV plus its generalization spec, so the sharded
// out-of-core pipeline (and the benches / CI fault-injection jobs) can
// exercise file ingestion at any scale without shipping data files.
//
//   kanon_gendata --dataset=art|adult|cmc --rows=N [--seed=1]
//                 --output=data.csv [--spec-out=data.spec]
//
// The CSV carries the schema attributes only (no class column): it is the
// exact input format kanon_cli ingests. Output is deterministic in
// (dataset, rows, seed).
#include <cstdio>
#include <fstream>
#include <string>

#include "kanon/common/flags.h"
#include "kanon/datasets/adult.h"
#include "kanon/datasets/art.h"
#include "kanon/datasets/cmc.h"
#include "kanon/generalization/scheme_spec.h"

namespace kanon {
namespace {

int RealMain(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 2;
  }
  const std::string dataset_name = flags.GetString("dataset", "art");
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 0));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string output = flags.GetString("output", "");
  const std::string spec_out = flags.GetString("spec-out", "");
  if (rows == 0 || output.empty()) {
    std::fprintf(stderr,
                 "usage: kanon_gendata --dataset=art|adult|cmc --rows=N"
                 " [--seed=1] --output=data.csv [--spec-out=data.spec]\n");
    return 2;
  }

  Result<Workload> workload = Status::InvalidArgument(
      "unknown --dataset '" + dataset_name + "' (art, adult, cmc)");
  if (dataset_name == "art") workload = MakeArtWorkload(rows, seed);
  if (dataset_name == "adult") workload = MakeAdultWorkload(rows, seed);
  if (dataset_name == "cmc") workload = MakeCmcWorkload(rows, seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = workload->dataset;
  const Schema& schema = dataset.schema();

  std::ofstream out(output);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 output.c_str());
    return 1;
  }
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j > 0) out << ',';
    out << schema.attribute(j).name();
  }
  out << '\n';
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j > 0) out << ',';
      out << schema.attribute(j).label(dataset.at(i, j));
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", output.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu rows x %zu attributes to %s\n",
               dataset.num_rows(), schema.num_attributes(), output.c_str());

  if (!spec_out.empty()) {
    std::ofstream spec(spec_out);
    spec << FormatSchemeSpec(*workload->scheme);
    spec.flush();
    if (!spec) {
      std::fprintf(stderr, "error writing %s\n", spec_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote spec %s\n", spec_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::RealMain(argc, argv); }
