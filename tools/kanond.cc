// kanond: the k-anonymization service daemon (docs/serving.md).
//
// Loads nothing per request: parsed generalization hierarchies, precomputed
// loss tables and published tables stay resident across requests, while the
// bounded job queue and worker pool run the existing pipelines under
// per-request deadlines forked from the server's own budget. SIGTERM (or
// the `shutdown` method) drains gracefully: every admitted job completes,
// connected clients get a grace window to collect results, then the process
// exits 0.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>

#include "kanon/common/flags.h"
#include "kanon/common/run_context.h"
#include "kanon/serve/server.h"
#include "kanon/shard/shard_io.h"
#include "kanon/telemetry/metrics.h"

namespace {

kanon::serve::Server* g_server = nullptr;

// Only an atomic store happens here — async-signal-safe by construction.
void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

void PrintUsage() {
  std::fprintf(stderr, R"(kanond: k-anonymization service daemon

Usage: kanond [flags]
  --port=N              TCP port (default 0 = ephemeral; see --port-file)
  --bind=ADDR           Bind address (default 127.0.0.1)
  --port-file=PATH      Write the bound port here (atomically) once listening
  --workers=N           Job worker threads (default 1)
  --queue-depth=N       Jobs allowed to wait; beyond this submissions get a
                        typed `overloaded` error (default 8)
  --job-threads=N       Engine threads per job (default 1)
  --default-timeout-ms=N  Per-job wall-clock budget when a request names
                        none (default 0 = unbounded)
  --budget-seconds=X    Wall-clock budget for the whole server; jobs fork
                        from it and degrade when it runs out (default off)
  --max-frame-mb=N      Largest accepted request frame (default 64)
  --tables=N            Published-table store capacity (default 32)
  --scheme-cache=N      Interned hierarchy shapes kept hot (default 16)
  --drain-grace-ms=N    How long connections may linger after drain to
                        collect results (default 5000)
  --stats-json=PATH     Write the full metrics JSON here after drain
  --test-hooks          Honor debug_sleep_ms job params (tests only)
)");
}

}  // namespace

int main(int argc, char** argv) {
  kanon::FlagParser flags;
  kanon::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kanond: %s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }

  kanon::serve::ServerOptions options;
  options.bind_address = flags.GetString("bind", "127.0.0.1");
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max-frame-mb", 64)) << 20;
  options.table_store_capacity =
      static_cast<size_t>(flags.GetInt("tables", 32));
  options.scheme_cache_capacity =
      static_cast<size_t>(flags.GetInt("scheme-cache", 16));
  options.drain_grace_ms = flags.GetInt("drain-grace-ms", 5000);
  options.jobs.workers = static_cast<size_t>(flags.GetInt("workers", 1));
  options.jobs.queue_bound =
      static_cast<size_t>(flags.GetInt("queue-depth", 8));
  options.jobs.job_threads =
      static_cast<int>(flags.GetInt("job-threads", 1));
  options.jobs.default_timeout_ms = flags.GetInt("default-timeout-ms", 0);
  options.jobs.enable_test_hooks = flags.GetBool("test-hooks", false);

  kanon::MetricsRegistry metrics;
  kanon::RunContext server_context;
  const double budget_seconds = flags.GetDouble("budget-seconds", 0.0);
  if (budget_seconds > 0.0) server_context.ArmDeadline(budget_seconds);

  kanon::serve::Server server(options, &server_context, &metrics);
  kanon::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "kanond: %s\n", started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    // Atomic so a fixture polling the file never reads a half-written port.
    kanon::Status wrote = kanon::shard::WriteFileAtomic(
        port_file, std::to_string(server.port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "kanond: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "kanond: listening on %s:%d (workers=%zu queue=%zu)\n",
               options.bind_address.c_str(), server.port(),
               options.jobs.workers, options.jobs.queue_bound);

  kanon::Status ran = server.Run();
  g_server = nullptr;
  if (!ran.ok()) {
    std::fprintf(stderr, "kanond: %s\n", ran.ToString().c_str());
    return 1;
  }

  const std::string stats_json = flags.GetString("stats-json", "");
  if (!stats_json.empty()) {
    kanon::Status wrote =
        kanon::shard::WriteFileAtomic(stats_json, metrics.ToJson(true));
    if (!wrote.ok()) {
      std::fprintf(stderr, "kanond: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "kanond: drained, exiting\n");
  return 0;
}
