// kanond: the k-anonymization service daemon (docs/serving.md).
//
// Loads nothing per request: parsed generalization hierarchies, precomputed
// loss tables and published tables stay resident across requests, while the
// bounded job queue and worker pool run the existing pipelines under
// per-request deadlines forked from the server's own budget. SIGTERM (or
// the `shutdown` method) drains gracefully: every admitted job completes,
// connected clients get a grace window to collect results, then the process
// exits 0.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "kanon/common/flags.h"
#include "kanon/common/run_context.h"
#include "kanon/serve/http_exporter.h"
#include "kanon/serve/server.h"
#include "kanon/shard/shard_io.h"
#include "kanon/telemetry/flight_recorder.h"
#include "kanon/telemetry/log.h"
#include "kanon/telemetry/metrics.h"

#ifndef KANON_VERSION
#define KANON_VERSION "0.0.0"
#endif
#ifndef KANON_GIT_DESCRIBE
#define KANON_GIT_DESCRIBE "unknown"
#endif

namespace {

kanon::serve::Server* g_server = nullptr;

// Only an atomic store happens here — async-signal-safe by construction.
void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

void PrintUsage() {
  std::fprintf(stderr, R"(kanond: k-anonymization service daemon

Usage: kanond [flags]
  --port=N              TCP port (default 0 = ephemeral; see --port-file)
  --bind=ADDR           Bind address (default 127.0.0.1)
  --port-file=PATH      Write the bound port here (atomically) once listening
  --workers=N           Job worker threads (default 1)
  --queue-depth=N       Jobs allowed to wait; beyond this submissions get a
                        typed `overloaded` error (default 8)
  --job-threads=N       Engine threads per job (default 1)
  --default-timeout-ms=N  Per-job wall-clock budget when a request names
                        none (default 0 = unbounded)
  --budget-seconds=X    Wall-clock budget for the whole server; jobs fork
                        from it and degrade when it runs out (default off)
  --max-frame-mb=N      Largest accepted request frame (default 64)
  --tables=N            Published-table store capacity (default 32)
  --scheme-cache=N      Interned hierarchy shapes kept hot (default 16)
  --drain-grace-ms=N    How long connections may linger after drain to
                        collect results (default 5000)
  --stats-json=PATH     Write the full metrics JSON here after drain
  --test-hooks          Honor debug_sleep_ms job params (tests only)

Observability:
  --log-json=TARGET     Structured JSON-lines log: a file path, or `stderr`
                        (default off)
  --log-level=LEVEL     debug|info|warn|error (default info)
  --log-rate-limit=N    Max log records/sec; excess is dropped and counted
                        in a `log.rate_limited` summary (default 0 = off)
  --prom-port=N         Serve `GET /metrics` (Prometheus text) and
                        `GET /healthz` on this HTTP port (0 = ephemeral;
                        flag absent = exporter off)
  --prom-port-file=PATH Write the bound exporter port here (atomically)
  --flight-capacity=N   Flight-recorder ring size in events (default 512)
  --flight-dump=PATH    On a fatal signal, dump the flight-recorder ring
                        here before dying (default off)
)");
}

}  // namespace

int main(int argc, char** argv) {
  kanon::FlagParser flags;
  kanon::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kanond: %s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }

  kanon::serve::ServerOptions options;
  options.bind_address = flags.GetString("bind", "127.0.0.1");
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max-frame-mb", 64)) << 20;
  options.table_store_capacity =
      static_cast<size_t>(flags.GetInt("tables", 32));
  options.scheme_cache_capacity =
      static_cast<size_t>(flags.GetInt("scheme-cache", 16));
  options.drain_grace_ms = flags.GetInt("drain-grace-ms", 5000);
  options.jobs.workers = static_cast<size_t>(flags.GetInt("workers", 1));
  options.jobs.queue_bound =
      static_cast<size_t>(flags.GetInt("queue-depth", 8));
  options.jobs.job_threads =
      static_cast<int>(flags.GetInt("job-threads", 1));
  options.jobs.default_timeout_ms = flags.GetInt("default-timeout-ms", 0);
  options.jobs.enable_test_hooks = flags.GetBool("test-hooks", false);

  // Observability plane: structured log, crash flight recorder, Prometheus
  // exporter. All optional; a daemon started without the flags pays only
  // null-pointer branches.
  std::unique_ptr<kanon::Logger> logger;
  const std::string log_target = flags.GetString("log-json", "");
  if (!log_target.empty()) {
    kanon::Logger::Options log_options;
    const std::string level_name = flags.GetString("log-level", "info");
    if (!kanon::ParseLogLevel(level_name, &log_options.min_level)) {
      std::fprintf(stderr, "kanond: unknown --log-level '%s'\n",
                   level_name.c_str());
      return 1;
    }
    log_options.rate_limit_per_sec = flags.GetDouble("log-rate-limit", 0.0);
    kanon::Result<std::unique_ptr<kanon::Logger>> opened =
        kanon::Logger::Open(log_target, log_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "kanond: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    logger = std::move(*opened);
  }
  options.logger = logger.get();

  kanon::FlightRecorder flight(
      static_cast<size_t>(flags.GetInt("flight-capacity", 512)));
  options.flight = &flight;
  const std::string flight_dump = flags.GetString("flight-dump", "");
  if (!flight_dump.empty()) {
    kanon::FlightRecorder::InstallCrashHandler(&flight, flight_dump);
  }

  kanon::MetricsRegistry metrics;
  metrics.SetInfo("kanond_build_info", {{"version", KANON_VERSION},
                                        {"git", KANON_GIT_DESCRIBE}});
  kanon::RunContext server_context;
  const double budget_seconds = flags.GetDouble("budget-seconds", 0.0);
  if (budget_seconds > 0.0) server_context.ArmDeadline(budget_seconds);

  kanon::serve::Server server(options, &server_context, &metrics);
  kanon::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "kanond: %s\n", started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  // The scrape listener starts — and its port file lands — before the main
  // port file below, so a fixture that polls for the main port may assume
  // the exporter is already serving.
  std::unique_ptr<kanon::serve::HttpExporter> exporter;
  if (flags.Has("prom-port")) {
    kanon::serve::HttpExporterOptions prom;
    prom.bind_address = options.bind_address;
    prom.port = static_cast<int>(flags.GetInt("prom-port", 0));
    prom.metrics = &metrics;
    prom.flight = &flight;
    prom.before_scrape = [&server] { server.RefreshUptime(); };
    exporter = std::make_unique<kanon::serve::HttpExporter>(std::move(prom));
    kanon::Status prom_started = exporter->Start();
    if (!prom_started.ok()) {
      std::fprintf(stderr, "kanond: %s\n", prom_started.ToString().c_str());
      return 1;
    }
    const std::string prom_port_file = flags.GetString("prom-port-file", "");
    if (!prom_port_file.empty()) {
      kanon::Status wrote = kanon::shard::WriteFileAtomic(
          prom_port_file, std::to_string(exporter->port()) + "\n");
      if (!wrote.ok()) {
        std::fprintf(stderr, "kanond: %s\n", wrote.ToString().c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "kanond: metrics exporter on %s:%d\n",
                 options.bind_address.c_str(), exporter->port());
  }

  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    // Atomic so a fixture polling the file never reads a half-written port.
    kanon::Status wrote = kanon::shard::WriteFileAtomic(
        port_file, std::to_string(server.port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "kanond: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "kanond: listening on %s:%d (workers=%zu queue=%zu)\n",
               options.bind_address.c_str(), server.port(),
               options.jobs.workers, options.jobs.queue_bound);
  KANON_LOG_EVENT(logger.get(), &flight, kanon::LogLevel::kInfo,
                  "daemon.started",
                  kanon::LogField::Int("port", server.port()),
                  kanon::LogField::U64("workers", options.jobs.workers),
                  kanon::LogField::Str("version", KANON_VERSION),
                  kanon::LogField::Str("git", KANON_GIT_DESCRIBE));

  kanon::Status ran = server.Run();
  g_server = nullptr;
  if (exporter != nullptr) exporter->Stop();
  if (!ran.ok()) {
    std::fprintf(stderr, "kanond: %s\n", ran.ToString().c_str());
    return 1;
  }

  const std::string stats_json = flags.GetString("stats-json", "");
  if (!stats_json.empty()) {
    server.RefreshUptime();
    kanon::Status wrote =
        kanon::shard::WriteFileAtomic(stats_json, metrics.ToJson(true));
    if (!wrote.ok()) {
      std::fprintf(stderr, "kanond: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }
  KANON_LOG_EVENT(logger.get(), &flight, kanon::LogLevel::kInfo,
                  "daemon.drained");
  std::fprintf(stderr, "kanond: drained, exiting\n");
  return 0;
}
