// Command-line anonymizer: reads a CSV, applies one of the library's
// anonymization pipelines, verifies the promised anonymity notion, and
// writes the generalized table.
//
//   kanon_cli --input=records.csv --k=5
//             [--spec=hierarchies.spec]      # see scheme_spec.h; default:
//                                            # suppression-only everywhere
//             [--method=agglomerative|modified|forest|kk-nn|kk-greedy|global|full-domain]
//             [--measure=EM|LM|TM|SUP]
//             [--distance=1|2|3|4|nc]
//             [--output=anonymized.csv]
//             [--report]                     # print a utility report
//             [--print-spec]                 # dump the effective spec
//             [--timeout-ms=N]               # wall-clock budget; on expiry
//                                            # the run degrades gracefully
//             [--max-steps=N]                # iteration budget, same effect
//             [--threads=N]                  # worker threads for the O(n^2)
//                                            # scans; 0 = all cores; output
//                                            # is identical for every N
//             [--stats-json=PATH]            # write one JSON object with the
//                                            # loss, timing, the engine
//                                            # counters, and the full metrics
//                                            # registry ("-" = stdout)
//             [--trace-json=PATH]            # write a Chrome trace-event
//                                            # JSON of the run's phase spans
//                                            # (open in chrome://tracing or
//                                            # ui.perfetto.dev)
//             [--metrics-json=PATH]          # write the metrics registry as
//                                            # flat JSON ("-" = stdout)
//             [--progress]                   # throttled progress line on
//                                            # stderr while the run advances
//
// SIGINT (Ctrl-C) cancels cooperatively: the pipeline finalizes a valid
// partial result instead of dying. Exit codes:
//   0  success
//   1  failure (I/O, invalid arguments to the pipeline, notion violated)
//   2  usage error
//   3  degraded output (deadline or step budget) that still verifies
//   4  cancelled by SIGINT, with a valid partial table written
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/flags.h"
#include "kanon/common/parallel.h"
#include "kanon/data/csv.h"
#include "kanon/generalization/generalized_csv.h"
#include "kanon/generalization/scheme_spec.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"
#include "kanon/loss/suppression_measure.h"
#include "kanon/loss/tree_measure.h"
#include "kanon/loss/utility_report.h"
#include "kanon/telemetry/progress.h"
#include "kanon/telemetry/trace_export.h"

namespace kanon {
namespace {

// Written once before the handler is installed; Cancel() only stores a
// relaxed atomic bool, so the handler is async-signal-safe.
CancellationToken* g_cancel_token = nullptr;

void HandleSigint(int /*signum*/) {
  if (g_cancel_token != nullptr) g_cancel_token->Cancel();
}

Result<AnonymizationMethod> ParseMethod(const std::string& name) {
  if (name == "agglomerative") return AnonymizationMethod::kAgglomerative;
  if (name == "modified") return AnonymizationMethod::kModifiedAgglomerative;
  if (name == "forest") return AnonymizationMethod::kForest;
  if (name == "kk-nn") return AnonymizationMethod::kKKNearestNeighbors;
  if (name == "kk-greedy") return AnonymizationMethod::kKKGreedyExpansion;
  if (name == "global") return AnonymizationMethod::kGlobal;
  if (name == "full-domain") return AnonymizationMethod::kFullDomain;
  return Status::InvalidArgument("unknown --method '" + name + "'");
}

Result<DistanceFunction> ParseDistance(const std::string& name) {
  if (name == "1") return DistanceFunction::kWeighted;
  if (name == "2") return DistanceFunction::kPlain;
  if (name == "3") return DistanceFunction::kLogWeighted;
  if (name == "4") return DistanceFunction::kRatio;
  if (name == "nc") return DistanceFunction::kNergizClifton;
  return Status::InvalidArgument("unknown --distance '" + name + "'");
}

Result<std::unique_ptr<LossMeasure>> ParseMeasure(const std::string& name) {
  std::unique_ptr<LossMeasure> measure;
  if (name == "EM") measure = std::make_unique<EntropyMeasure>();
  if (name == "LM") measure = std::make_unique<LmMeasure>();
  if (name == "TM") measure = std::make_unique<TreeMeasure>();
  if (name == "SUP") measure = std::make_unique<SuppressionMeasure>();
  if (measure == nullptr) {
    return Status::InvalidArgument("unknown --measure '" + name + "'");
  }
  return measure;
}

// One JSON object with the run's outcome and the algo/core engine counters.
// The counters are deterministic at every thread count, so this output is a
// stable regression surface (the cli_stats_json test pins it).
std::string StatsJson(const AnonymizerConfig& config,
                      const std::string& measure_name,
                      const AnonymizationResult& result,
                      const MetricsRegistry* metrics) {
  std::ostringstream out;
  out.precision(17);
  const EngineCounters& c = result.counters;
  out << "{";
  out << "\"method\":\"" << AnonymizationMethodName(config.method) << "\",";
  out << "\"k\":" << config.k << ",";
  out << "\"measure\":\"" << measure_name << "\",";
  out << "\"loss\":" << result.loss << ",";
  out << "\"elapsed_seconds\":" << result.elapsed_seconds << ",";
  out << "\"degraded\":" << (result.degraded ? "true" : "false") << ",";
  out << "\"degraded_stage\":\"" << result.degraded_stage << "\",";
  out << "\"iterations_completed\":" << result.iterations_completed << ",";
  out << "\"records_suppressed\":" << result.records_suppressed << ",";
  out << "\"counters\":{";
  out << "\"merges\":" << c.merges << ",";
  out << "\"rescans\":" << c.rescans << ",";
  out << "\"heap_rebuilds\":" << c.heap_rebuilds << ",";
  out << "\"closure_hits\":" << c.closure_hits << ",";
  out << "\"closure_misses\":" << c.closure_misses << ",";
  out << "\"closure_hit_rate\":" << c.closure_hit_rate() << ",";
  out << "\"upgrade_steps\":" << c.upgrade_steps << ",";
  out << "\"parallel_chunks\":" << c.parallel_chunks;
  out << "}";
  if (metrics != nullptr) {
    // The full registry (superset of the counters above, plus the run.*
    // gauges and histograms), embedded as a sub-object.
    std::string registry = metrics->ToJson(/*include_nondeterministic=*/true);
    while (!registry.empty() && registry.back() == '\n') registry.pop_back();
    out << ",\"metrics\":" << registry;
  }
  out << "}\n";
  return out.str();
}

AnonymityNotion PromisedNotion(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative:
    case AnonymizationMethod::kForest:
      return AnonymityNotion::kKAnonymity;
    case AnonymizationMethod::kKKNearestNeighbors:
    case AnonymizationMethod::kKKGreedyExpansion:
      return AnonymityNotion::kKK;
    case AnonymizationMethod::kGlobal:
      return AnonymityNotion::kGlobalOneK;
    case AnonymizationMethod::kFullDomain:
      return AnonymityNotion::kKAnonymity;
  }
  return AnonymityNotion::kKAnonymity;
}

int RealMain(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 2;
  }
  const std::string input = flags.GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: kanon_cli --input=records.csv --k=5 [--spec=...]"
                 " [--method=...] [--measure=EM] [--distance=4]"
                 " [--output=...] [--print-spec] [--timeout-ms=N]"
                 " [--max-steps=N] [--threads=N] [--stats-json=PATH]"
                 " [--trace-json=PATH] [--metrics-json=PATH] [--progress]\n");
    return 2;
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  // 0 (the default) uses every core; the output does not depend on this.
  const int num_threads =
      ResolveNumThreads(static_cast<int>(flags.GetInt("threads", 0)));

  Result<Dataset> dataset = ReadCsvInferSchemaFile(input);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "read %zu rows x %zu attributes from %s\n",
               dataset->num_rows(), dataset->num_attributes(), input.c_str());

  // Generalization scheme: from the spec file, or suppression-only.
  Result<GeneralizationScheme> scheme = Status::Internal("unset");
  const std::string spec = flags.GetString("spec", "");
  if (!spec.empty()) {
    scheme = ParseSchemeSpecFile(dataset->schema(), spec);
  } else {
    scheme = GeneralizationScheme::SuppressionOnly(dataset->schema());
    std::fprintf(stderr,
                 "no --spec given: every attribute is suppression-only"
                 " (coarse; consider writing a spec)\n");
  }
  if (!scheme.ok()) {
    std::fprintf(stderr, "error in scheme: %s\n",
                 scheme.status().ToString().c_str());
    return 1;
  }
  auto scheme_ptr =
      std::make_shared<const GeneralizationScheme>(std::move(scheme).value());
  if (flags.GetBool("print-spec", false)) {
    std::printf("%s", FormatSchemeSpec(*scheme_ptr).c_str());
    return 0;
  }

  Result<std::unique_ptr<LossMeasure>> measure =
      ParseMeasure(flags.GetString("measure", "EM"));
  if (!measure.ok()) {
    std::fprintf(stderr, "error: %s\n", measure.status().ToString().c_str());
    return 2;
  }
  Result<AnonymizationMethod> method =
      ParseMethod(flags.GetString("method", "agglomerative"));
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 2;
  }
  Result<DistanceFunction> distance =
      ParseDistance(flags.GetString("distance", "4"));
  if (!distance.ok()) {
    std::fprintf(stderr, "error: %s\n", distance.status().ToString().c_str());
    return 2;
  }

  PrecomputedLoss loss(scheme_ptr, dataset.value(), *measure.value(),
                       num_threads);
  AnonymizerConfig config;
  config.k = k;
  config.method = method.value();
  config.distance = distance.value();
  config.num_threads = num_threads;

  // Execution controls: deadline, step budget, Ctrl-C cancellation.
  RunContext ctx;
  auto cancel_token = std::make_shared<CancellationToken>();
  ctx.set_cancel_token(cancel_token);
  g_cancel_token = cancel_token.get();
  std::signal(SIGINT, HandleSigint);
  const int64_t max_steps = flags.GetInt("max-steps", 0);
  if (max_steps > 0) {
    ctx.set_step_budget(static_cast<size_t>(max_steps));
  }
  const int64_t timeout_ms = flags.GetInt("timeout-ms", 0);
  if (timeout_ms > 0) {
    ctx.ArmDeadline(static_cast<double>(timeout_ms) / 1000.0);
  }
  config.run_context = &ctx;

  // Telemetry (docs/observability.md): the tracer exists only when a trace
  // was asked for; the metrics registry whenever any JSON output wants it.
  const std::string trace_path = flags.GetString("trace-json", "");
  const std::string metrics_path = flags.GetString("metrics-json", "");
  const std::string stats_path = flags.GetString("stats-json", "");
  std::unique_ptr<Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<Tracer>();
    config.tracer = tracer.get();
  }
  std::unique_ptr<MetricsRegistry> metrics;
  if (!metrics_path.empty() || !stats_path.empty()) {
    metrics = std::make_unique<MetricsRegistry>();
    config.metrics = metrics.get();
  }
  ProgressReporter progress_reporter;
  if (flags.GetBool("progress", false)) {
    ctx.set_progress_observer(progress_reporter.AsObserver());
  }

  Result<AnonymizationResult> result =
      Anonymize(dataset.value(), loss, config);
  progress_reporter.Finish();
  if (!result.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (tracer != nullptr) {
    if (Status s = WriteChromeTrace(*tracer, trace_path); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace %s (%zu spans, %zu lanes)\n",
                 trace_path.c_str(), tracer->total_spans(),
                 tracer->num_lanes());
  }
  if (metrics != nullptr && !metrics_path.empty()) {
    if (Status s = WriteMetricsJson(*metrics, metrics_path); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    if (metrics_path != "-") {
      std::fprintf(stderr, "wrote metrics %s\n", metrics_path.c_str());
    }
  }

  if (flags.GetBool("report", false)) {
    std::fprintf(stderr, "%s",
                 BuildUtilityReport(dataset.value(), result->table)
                     .ToString()
                     .c_str());
    std::fprintf(stderr,
                 "degraded: %s\nstop reason: %s\niterations completed: %zu\n"
                 "records suppressed by fallback: %zu\n",
                 result->degraded ? "yes" : "no",
                 StopReasonName(result->stop_reason),
                 result->iterations_completed, result->records_suppressed);
  }

  if (!stats_path.empty()) {
    const std::string json =
        StatsJson(config, loss.measure_name(), result.value(), metrics.get());
    if (stats_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(stats_path);
      out << json;
      if (!out) {
        std::fprintf(stderr, "error writing %s\n", stats_path.c_str());
        return 1;
      }
    }
  }

  const AnonymityNotion notion = PromisedNotion(config.method);
  Result<bool> verified = SatisfiesNotion(notion, dataset.value(),
                                          result->table, k);
  if (!verified.ok()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 verified.status().ToString().c_str());
    return 1;
  }
  const bool holds = verified.value();
  std::fprintf(stderr,
               "method %s, k=%zu: loss(%s) = %.4f, %.2fs; %s: %s\n",
               AnonymizationMethodName(config.method), k,
               loss.measure_name().c_str(), result->loss,
               result->elapsed_seconds, AnonymityNotionName(notion),
               holds ? "satisfied" : "VIOLATED");
  if (result->degraded) {
    std::fprintf(stderr,
                 "run degraded (%s) in stage %s after %zu iterations; %zu"
                 " records coarsened by the fallback — output is valid but"
                 " lossier\n",
                 StopReasonName(result->stop_reason),
                 result->degraded_stage.empty() ? "unknown"
                                                : result->degraded_stage.c_str(),
                 result->iterations_completed, result->records_suppressed);
  }
  if (!holds) return 1;

  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    if (Status s = WriteGeneralizedCsvFile(result->table, output); !s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  } else {
    Status s = WriteGeneralizedCsv(result->table, std::cout);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (result->degraded) {
    return result->stop_reason == StopReason::kCancelled ? 4 : 3;
  }
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::RealMain(argc, argv); }
