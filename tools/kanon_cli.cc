// Command-line anonymizer: reads a CSV, applies one of the library's
// anonymization pipelines, verifies the promised anonymity notion, and
// writes the generalized table.
//
//   kanon_cli --input=records.csv --k=5
//             [--spec=hierarchies.spec]      # see scheme_spec.h; default:
//                                            # suppression-only everywhere
//             [--method=agglomerative|modified|forest|kk-nn|kk-greedy|global|full-domain]
//             [--measure=EM|LM|TM|SUP]
//             [--distance=1|2|3|4|nc]
//             [--attr-weights=w1,w2,...]     # per-attribute loss weights
//                                            # (docs/policy_engine.md); one
//                                            # finite weight >= 0 per input
//                                            # attribute, not all zero.
//                                            # Reported loss stays uniform.
//             [--output=anonymized.csv]
//             [--report]                     # print a utility report
//             [--print-spec]                 # dump the effective spec
//             [--timeout-ms=N]               # wall-clock budget; on expiry
//                                            # the run degrades gracefully
//             [--max-steps=N]                # iteration budget, same effect
//             [--threads=N]                  # worker threads for the O(n^2)
//                                            # scans; 0 = all cores; output
//                                            # is identical for every N
//             [--stats-json=PATH]            # write one JSON object with the
//                                            # loss, timing, the engine
//                                            # counters, and the full metrics
//                                            # registry ("-" = stdout)
//             [--trace-json=PATH]            # write a Chrome trace-event
//                                            # JSON of the run's phase spans
//                                            # (open in chrome://tracing or
//                                            # ui.perfetto.dev)
//             [--metrics-json=PATH]          # write the metrics registry as
//                                            # flat JSON ("-" = stdout)
//             [--progress]                   # throttled progress line on
//                                            # stderr while the run advances
//
// Out-of-core sharded mode (docs/sharding.md) — engaged by any of:
//             [--shards=N]                   # hash-partition the input into
//                                            # N shards, anonymize each
//                                            # independently, merge + repair
//             [--memory-budget-mb=N]        # derive the shard count from a
//                                            # per-shard working-set budget
//             [--work-dir=DIR]               # journal directory (spills,
//                                            # checkpoints, manifest);
//                                            # required in sharded mode
//             [--resume[=DIR]]               # continue a killed run from its
//                                            # checkpoints (byte-identical
//                                            # output); =DIR implies
//                                            # --work-dir=DIR
//             [--shard-prefix=N]             # QI-prefix width of the hash
//                                            # partitioner (default 3)
//             [--shard-attempts=N]           # engine attempts per shard
//                                            # before it is suppressed
// Sharded mode streams the CSV (the text table is never resident) and only
// accepts the per-record k-anonymity methods — their per-shard guarantees
// compose into a global one.
//
// SIGINT (Ctrl-C) cancels cooperatively: the pipeline finalizes a valid
// partial result instead of dying. Exit codes:
//   0  success
//   1  failure (I/O, invalid arguments to the pipeline, notion violated)
//   2  usage error
//   3  degraded output (deadline or step budget) that still verifies
//   4  cancelled by SIGINT, with a valid partial table written
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/flags.h"
#include "kanon/common/parallel.h"
#include "kanon/data/csv.h"
#include "kanon/generalization/generalized_csv.h"
#include "kanon/generalization/scheme_spec.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"
#include "kanon/loss/suppression_measure.h"
#include "kanon/loss/tree_measure.h"
#include "kanon/loss/utility_report.h"
#include "kanon/shard/driver.h"
#include "kanon/telemetry/progress.h"
#include "kanon/telemetry/trace_export.h"

namespace kanon {
namespace {

// Written once before the handler is installed; Cancel() only stores a
// relaxed atomic bool, so the handler is async-signal-safe.
CancellationToken* g_cancel_token = nullptr;

void HandleSigint(int /*signum*/) {
  if (g_cancel_token != nullptr) g_cancel_token->Cancel();
}

Result<AnonymizationMethod> ParseMethod(const std::string& name) {
  if (name == "agglomerative") return AnonymizationMethod::kAgglomerative;
  if (name == "modified") return AnonymizationMethod::kModifiedAgglomerative;
  if (name == "forest") return AnonymizationMethod::kForest;
  if (name == "kk-nn") return AnonymizationMethod::kKKNearestNeighbors;
  if (name == "kk-greedy") return AnonymizationMethod::kKKGreedyExpansion;
  if (name == "global") return AnonymizationMethod::kGlobal;
  if (name == "full-domain") return AnonymizationMethod::kFullDomain;
  return Status::InvalidArgument("unknown --method '" + name + "'");
}

Result<DistanceFunction> ParseDistance(const std::string& name) {
  if (name == "1") return DistanceFunction::kWeighted;
  if (name == "2") return DistanceFunction::kPlain;
  if (name == "3") return DistanceFunction::kLogWeighted;
  if (name == "4") return DistanceFunction::kRatio;
  if (name == "nc") return DistanceFunction::kNergizClifton;
  return Status::InvalidArgument("unknown --distance '" + name + "'");
}

// Comma-separated per-attribute weights, e.g. "2,1,1". Count and range
// validation happens in Anonymize, which knows the dataset arity.
Result<std::vector<double>> ParseAttrWeights(const std::string& spec) {
  std::vector<double> weights;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    char* end = nullptr;
    const double w = std::strtod(item.c_str(), &end);
    if (item.empty() || end != item.c_str() + item.size()) {
      return Status::InvalidArgument("bad --attr-weights entry '" + item +
                                     "'");
    }
    weights.push_back(w);
  }
  if (weights.empty()) {
    return Status::InvalidArgument(
        "--attr-weights must list at least one weight");
  }
  return weights;
}

Result<std::unique_ptr<LossMeasure>> ParseMeasure(const std::string& name) {
  std::unique_ptr<LossMeasure> measure;
  if (name == "EM") measure = std::make_unique<EntropyMeasure>();
  if (name == "LM") measure = std::make_unique<LmMeasure>();
  if (name == "TM") measure = std::make_unique<TreeMeasure>();
  if (name == "SUP") measure = std::make_unique<SuppressionMeasure>();
  if (measure == nullptr) {
    return Status::InvalidArgument("unknown --measure '" + name + "'");
  }
  return measure;
}

// One JSON object with the run's outcome and the algo/core engine counters.
// The counters are deterministic at every thread count, so this output is a
// stable regression surface (the cli_stats_json test pins it).
std::string StatsJson(const AnonymizerConfig& config,
                      const std::string& measure_name,
                      const AnonymizationResult& result,
                      const MetricsRegistry* metrics) {
  std::ostringstream out;
  out.precision(17);
  const EngineCounters& c = result.counters;
  out << "{";
  out << "\"method\":\"" << AnonymizationMethodName(config.method) << "\",";
  out << "\"k\":" << config.k << ",";
  out << "\"measure\":\"" << measure_name << "\",";
  out << "\"loss\":" << result.loss << ",";
  out << "\"elapsed_seconds\":" << result.elapsed_seconds << ",";
  out << "\"degraded\":" << (result.degraded ? "true" : "false") << ",";
  out << "\"degraded_stage\":\"" << result.degraded_stage << "\",";
  out << "\"iterations_completed\":" << result.iterations_completed << ",";
  out << "\"records_suppressed\":" << result.records_suppressed << ",";
  out << "\"counters\":{";
  out << "\"merges\":" << c.merges << ",";
  out << "\"rescans\":" << c.rescans << ",";
  out << "\"heap_rebuilds\":" << c.heap_rebuilds << ",";
  out << "\"closure_hits\":" << c.closure_hits << ",";
  out << "\"closure_misses\":" << c.closure_misses << ",";
  out << "\"closure_hit_rate\":" << c.closure_hit_rate() << ",";
  out << "\"upgrade_steps\":" << c.upgrade_steps << ",";
  out << "\"parallel_chunks\":" << c.parallel_chunks;
  out << "}";
  if (metrics != nullptr) {
    // The full registry (superset of the counters above, plus the run.*
    // gauges and histograms), embedded as a sub-object.
    std::string registry = metrics->ToJson(/*include_nondeterministic=*/true);
    while (!registry.empty() && registry.back() == '\n') registry.pop_back();
    out << ",\"metrics\":" << registry;
  }
  out << "}\n";
  return out.str();
}

AnonymityNotion PromisedNotion(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative:
    case AnonymizationMethod::kForest:
      return AnonymityNotion::kKAnonymity;
    case AnonymizationMethod::kKKNearestNeighbors:
    case AnonymizationMethod::kKKGreedyExpansion:
      return AnonymityNotion::kKK;
    case AnonymizationMethod::kGlobal:
      return AnonymityNotion::kGlobalOneK;
    case AnonymizationMethod::kFullDomain:
      return AnonymityNotion::kKAnonymity;
  }
  return AnonymityNotion::kKAnonymity;
}

// One JSON object for a sharded run: outcome, per-shard accounting, and the
// metrics registry. Stable field order; pinned by the cli_shard tests.
std::string ShardStatsJson(const AnonymizerConfig& config,
                           const std::string& measure_name,
                           const shard::ShardedResult& result,
                           const MetricsRegistry* metrics) {
  std::ostringstream out;
  out.precision(17);
  out << "{";
  out << "\"method\":\"" << AnonymizationMethodName(config.method) << "\",";
  out << "\"k\":" << config.k << ",";
  out << "\"measure\":\"" << measure_name << "\",";
  out << "\"loss\":" << result.loss << ",";
  out << "\"rows\":" << result.rows << ",";
  out << "\"degraded\":" << (result.degraded ? "true" : "false") << ",";
  out << "\"stop_reason\":\"" << StopReasonName(result.stop_reason) << "\",";
  out << "\"records_suppressed\":" << result.records_suppressed << ",";
  out << "\"shards\":" << result.num_shards << ",";
  out << "\"shards_resumed\":" << result.shards_resumed << ",";
  out << "\"shards_suppressed\":" << result.shards_suppressed << ",";
  out << "\"shard_retries\":" << result.shard_retries << ",";
  out << "\"boundary_repaired\":" << result.boundary_repaired;
  if (metrics != nullptr) {
    std::string registry = metrics->ToJson(/*include_nondeterministic=*/true);
    while (!registry.empty() && registry.back() == '\n') registry.pop_back();
    out << ",\"metrics\":" << registry;
  }
  out << "}\n";
  return out.str();
}

// The out-of-core path: streams the CSV into shard spills, runs the engine
// per shard with checkpoint/resume, merges, repairs, verifies Definition
// 4.1 on the merged table. The full text table is never resident.
int ShardedMain(const FlagParser& flags, const std::string& input) {
  const std::string resume_value = flags.GetString("resume", "");
  const bool resume = flags.Has("resume");
  std::string work_dir = flags.GetString("work-dir", "");
  if (work_dir.empty() && resume && resume_value != "true") {
    work_dir = resume_value;
  }
  if (work_dir.empty()) {
    std::fprintf(stderr,
                 "error: sharded mode needs --work-dir=DIR (or "
                 "--resume=DIR)\n");
    return 2;
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const int num_threads =
      ResolveNumThreads(static_cast<int>(flags.GetInt("threads", 0)));

  // Streaming schema inference: one pass over the text, no row buffering.
  Result<Schema> schema = InferCsvSchemaFile(input);
  if (!schema.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 schema.status().ToString().c_str());
    return 1;
  }
  Result<GeneralizationScheme> scheme = Status::Internal("unset");
  const std::string spec = flags.GetString("spec", "");
  if (!spec.empty()) {
    scheme = ParseSchemeSpecFile(schema.value(), spec);
  } else {
    scheme = GeneralizationScheme::SuppressionOnly(schema.value());
    std::fprintf(stderr,
                 "no --spec given: every attribute is suppression-only"
                 " (coarse; consider writing a spec)\n");
  }
  if (!scheme.ok()) {
    std::fprintf(stderr, "error in scheme: %s\n",
                 scheme.status().ToString().c_str());
    return 1;
  }
  auto scheme_ptr =
      std::make_shared<const GeneralizationScheme>(std::move(scheme).value());

  Result<std::unique_ptr<LossMeasure>> measure =
      ParseMeasure(flags.GetString("measure", "EM"));
  if (!measure.ok()) {
    std::fprintf(stderr, "error: %s\n", measure.status().ToString().c_str());
    return 2;
  }
  Result<AnonymizationMethod> method =
      ParseMethod(flags.GetString("method", "agglomerative"));
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 2;
  }
  Result<DistanceFunction> distance =
      ParseDistance(flags.GetString("distance", "4"));
  if (!distance.ok()) {
    std::fprintf(stderr, "error: %s\n", distance.status().ToString().c_str());
    return 2;
  }

  AnonymizerConfig config;
  config.k = k;
  config.method = method.value();
  config.distance = distance.value();
  config.num_threads = num_threads;
  if (flags.Has("attr-weights")) {
    Result<std::vector<double>> weights =
        ParseAttrWeights(flags.GetString("attr-weights", ""));
    if (!weights.ok()) {
      std::fprintf(stderr, "error: %s\n", weights.status().ToString().c_str());
      return 2;
    }
    config.attr_weights = std::move(weights).value();
  }

  RunContext ctx;
  auto cancel_token = std::make_shared<CancellationToken>();
  ctx.set_cancel_token(cancel_token);
  g_cancel_token = cancel_token.get();
  std::signal(SIGINT, HandleSigint);
  const int64_t max_steps = flags.GetInt("max-steps", 0);
  if (max_steps > 0) ctx.set_step_budget(static_cast<size_t>(max_steps));
  const int64_t timeout_ms = flags.GetInt("timeout-ms", 0);
  if (timeout_ms > 0) ctx.ArmDeadline(static_cast<double>(timeout_ms) / 1000.0);
  config.run_context = &ctx;

  const std::string trace_path = flags.GetString("trace-json", "");
  const std::string metrics_path = flags.GetString("metrics-json", "");
  const std::string stats_path = flags.GetString("stats-json", "");
  std::unique_ptr<Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<Tracer>();
    config.tracer = tracer.get();
  }
  std::unique_ptr<MetricsRegistry> metrics;
  if (!metrics_path.empty() || !stats_path.empty()) {
    metrics = std::make_unique<MetricsRegistry>();
    config.metrics = metrics.get();
  }
  if (flags.GetBool("report", false)) {
    std::fprintf(stderr,
                 "note: --report needs the full dataset in memory and is"
                 " skipped in sharded mode\n");
  }

  shard::ShardOptions options;
  options.num_shards = static_cast<size_t>(flags.GetInt("shards", 0));
  options.memory_budget_mb =
      static_cast<size_t>(flags.GetInt("memory-budget-mb", 0));
  options.work_dir = work_dir;
  options.resume = resume;
  options.prefix_attributes =
      static_cast<size_t>(flags.GetInt("shard-prefix", 3));
  options.max_attempts =
      static_cast<size_t>(flags.GetInt("shard-attempts", 3));

  Result<shard::ShardedResult> result = shard::ShardedAnonymizeCsvFile(
      input, scheme_ptr, CsvOptions(), *measure.value(), config, options);
  if (!result.ok()) {
    std::fprintf(stderr, "sharded anonymization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (tracer != nullptr) {
    if (Status s = WriteChromeTrace(*tracer, trace_path); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace %s (%zu spans, %zu lanes)\n",
                 trace_path.c_str(), tracer->total_spans(),
                 tracer->num_lanes());
  }
  if (metrics != nullptr && !metrics_path.empty()) {
    if (Status s = WriteMetricsJson(*metrics, metrics_path); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    if (metrics_path != "-") {
      std::fprintf(stderr, "wrote metrics %s\n", metrics_path.c_str());
    }
  }
  if (!stats_path.empty()) {
    const std::string json = ShardStatsJson(config, measure.value()->name(),
                                            result.value(), metrics.get());
    if (stats_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(stats_path);
      out << json;
      if (!out) {
        std::fprintf(stderr, "error writing %s\n", stats_path.c_str());
        return 1;
      }
    }
  }

  Result<bool> verified = IsKAnonymous(result->table, k);
  if (!verified.ok()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 verified.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "sharded %s, k=%zu: %zu rows in %zu shards, loss(%s) = %.4f;"
               " resumed %zu, suppressed %zu, retries %zu, repaired %zu;"
               " k-anonymity: %s\n",
               AnonymizationMethodName(config.method), k, result->rows,
               result->num_shards, measure.value()->name().c_str(),
               result->loss, result->shards_resumed,
               result->shards_suppressed, result->shard_retries,
               result->boundary_repaired,
               verified.value() ? "satisfied" : "VIOLATED");
  if (result->degraded) {
    std::fprintf(stderr,
                 "run degraded (%s): output is valid but lossier\n",
                 StopReasonName(result->stop_reason));
  }
  if (!verified.value()) return 1;

  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    if (Status s = WriteGeneralizedCsvFile(result->table, output); !s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  } else {
    Status s = WriteGeneralizedCsv(result->table, std::cout);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (result->degraded) {
    return result->stop_reason == StopReason::kCancelled ? 4 : 3;
  }
  return 0;
}

int RealMain(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 2;
  }
  const std::string input = flags.GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: kanon_cli --input=records.csv --k=5 [--spec=...]"
                 " [--method=...] [--measure=EM] [--distance=4]"
                 " [--attr-weights=w1,w2,...]"
                 " [--output=...] [--print-spec] [--timeout-ms=N]"
                 " [--max-steps=N] [--threads=N] [--stats-json=PATH]"
                 " [--trace-json=PATH] [--metrics-json=PATH] [--progress]"
                 " [--shards=N] [--memory-budget-mb=N] [--work-dir=DIR]"
                 " [--resume[=DIR]]\n");
    return 2;
  }
  if (flags.GetInt("shards", 0) > 0 ||
      flags.GetInt("memory-budget-mb", 0) > 0 || flags.Has("resume")) {
    return ShardedMain(flags, input);
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  // 0 (the default) uses every core; the output does not depend on this.
  const int num_threads =
      ResolveNumThreads(static_cast<int>(flags.GetInt("threads", 0)));

  Result<Dataset> dataset = ReadCsvInferSchemaFile(input);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "read %zu rows x %zu attributes from %s\n",
               dataset->num_rows(), dataset->num_attributes(), input.c_str());

  // Generalization scheme: from the spec file, or suppression-only.
  Result<GeneralizationScheme> scheme = Status::Internal("unset");
  const std::string spec = flags.GetString("spec", "");
  if (!spec.empty()) {
    scheme = ParseSchemeSpecFile(dataset->schema(), spec);
  } else {
    scheme = GeneralizationScheme::SuppressionOnly(dataset->schema());
    std::fprintf(stderr,
                 "no --spec given: every attribute is suppression-only"
                 " (coarse; consider writing a spec)\n");
  }
  if (!scheme.ok()) {
    std::fprintf(stderr, "error in scheme: %s\n",
                 scheme.status().ToString().c_str());
    return 1;
  }
  auto scheme_ptr =
      std::make_shared<const GeneralizationScheme>(std::move(scheme).value());
  if (flags.GetBool("print-spec", false)) {
    std::printf("%s", FormatSchemeSpec(*scheme_ptr).c_str());
    return 0;
  }

  Result<std::unique_ptr<LossMeasure>> measure =
      ParseMeasure(flags.GetString("measure", "EM"));
  if (!measure.ok()) {
    std::fprintf(stderr, "error: %s\n", measure.status().ToString().c_str());
    return 2;
  }
  Result<AnonymizationMethod> method =
      ParseMethod(flags.GetString("method", "agglomerative"));
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 2;
  }
  Result<DistanceFunction> distance =
      ParseDistance(flags.GetString("distance", "4"));
  if (!distance.ok()) {
    std::fprintf(stderr, "error: %s\n", distance.status().ToString().c_str());
    return 2;
  }

  PrecomputedLoss loss(scheme_ptr, dataset.value(), *measure.value(),
                       num_threads);
  AnonymizerConfig config;
  config.k = k;
  config.method = method.value();
  config.distance = distance.value();
  config.num_threads = num_threads;
  if (flags.Has("attr-weights")) {
    Result<std::vector<double>> weights =
        ParseAttrWeights(flags.GetString("attr-weights", ""));
    if (!weights.ok()) {
      std::fprintf(stderr, "error: %s\n", weights.status().ToString().c_str());
      return 2;
    }
    config.attr_weights = std::move(weights).value();
  }

  // Execution controls: deadline, step budget, Ctrl-C cancellation.
  RunContext ctx;
  auto cancel_token = std::make_shared<CancellationToken>();
  ctx.set_cancel_token(cancel_token);
  g_cancel_token = cancel_token.get();
  std::signal(SIGINT, HandleSigint);
  const int64_t max_steps = flags.GetInt("max-steps", 0);
  if (max_steps > 0) {
    ctx.set_step_budget(static_cast<size_t>(max_steps));
  }
  const int64_t timeout_ms = flags.GetInt("timeout-ms", 0);
  if (timeout_ms > 0) {
    ctx.ArmDeadline(static_cast<double>(timeout_ms) / 1000.0);
  }
  config.run_context = &ctx;

  // Telemetry (docs/observability.md): the tracer exists only when a trace
  // was asked for; the metrics registry whenever any JSON output wants it.
  const std::string trace_path = flags.GetString("trace-json", "");
  const std::string metrics_path = flags.GetString("metrics-json", "");
  const std::string stats_path = flags.GetString("stats-json", "");
  std::unique_ptr<Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<Tracer>();
    config.tracer = tracer.get();
  }
  std::unique_ptr<MetricsRegistry> metrics;
  if (!metrics_path.empty() || !stats_path.empty()) {
    metrics = std::make_unique<MetricsRegistry>();
    config.metrics = metrics.get();
  }
  ProgressReporter progress_reporter;
  if (flags.GetBool("progress", false)) {
    ctx.set_progress_observer(progress_reporter.AsObserver());
  }

  Result<AnonymizationResult> result =
      Anonymize(dataset.value(), loss, config);
  progress_reporter.Finish();
  if (!result.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (tracer != nullptr) {
    if (Status s = WriteChromeTrace(*tracer, trace_path); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace %s (%zu spans, %zu lanes)\n",
                 trace_path.c_str(), tracer->total_spans(),
                 tracer->num_lanes());
  }
  if (metrics != nullptr && !metrics_path.empty()) {
    if (Status s = WriteMetricsJson(*metrics, metrics_path); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    if (metrics_path != "-") {
      std::fprintf(stderr, "wrote metrics %s\n", metrics_path.c_str());
    }
  }

  if (flags.GetBool("report", false)) {
    std::fprintf(stderr, "%s",
                 BuildUtilityReport(dataset.value(), result->table)
                     .ToString()
                     .c_str());
    std::fprintf(stderr,
                 "degraded: %s\nstop reason: %s\niterations completed: %zu\n"
                 "records suppressed by fallback: %zu\n",
                 result->degraded ? "yes" : "no",
                 StopReasonName(result->stop_reason),
                 result->iterations_completed, result->records_suppressed);
  }

  if (!stats_path.empty()) {
    const std::string json =
        StatsJson(config, loss.measure_name(), result.value(), metrics.get());
    if (stats_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(stats_path);
      out << json;
      if (!out) {
        std::fprintf(stderr, "error writing %s\n", stats_path.c_str());
        return 1;
      }
    }
  }

  const AnonymityNotion notion = PromisedNotion(config.method);
  Result<bool> verified = SatisfiesNotion(notion, dataset.value(),
                                          result->table, k);
  if (!verified.ok()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 verified.status().ToString().c_str());
    return 1;
  }
  const bool holds = verified.value();
  std::fprintf(stderr,
               "method %s, k=%zu: loss(%s) = %.4f, %.2fs; %s: %s\n",
               AnonymizationMethodName(config.method), k,
               loss.measure_name().c_str(), result->loss,
               result->elapsed_seconds, AnonymityNotionName(notion),
               holds ? "satisfied" : "VIOLATED");
  if (result->degraded) {
    std::fprintf(stderr,
                 "run degraded (%s) in stage %s after %zu iterations; %zu"
                 " records coarsened by the fallback — output is valid but"
                 " lossier\n",
                 StopReasonName(result->stop_reason),
                 result->degraded_stage.empty() ? "unknown"
                                                : result->degraded_stage.c_str(),
                 result->iterations_completed, result->records_suppressed);
  }
  if (!holds) return 1;

  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    if (Status s = WriteGeneralizedCsvFile(result->table, output); !s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  } else {
    Status s = WriteGeneralizedCsv(result->table, std::cout);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (result->degraded) {
    return result->stop_reason == StopReason::kCancelled ? 4 : 3;
  }
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::RealMain(argc, argv); }
