// Randomized checking harness: generates small anonymization instances,
// runs every pipeline on them, and validates the paper's theorems as
// metamorphic/differential properties (see docs/checking.md).
//
// Run a campaign (the usual mode):
//   kanon_check --campaign --seed=4 --trials=200
//               [--props=a,b,c]     # property filter; default: all
//               [--threads=N]       # trial fan-out; report is byte-identical
//                                   # for every N (0 = all cores)
//               [--report=PATH]     # write the JSON report ("-" = stdout,
//                                   # the default)
//               [--metrics-json=PATH] # write the campaign outcome as a flat
//                                   # telemetry metrics document ("-" = stdout)
//               [--repro-dir=DIR]   # write one .repro file per failure
//               [--no-shrink]       # report failures unminimized
//               [--shrink-evals=N]  # shrink budget per failure (default 500)
//               [--max-rows=N] [--max-attrs=N] [--max-domain=N]
//
// Replay reproducers (regression mode; also exercised by ctest):
//   kanon_check --replay file.repro [more.repro ...]
//
// List the property catalog with the paper references each encodes:
//   kanon_check --list-props
//
// Fault injection composes: KANON_FAILPOINTS="agglomerative.closure=3"
// makes pipelines fail mid-run, which the pipeline-error properties catch,
// shrink, and write out as replayable reproducers.
//
// Exit codes: 0 all properties/replays passed; 1 failures; 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "kanon/check/campaign.h"
#include "kanon/check/properties.h"
#include "kanon/check/repro.h"
#include "kanon/common/flags.h"
#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/trace_export.h"

namespace kanon {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: kanon_check --campaign --seed=S --trials=N "
               "[--props=a,b] [--threads=T]\n"
               "                   [--report=PATH] [--metrics-json=PATH] "
               "[--repro-dir=DIR] [--no-shrink]\n"
               "       kanon_check --replay FILE.repro [...]\n"
               "       kanon_check --list-props\n");
  return 2;
}

int ListProps() {
  for (const check::Property& property : check::PropertyCatalog()) {
    std::printf("%-24s  %s\n", property.name, property.description);
    std::printf("%-24s  encodes: %s\n", "", property.paper_ref);
  }
  return 0;
}

int Replay(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::fprintf(stderr, "kanon_check: --replay needs .repro files\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "kanon_check: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<check::ReproCase> repro = check::ParseRepro(text.str());
    if (!repro.ok()) {
      std::fprintf(stderr, "kanon_check: %s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      return 2;
    }
    Result<check::ReproOutcome> outcome = check::ReplayRepro(*repro);
    if (!outcome.ok()) {
      std::fprintf(stderr, "kanon_check: %s: %s\n", path.c_str(),
                   outcome.status().ToString().c_str());
      return 2;
    }
    std::printf("%s: %s — %s\n", path.c_str(),
                outcome->matched ? "ok" : "MISMATCH",
                outcome->Describe(*repro).c_str());
    if (!outcome->matched) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int Campaign(const FlagParser& flags) {
  check::CampaignOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  options.trials = static_cast<size_t>(flags.GetInt("trials", 100));
  options.threads = static_cast<int>(flags.GetInt("threads", 1));
  options.props = flags.GetString("props", "all");
  options.shrink = !flags.GetBool("no-shrink", false);
  options.shrink_max_evaluations =
      static_cast<size_t>(flags.GetInt("shrink-evals", 500));
  options.generator.max_rows =
      static_cast<size_t>(flags.GetInt("max-rows", 48));
  options.generator.max_attributes =
      static_cast<size_t>(flags.GetInt("max-attrs", 3));
  options.generator.max_domain_size =
      static_cast<size_t>(flags.GetInt("max-domain", 12));

  Result<check::CampaignReport> report = check::RunCampaign(options);
  if (!report.ok()) {
    std::fprintf(stderr, "kanon_check: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  const std::string json = report->ToJson();
  const std::string report_path = flags.GetString("report", "-");
  if (report_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "kanon_check: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    out << json;
  }

  // The campaign outcome as a flat metrics document — same schema as
  // `kanon_cli --metrics-json`, so CI dashboards consume one format.
  const std::string metrics_path = flags.GetString("metrics-json", "");
  if (!metrics_path.empty()) {
    MetricsRegistry metrics;
    metrics.GetCounter("check.seed")->Set(options.seed);
    metrics.GetCounter("check.trials")->Set(report->trials);
    metrics.GetCounter("check.evaluations")->Set(report->evaluations);
    metrics.GetCounter("check.passed")->Set(report->passed);
    metrics.GetCounter("check.failed")->Set(report->failures.size());
    metrics.GetCounter("check.generator_errors")
        ->Set(report->generator_errors.size());
    metrics.GetGauge("check.pass_rate")
        ->Set(report->evaluations == 0
                  ? 1.0
                  : static_cast<double>(report->passed) /
                        static_cast<double>(report->evaluations));
    const Status written = WriteMetricsJson(metrics, metrics_path);
    if (!written.ok()) {
      std::fprintf(stderr, "kanon_check: %s\n", written.ToString().c_str());
      return 2;
    }
  }

  const std::string repro_dir = flags.GetString("repro-dir", "");
  if (!repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(repro_dir, ec);
    if (ec) {
      std::fprintf(stderr, "kanon_check: cannot create %s: %s\n",
                   repro_dir.c_str(), ec.message().c_str());
      return 2;
    }
    for (const check::CampaignFailure& failure : report->failures) {
      const std::string path = repro_dir + "/" + failure.property + "-trial" +
                               std::to_string(failure.trial) + ".repro";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "kanon_check: cannot write %s\n", path.c_str());
        return 2;
      }
      out << failure.repro;
    }
  }

  for (const check::CampaignFailure& failure : report->failures) {
    std::fprintf(stderr, "FAIL trial %zu %s [%s]: %s\n", failure.trial,
                 failure.property.c_str(), failure.kind.c_str(),
                 failure.message.c_str());
  }
  for (const std::string& error : report->generator_errors) {
    std::fprintf(stderr, "GENERATOR ERROR %s\n", error.c_str());
  }
  std::fprintf(stderr, "kanon_check: %zu/%zu evaluations passed, %zu failed\n",
               report->passed, report->evaluations,
               report->failures.size());
  return report->ok() ? 0 : 1;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kanon_check: %s\n", parsed.ToString().c_str());
    return Usage();
  }
  if (flags.Has("list-props")) return ListProps();
  if (flags.Has("replay")) {
    std::vector<std::string> paths = flags.positional();
    const std::string inline_path = flags.GetString("replay", "");
    if (!inline_path.empty() && inline_path != "true") {
      paths.insert(paths.begin(), inline_path);
    }
    return Replay(paths);
  }
  if (flags.Has("campaign")) return Campaign(flags);
  return Usage();
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
