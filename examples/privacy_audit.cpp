// Privacy audit: verify all five k-type anonymity notions for a published
// table, run the second adversary's match-reduction attack of Section IV-A
// against a (k,k)-anonymization, and repair the table with Algorithm 6
// (global (1,k)-anonymization).
//
//   ./privacy_audit [--n=400] [--k=4] [--seed=7]
#include <cstdio>

#include "kanon/algo/global_anonymizer.h"
#include "kanon/algo/kk_anonymizer.h"
#include "kanon/anonymity/attack.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/flags.h"
#include "kanon/datasets/cmc.h"
#include "kanon/loss/entropy_measure.h"

using namespace kanon;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n", 400));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  Result<Workload> workload = MakeCmcWorkload(n, seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const Dataset& survey = workload->dataset;
  PrecomputedLoss loss(workload->scheme, survey, EntropyMeasure());

  // The data owner publishes a (k,k)-anonymization — the paper's
  // recommended practical choice.
  Result<GeneralizedTable> published =
      KKAnonymize(survey, loss, k, K1Algorithm::kGreedyExpansion);
  if (!published.ok()) {
    std::fprintf(stderr, "%s\n", published.status().ToString().c_str());
    return 1;
  }

  std::printf("audit of the published table (n=%zu, k=%zu, entropy loss"
              " %.3f)\n\n",
              n, k, loss.TableLoss(published.value()));
  const Result<AnonymityReport> report =
      AnalyzeAnonymity(survey, published.value(), k);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  // The second adversary: knows the entire population AND that exactly
  // these n individuals are in the table. They prune neighbors that cannot
  // belong to any perfect matching.
  std::printf("--- second-adversary attack (Section IV-A) ---\n");
  const AttackResult attack = MatchReductionAttack(survey, published.value(), k);
  std::printf("%s\n", attack.Summary().c_str());
  for (size_t i = 0; i < attack.breached_records.size() && i < 3; ++i) {
    const uint32_t row = attack.breached_records[i];
    std::printf("  e.g. record #%u (%s): %u consistent records, but only"
                " %u possible matches\n",
                row,
                workload->scheme
                    ->Format(workload->scheme->Identity(survey.row(row)))
                    .c_str(),
                attack.neighbor_counts[row], attack.match_counts[row]);
  }

  if (attack.breached_records.empty()) {
    std::printf("this instance happens to already satisfy global"
                " (1,%zu)-anonymity — nothing to repair.\n",
                k);
    return 0;
  }

  // Repair with Algorithm 6.
  std::printf("\n--- repairing with Algorithm 6 ---\n");
  Result<GlobalAnonymizationResult> repaired =
      MakeGlobal1KAnonymous(survey, loss, k, published.value());
  if (!repaired.ok()) {
    std::fprintf(stderr, "%s\n", repaired.status().ToString().c_str());
    return 1;
  }
  std::printf("deficient records: %zu, upgrade steps: %zu (max %zu per"
              " record)\n",
              repaired->stats.deficient_records,
              repaired->stats.upgrade_steps,
              repaired->stats.max_steps_per_record);
  std::printf("entropy loss: %.3f -> %.3f\n",
              loss.TableLoss(published.value()),
              loss.TableLoss(repaired->table));

  const AttackResult after = MatchReductionAttack(survey, repaired->table, k);
  std::printf("after repair: min matches %zu, breached %zu\n",
              after.min_matches(), after.breached_records.size());
  const Result<bool> global_ok =
      IsGlobal1KAnonymous(survey, repaired->table, k);
  if (!global_ok.ok()) {
    std::fprintf(stderr, "%s\n", global_ok.status().ToString().c_str());
    return 1;
  }
  std::printf("global (1,%zu)-anonymity: %s\n", k,
              global_ok.value() ? "satisfied" : "VIOLATED");
  return global_ok.value() && after.breached_records.empty() ? 0 : 1;
}
