// The paper's motivating scenario: a hospital publishes patient
// demographics (the Adult census attributes stand in for them) for
// research, and must decide between classic k-anonymity and the relaxed
// (k,k)-anonymity. This example quantifies the utility gain of the
// relaxation and shows that the first adversary — who knows the public
// data of individuals — still cannot link anyone to fewer than k records.
//
//   ./hospital_release [--n=600] [--k=5] [--seed=1]
#include <cstdio>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/attack.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/flags.h"
#include "kanon/common/table_printer.h"
#include "kanon/common/text.h"
#include "kanon/datasets/adult.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/table_metrics.h"

using namespace kanon;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n", 600));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  Result<Workload> workload = MakeAdultWorkload(n, seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const Dataset& patients = workload->dataset;
  PrecomputedLoss loss(workload->scheme, patients, EntropyMeasure());

  std::printf("hospital release: n=%zu patients, k=%zu\n\n", n, k);

  struct Row {
    const char* name;
    AnonymizationMethod method;
  };
  const Row methods[] = {
      {"k-anonymity (agglomerative)", AnonymizationMethod::kAgglomerative},
      {"k-anonymity (forest baseline)", AnonymizationMethod::kForest},
      {"(k,k)-anonymity (Alg4+5)", AnonymizationMethod::kKKGreedyExpansion},
  };

  TablePrinter table;
  table.SetHeader({"method", "entropy loss", "DM", "CM", "min links",
                   "min matches", "time"});
  double kanon_loss = 0.0;
  double kk_loss = 0.0;
  for (const Row& row : methods) {
    AnonymizerConfig config;
    config.k = k;
    config.method = row.method;
    config.distance = DistanceFunction::kRatio;
    Result<AnonymizationResult> result = Anonymize(patients, loss, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const AttackResult attack = MatchReductionAttack(patients, result->table, k);
    table.AddRow({row.name, FormatDouble(result->loss, 3),
                  std::to_string(DiscernibilityMetric(result->table)),
                  FormatDouble(ClassificationMetric(patients, result->table), 3),
                  std::to_string(attack.min_neighbors()),
                  std::to_string(attack.min_matches()),
                  FormatDouble(result->elapsed_seconds, 2) + "s"});
    if (row.method == AnonymizationMethod::kAgglomerative) {
      kanon_loss = result->loss;
    }
    if (row.method == AnonymizationMethod::kKKGreedyExpansion) {
      kk_loss = result->loss;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "DM = discernibility metric (lower = finer groups), CM ="
      " misclassified fraction w.r.t. the income class.\n"
      "'min links' is what the paper's first adversary sees (consistent"
      " records per individual); 'min matches' is the second adversary's"
      " pruned count.\n\n");

  if (kanon_loss > 0) {
    std::printf(
        "the (k,k) relaxation reduces the information loss by %.0f%%"
        " versus k-anonymity, while every individual remains consistent"
        " with at least %zu published records.\n",
        100.0 * (1.0 - kk_loss / kanon_loss), k);
  }
  std::printf(
      "\nnote: against an adversary who knows the *exact* hospital"
      " population, (k,k) can leak (see privacy_audit); the hospital"
      " scenario of the paper argues that adversary is unrealistic here.\n");
  return 0;
}
