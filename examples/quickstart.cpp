// Quickstart: build a tiny table, define generalization hierarchies,
// k-anonymize it, and inspect the result.
//
//   ./quickstart [--k=2]
#include <cstdio>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/flags.h"
#include "kanon/loss/entropy_measure.h"

using namespace kanon;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 2));

  // 1. Describe the public attributes (the quasi-identifiers).
  AttributeDomain age = AttributeDomain::IntegerRange("age", 20, 39);
  Result<AttributeDomain> zipcode = AttributeDomain::Create(
      "zipcode", {"68420", "68421", "68422", "68423", "90001", "90002"});
  Result<AttributeDomain> sex = AttributeDomain::Create("sex", {"M", "F"});
  Result<Schema> schema =
      Schema::Create({age, zipcode.value(), sex.value()});

  // 2. Define what generalizations are permissible per attribute:
  //    age in nested 5/10-year bands, zipcodes grouped by prefix, sex can
  //    only be suppressed entirely.
  Result<Hierarchy> age_h = Hierarchy::Intervals(age.size(), {5, 10});
  Result<Hierarchy> zip_h = Hierarchy::FromLabelGroups(
      zipcode.value(),
      {{"68420", "68421", "68422", "68423"}, {"90001", "90002"}});
  Result<Hierarchy> sex_h = Hierarchy::SuppressionOnly(2);
  Result<GeneralizationScheme> scheme = GeneralizationScheme::Create(
      schema.value(), {age_h.value(), zip_h.value(), sex_h.value()});
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  auto scheme_ptr =
      std::make_shared<const GeneralizationScheme>(std::move(scheme).value());

  // 3. Fill the table (in a real application: ReadCsvFile).
  Dataset patients(scheme_ptr->schema());
  const char* rows[][3] = {
      {"23", "68421", "M"}, {"24", "68423", "M"}, {"27", "68420", "F"},
      {"29", "68422", "F"}, {"31", "90001", "M"}, {"33", "90002", "M"},
      {"36", "90001", "F"}, {"38", "90002", "M"},
  };
  for (const auto& row : rows) {
    Status s = patients.AppendRowLabels({row[0], row[1], row[2]});
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 4. Anonymize: the entropy measure drives the optimization.
  PrecomputedLoss loss(scheme_ptr, patients, EntropyMeasure());
  AnonymizerConfig config;
  config.k = k;
  config.method = AnonymizationMethod::kAgglomerative;
  config.distance = DistanceFunction::kRatio;  // Eq. (11), a paper favorite.
  Result<AnonymizationResult> result = Anonymize(patients, loss, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // 5. Inspect.
  std::printf("original table:\n");
  for (size_t i = 0; i < patients.num_rows(); ++i) {
    std::printf("  %s\n",
                scheme_ptr->Format(scheme_ptr->Identity(patients.row(i)))
                    .c_str());
  }
  std::printf("\n%zu-anonymized table (entropy loss %.3f bits/entry,"
              " %.1f ms):\n",
              k, result->loss, result->elapsed_seconds * 1e3);
  std::printf("%s", result->table.ToString().c_str());

  const Result<AnonymityReport> report =
      AnalyzeAnonymity(patients, result->table, k);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", report->ToString().c_str());
  return report->k_anonymous ? 0 : 1;
}
