// Working with custom data: load a CSV, infer a schema, build hierarchies
// three ways (explicit label groups, integer bands, suppression-only),
// anonymize under both loss measures, and export the generalized table.
//
//   ./custom_hierarchy [--input=records.csv] [--k=3] [--output=anon.csv]
//
// Without --input a small demo CSV is synthesized in a temporary file.
#include <cstdio>
#include <fstream>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/flags.h"
#include "kanon/data/csv.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"

using namespace kanon;

namespace {

const char* kDemoPath = "/tmp/kanon_custom_hierarchy_demo.csv";

void WriteDemoCsv() {
  std::ofstream f(kDemoPath);
  f << "department,seniority,site\n";
  const char* rows[] = {
      "engineering,junior,berlin",  "engineering,senior,berlin",
      "engineering,junior,munich",  "research,senior,berlin",
      "research,junior,munich",     "research,senior,munich",
      "sales,junior,london",        "sales,senior,london",
      "marketing,junior,london",    "marketing,senior,berlin",
      "support,junior,munich",      "support,senior,london",
  };
  for (const char* row : rows) f << row << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::string input = flags.GetString("input", "");
  const size_t k = static_cast<size_t>(flags.GetInt("k", 3));
  const std::string output = flags.GetString("output", "");

  if (input.empty()) {
    WriteDemoCsv();
    input = kDemoPath;
    std::printf("no --input given; using a synthesized demo CSV at %s\n\n",
                input.c_str());
  }

  // Infer one categorical attribute per CSV column.
  Result<Dataset> data = ReadCsvInferSchemaFile(input);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = data->schema();
  std::printf("loaded %zu rows, %zu attributes:\n", data->num_rows(),
              schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    std::printf("  %-12s %zu distinct values\n",
                schema.attribute(j).name().c_str(),
                schema.attribute(j).size());
  }

  // Build hierarchies. For the demo schema we group semantically; for an
  // arbitrary CSV every attribute falls back to suppression-only, which is
  // always a valid (if coarse) choice.
  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const AttributeDomain& attr = schema.attribute(j);
    Result<Hierarchy> h = Status::NotFound("no custom hierarchy");
    if (attr.name() == "department") {
      h = Hierarchy::FromLabelGroups(
          attr, {{"engineering", "research"},
                 {"sales", "marketing", "support"}});
    } else if (attr.name() == "site") {
      h = Hierarchy::FromLabelGroups(attr, {{"berlin", "munich"}});
    }
    if (!h.ok()) {
      h = Hierarchy::SuppressionOnly(attr.size());
    }
    if (!h.ok()) {
      std::fprintf(stderr, "%s\n", h.status().ToString().c_str());
      return 1;
    }
    hierarchies.push_back(std::move(h).value());
  }
  Result<GeneralizationScheme> scheme =
      GeneralizationScheme::Create(schema, std::move(hierarchies));
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  auto scheme_ptr =
      std::make_shared<const GeneralizationScheme>(std::move(scheme).value());

  // Anonymize under both measures and compare.
  Result<AnonymizationResult> chosen = Status::Internal("unset");
  for (const char* measure_name : {"EM", "LM"}) {
    PrecomputedLoss loss =
        std::string(measure_name) == "EM"
            ? PrecomputedLoss(scheme_ptr, data.value(), EntropyMeasure())
            : PrecomputedLoss(scheme_ptr, data.value(), LmMeasure());
    AnonymizerConfig config;
    config.k = k;
    config.method = AnonymizationMethod::kModifiedAgglomerative;
    Result<AnonymizationResult> result =
        Anonymize(data.value(), loss, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%zu-anonymization optimizing %s (loss %.3f):\n", k,
                measure_name, result->loss);
    std::printf("%s", result->table.ToString().c_str());
    if (std::string(measure_name) == "EM") {
      chosen = std::move(result);
    }
  }

  const Result<bool> k_anonymous = IsKAnonymous(chosen->table, k);
  if (!k_anonymous.ok() || !k_anonymous.value()) {
    std::fprintf(stderr, "internal error: table is not %zu-anonymous\n", k);
    return 1;
  }

  if (!output.empty()) {
    // Export the anonymized table as CSV with generalized labels.
    std::ofstream out(output);
    const GeneralizationScheme& s = *scheme_ptr;
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      out << (j ? "," : "") << schema.attribute(j).name();
    }
    out << "\n";
    for (size_t i = 0; i < chosen->table.num_rows(); ++i) {
      const GeneralizedRecord record = chosen->table.record(i);
      for (size_t j = 0; j < record.size(); ++j) {
        out << (j ? "," : "")
            << s.hierarchy(j).set(record[j]).ToString(schema.attribute(j));
      }
      out << "\n";
    }
    std::printf("\nwrote anonymized table to %s\n", output.c_str());
  }
  return 0;
}
