// Adversary's-eye view: how many published records can be linked to an
// individual, under increasing adversary knowledge, before and after
// anonymization — plus the ℓ-diversity angle (can the adversary learn the
// sensitive value even without pinpointing the record?).
//
//   ./linkage_demo [--n=500] [--k=5] [--l=2] [--seed=3]
#include <cstdio>

#include "kanon/algo/anonymizer.h"
#include "kanon/algo/diverse_anonymizer.h"
#include "kanon/anonymity/diversity.h"
#include "kanon/anonymity/linkage.h"
#include "kanon/common/flags.h"
#include "kanon/common/table_printer.h"
#include "kanon/datasets/adult.h"
#include "kanon/loss/entropy_measure.h"

using namespace kanon;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t n = static_cast<size_t>(flags.GetInt("n", 500));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const size_t l = static_cast<size_t>(flags.GetInt("l", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));

  Result<Workload> workload = MakeAdultWorkload(n, seed);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const Dataset& census = workload->dataset;
  PrecomputedLoss loss(workload->scheme, census, EntropyMeasure());

  // Publish an ℓ-diverse k-anonymization.
  AgglomerativeOptions options;
  options.distance = DistanceFunction::kRatio;
  Result<GeneralizedTable> published =
      LDiverseKAnonymize(census, loss, k, l, options);
  if (!published.ok()) {
    std::fprintf(stderr, "%s\n", published.status().ToString().c_str());
    return 1;
  }
  std::printf("published a %zu-anonymous, distinct %zu-diverse table of"
              " %zu records (entropy loss %.3f)\n\n",
              k, l, n, loss.TableLoss(published.value()));

  // The adversary studies the first individual with three knowledge levels.
  const Record victim = census.row(0);
  const Schema& schema = census.schema();
  std::printf("victim's public record: %s\n\n",
              workload->scheme->Format(workload->scheme->Identity(victim))
                  .c_str());

  struct Profile {
    const char* name;
    std::vector<size_t> known;  // Attribute indices the adversary knows.
  };
  const Profile profiles[] = {
      {"casual (age, sex)", {0, 7}},
      {"neighbor (age, sex, race, country)", {0, 7, 6, 8}},
      {"employer (all but marital/relationship)", {0, 1, 2, 4, 6, 7, 8}},
      {"full public knowledge", {0, 1, 2, 3, 4, 5, 6, 7, 8}},
  };

  TablePrinter table;
  table.SetHeader({"adversary", "raw-table candidates",
                   "published candidates"});
  GeneralizedTable raw = GeneralizedTable::Identity(workload->scheme, census);
  for (const Profile& profile : profiles) {
    std::vector<ValueCode> query(schema.num_attributes(), kNoValue);
    for (size_t j : profile.known) {
      query[j] = victim[j];
    }
    Result<std::vector<uint32_t>> raw_hits = LinkCandidates(raw, query);
    Result<std::vector<uint32_t>> pub_hits =
        LinkCandidates(published.value(), query);
    if (!raw_hits.ok() || !pub_hits.ok()) {
      std::fprintf(stderr, "linkage failed\n");
      return 1;
    }
    table.AddRow({profile.name, std::to_string(raw_hits->size()),
                  std::to_string(pub_hits->size())});
  }
  std::printf("%s\n", table.ToString().c_str());

  const size_t floor = MinLinkageSetSize(census, published.value());
  std::printf("worst case over ALL individuals: %zu candidates (promise:"
              " >= %zu)\n",
              floor, k);

  // And even within the candidate set, the sensitive value stays ambiguous.
  const bool diverse = IsDistinctLDiverse(census, published.value(), l);
  std::printf("every anonymity group carries >= %zu distinct income"
              " classes: %s\n",
              l, diverse ? "yes" : "NO");
  return floor >= k && diverse ? 0 : 1;
}
