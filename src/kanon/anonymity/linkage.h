#ifndef KANON_ANONYMITY_LINKAGE_H_
#define KANON_ANONYMITY_LINKAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// First-adversary linkage queries against a published table: given the
/// public record of one individual (what a voter register would reveal),
/// which published records could be theirs? This is the operation the
/// paper's anonymity notions bound from below — (1,k)-anonymity promises
/// |LinkCandidates| ≥ k for every represented individual.
///
/// The record may be *partial*: kNoValue entries are attributes the
/// adversary does not know, matching every published subset.
inline constexpr ValueCode kNoValue = static_cast<ValueCode>(0xFFFF);

/// Indices of the published records consistent with `record` (attributes
/// set to kNoValue are ignored). Returns an error if a known value is out
/// of its domain.
Result<std::vector<uint32_t>> LinkCandidates(const GeneralizedTable& table,
                                             const std::vector<ValueCode>& record);

/// Label-based convenience: empty strings and "*" mean "unknown".
Result<std::vector<uint32_t>> LinkCandidatesByLabel(
    const GeneralizedTable& table, const std::vector<std::string>& labels);

/// The smallest candidate-set size over all records of `dataset` — the
/// table-wide linkage guarantee an adversary with full public knowledge
/// faces (this equals the (1,k) bound of the table).
size_t MinLinkageSetSize(const Dataset& dataset,
                         const GeneralizedTable& table);

}  // namespace kanon

#endif  // KANON_ANONYMITY_LINKAGE_H_
