#include "kanon/anonymity/verify.h"

#include <algorithm>

#include "kanon/graph/consistency_graph.h"
#include "kanon/graph/hopcroft_karp.h"
#include "kanon/graph/matchable_edges.h"
#include "kanon/loss/table_metrics.h"

namespace kanon {

const char* AnonymityNotionName(AnonymityNotion notion) {
  switch (notion) {
    case AnonymityNotion::kKAnonymity:
      return "k-anonymity";
    case AnonymityNotion::kOneK:
      return "(1,k)-anonymity";
    case AnonymityNotion::kKOne:
      return "(k,1)-anonymity";
    case AnonymityNotion::kKK:
      return "(k,k)-anonymity";
    case AnonymityNotion::kGlobalOneK:
      return "global (1,k)-anonymity";
  }
  return "unknown";
}

namespace {

// The verifiers run on untrusted input (files handed to --verify), so
// malformed arguments come back as InvalidArgument instead of aborting.
Status ValidateVerifyArgs(const Dataset& dataset,
                          const GeneralizedTable& table, size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be positive");
  }
  if (dataset.num_attributes() != table.num_attributes()) {
    return Status::InvalidArgument(
        "dataset/table arity mismatch: dataset has " +
        std::to_string(dataset.num_attributes()) +
        " attributes, table has " + std::to_string(table.num_attributes()));
  }
  return Status::OK();
}

// The matching-based notions additionally need |D| = |g(D)|.
Status ValidateSquare(const Dataset& dataset, const GeneralizedTable& table) {
  if (dataset.num_rows() != table.num_rows()) {
    return Status::InvalidArgument(
        "global (1,k) requires one generalized record per original: "
        "dataset has " +
        std::to_string(dataset.num_rows()) + " rows, table has " +
        std::to_string(table.num_rows()));
  }
  return Status::OK();
}

// A satisfied witness for `notion`.
NotionWitness Satisfied(AnonymityNotion notion) {
  NotionWitness witness;
  witness.notion = notion;
  return witness;
}

// A violation of `notion` at `row` with `observed` < k.
NotionWitness Violation(AnonymityNotion notion, size_t row, bool in_table,
                        size_t observed, size_t cluster) {
  NotionWitness witness;
  witness.satisfied = false;
  witness.notion = notion;
  witness.row = row;
  witness.row_in_table = in_table;
  witness.observed = observed;
  witness.cluster = cluster;
  return witness;
}

}  // namespace

std::string NotionWitness::ToString(size_t k) const {
  if (satisfied) {
    return std::string(AnonymityNotionName(notion)) + " satisfied";
  }
  std::string out = std::string(AnonymityNotionName(notion)) + " violated: " +
                    (row_in_table ? "table row " : "dataset row ") +
                    std::to_string(row);
  switch (notion) {
    case AnonymityNotion::kKAnonymity:
      out += " is in an identical-record group of " + std::to_string(observed);
      out += " < " + std::to_string(k) + " (group of table row " +
             std::to_string(cluster) + ")";
      break;
    case AnonymityNotion::kOneK:
    case AnonymityNotion::kKK:
      if (!row_in_table) {
        out += " is consistent with " + std::to_string(observed) + " < " +
               std::to_string(k) + " generalized records";
        break;
      }
      [[fallthrough]];
    case AnonymityNotion::kKOne:
      out += " covers " + std::to_string(observed) + " < " +
             std::to_string(k) + " originals";
      break;
    case AnonymityNotion::kGlobalOneK:
      out += " has " + std::to_string(observed) + " < " + std::to_string(k) +
             " matches";
      break;
  }
  return out;
}

Result<NotionWitness> WitnessKAnonymity(const GeneralizedTable& table,
                                        size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be positive");
  }
  for (const auto& group : GroupIdenticalRecords(table)) {
    if (group.size() < k) {
      // Groups hold ascending row indices; the smallest is the cluster id.
      return Violation(AnonymityNotion::kKAnonymity, group.front(),
                       /*in_table=*/true, group.size(), group.front());
    }
  }
  return Satisfied(AnonymityNotion::kKAnonymity);
}

Result<NotionWitness> Witness1K(const Dataset& dataset,
                                const GeneralizedTable& table, size_t k) {
  KANON_RETURN_NOT_OK(ValidateVerifyArgs(dataset, table, k));
  for (uint32_t i = 0; i < dataset.num_rows(); ++i) {
    size_t degree = 0;
    for (uint32_t t = 0; t < table.num_rows() && degree < k; ++t) {
      if (table.ConsistentPair(dataset, i, t)) ++degree;
    }
    if (degree < k) {
      return Violation(AnonymityNotion::kOneK, i, /*in_table=*/false, degree,
                       i);
    }
  }
  return Satisfied(AnonymityNotion::kOneK);
}

Result<NotionWitness> WitnessK1(const Dataset& dataset,
                                const GeneralizedTable& table, size_t k) {
  KANON_RETURN_NOT_OK(ValidateVerifyArgs(dataset, table, k));
  for (uint32_t t = 0; t < table.num_rows(); ++t) {
    size_t degree = 0;
    for (uint32_t i = 0; i < dataset.num_rows() && degree < k; ++i) {
      if (table.ConsistentPair(dataset, i, t)) ++degree;
    }
    if (degree < k) {
      return Violation(AnonymityNotion::kKOne, t, /*in_table=*/true, degree,
                       t);
    }
  }
  return Satisfied(AnonymityNotion::kKOne);
}

Result<NotionWitness> WitnessKK(const Dataset& dataset,
                                const GeneralizedTable& table, size_t k) {
  KANON_ASSIGN_OR_RETURN(NotionWitness one_k, Witness1K(dataset, table, k));
  if (!one_k.satisfied) {
    one_k.notion = AnonymityNotion::kKK;
    return one_k;
  }
  KANON_ASSIGN_OR_RETURN(NotionWitness k_one, WitnessK1(dataset, table, k));
  k_one.notion = AnonymityNotion::kKK;
  return k_one;
}

Result<NotionWitness> WitnessGlobal1K(const Dataset& dataset,
                                      const GeneralizedTable& table,
                                      size_t k) {
  KANON_RETURN_NOT_OK(ValidateVerifyArgs(dataset, table, k));
  KANON_RETURN_NOT_OK(ValidateSquare(dataset, table));
  const BipartiteGraph graph = BuildConsistencyGraph(dataset, table);
  KANON_ASSIGN_OR_RETURN(const MatchableEdgeSets matchable,
                         ComputeMatchableEdges(graph));
  if (!matchable.has_perfect_matching) {
    // No perfect matching: every original has zero matches; name the first.
    return Violation(AnonymityNotion::kGlobalOneK, 0, /*in_table=*/false, 0,
                     0);
  }
  for (size_t i = 0; i < matchable.matches.size(); ++i) {
    if (matchable.matches[i].size() < k) {
      return Violation(AnonymityNotion::kGlobalOneK, i, /*in_table=*/false,
                       matchable.matches[i].size(), i);
    }
  }
  return Satisfied(AnonymityNotion::kGlobalOneK);
}

Result<NotionWitness> WitnessNotion(AnonymityNotion notion,
                                    const Dataset& dataset,
                                    const GeneralizedTable& table, size_t k) {
  switch (notion) {
    case AnonymityNotion::kKAnonymity:
      return WitnessKAnonymity(table, k);
    case AnonymityNotion::kOneK:
      return Witness1K(dataset, table, k);
    case AnonymityNotion::kKOne:
      return WitnessK1(dataset, table, k);
    case AnonymityNotion::kKK:
      return WitnessKK(dataset, table, k);
    case AnonymityNotion::kGlobalOneK:
      return WitnessGlobal1K(dataset, table, k);
  }
  return Status::InvalidArgument("unknown anonymity notion");
}

Result<bool> IsKAnonymous(const GeneralizedTable& table, size_t k) {
  KANON_ASSIGN_OR_RETURN(const NotionWitness w, WitnessKAnonymity(table, k));
  return w.satisfied;
}

Result<bool> Is1KAnonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k) {
  KANON_ASSIGN_OR_RETURN(const NotionWitness w, Witness1K(dataset, table, k));
  return w.satisfied;
}

Result<bool> IsK1Anonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k) {
  KANON_ASSIGN_OR_RETURN(const NotionWitness w, WitnessK1(dataset, table, k));
  return w.satisfied;
}

Result<bool> IsKKAnonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k) {
  KANON_ASSIGN_OR_RETURN(const NotionWitness w, WitnessKK(dataset, table, k));
  return w.satisfied;
}

Result<bool> IsGlobal1KAnonymous(const Dataset& dataset,
                                 const GeneralizedTable& table, size_t k) {
  KANON_ASSIGN_OR_RETURN(const NotionWitness w,
                         WitnessGlobal1K(dataset, table, k));
  return w.satisfied;
}

Result<bool> IsGlobal1KAnonymousNaive(const Dataset& dataset,
                                      const GeneralizedTable& table,
                                      size_t k) {
  KANON_RETURN_NOT_OK(ValidateVerifyArgs(dataset, table, k));
  KANON_RETURN_NOT_OK(ValidateSquare(dataset, table));
  const BipartiteGraph graph = BuildConsistencyGraph(dataset, table);
  KANON_ASSIGN_OR_RETURN(const MatchableEdgeSets matchable,
                         ComputeMatchableEdgesNaive(graph));
  if (!matchable.has_perfect_matching) return false;
  for (const auto& matches : matchable.matches) {
    if (matches.size() < k) return false;
  }
  return true;
}

Result<bool> SatisfiesNotion(AnonymityNotion notion, const Dataset& dataset,
                             const GeneralizedTable& table, size_t k) {
  switch (notion) {
    case AnonymityNotion::kKAnonymity:
      return IsKAnonymous(table, k);
    case AnonymityNotion::kOneK:
      return Is1KAnonymous(dataset, table, k);
    case AnonymityNotion::kKOne:
      return IsK1Anonymous(dataset, table, k);
    case AnonymityNotion::kKK:
      return IsKKAnonymous(dataset, table, k);
    case AnonymityNotion::kGlobalOneK:
      return IsGlobal1KAnonymous(dataset, table, k);
  }
  return Status::InvalidArgument("unknown anonymity notion");
}

std::string AnonymityReport::ToString() const {
  std::string out;
  out += "k = " + std::to_string(k) + "\n";
  auto line = [&out](const char* name, bool value) {
    out += std::string(name) + ": " + (value ? "yes" : "no") + "\n";
  };
  line("k-anonymous        ", k_anonymous);
  line("(1,k)-anonymous    ", one_k);
  line("(k,1)-anonymous    ", k_one);
  line("(k,k)-anonymous    ", kk);
  line("global (1,k)-anon. ", global_one_k);
  out += "min #consistent generalized records per original: " +
         std::to_string(min_left_degree) + "\n";
  out += "min #consistent originals per generalized record: " +
         std::to_string(min_right_degree) + "\n";
  out += "min #matches per original: " + std::to_string(min_matches) + "\n";
  out += "smallest identical-record group: " +
         std::to_string(min_group_size) + "\n";
  return out;
}

Result<AnonymityReport> AnalyzeAnonymity(const Dataset& dataset,
                                         const GeneralizedTable& table,
                                         size_t k) {
  KANON_RETURN_NOT_OK(ValidateVerifyArgs(dataset, table, k));
  AnonymityReport report;
  report.k = k;

  const BipartiteGraph graph = BuildConsistencyGraph(dataset, table);

  size_t min_left = table.num_rows();
  for (uint32_t i = 0; i < graph.num_left(); ++i) {
    min_left = std::min(min_left, graph.Neighbors(i).size());
  }
  report.min_left_degree = graph.num_left() == 0 ? 0 : min_left;

  const std::vector<uint32_t> right_degrees = graph.RightDegrees();
  report.min_right_degree =
      right_degrees.empty()
          ? 0
          : *std::min_element(right_degrees.begin(), right_degrees.end());

  size_t min_group = table.num_rows();
  for (const auto& group : GroupIdenticalRecords(table)) {
    min_group = std::min(min_group, group.size());
  }
  report.min_group_size = table.num_rows() == 0 ? 0 : min_group;

  size_t min_matches = 0;
  if (graph.num_left() == graph.num_right() && graph.num_left() > 0) {
    KANON_ASSIGN_OR_RETURN(const MatchableEdgeSets matchable,
                           ComputeMatchableEdges(graph));
    if (matchable.has_perfect_matching) {
      min_matches = table.num_rows();
      for (const auto& matches : matchable.matches) {
        min_matches = std::min(min_matches, matches.size());
      }
    }
  }
  report.min_matches = min_matches;

  report.k_anonymous = report.min_group_size >= k && table.num_rows() > 0;
  report.one_k = report.min_left_degree >= k;
  report.k_one = report.min_right_degree >= k;
  report.kk = report.one_k && report.k_one;
  report.global_one_k = report.min_matches >= k;
  return report;
}

}  // namespace kanon
