#ifndef KANON_ANONYMITY_VERIFY_H_
#define KANON_ANONYMITY_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// The five k-type anonymity notions of the paper.
enum class AnonymityNotion {
  kKAnonymity,      // Definition 4.1.
  kOneK,            // (1,k): Definition 4.4.
  kKOne,            // (k,1): Definition 4.4.
  kKK,              // (k,k): Definition 4.4.
  kGlobalOneK,      // Global (1,k): Definition 4.6.
};

const char* AnonymityNotionName(AnonymityNotion notion);

/// The verifiers take untrusted (dataset, table, k) triples — e.g. files a
/// user asks `kanon_cli --verify` about — so argument problems (k = 0,
/// arity or row-count mismatches) surface as Status::InvalidArgument, never
/// as process aborts.

/// Definition 4.1: every generalized record is identical to at least k−1
/// other generalized records.
Result<bool> IsKAnonymous(const GeneralizedTable& table, size_t k);

/// Definition 4.4: every record of D is consistent with at least k records
/// of g(D).
Result<bool> Is1KAnonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k);

/// Definition 4.4: every record of g(D) is consistent with at least k
/// records of D.
Result<bool> IsK1Anonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k);

/// Definition 4.4: both (1,k) and (k,1).
Result<bool> IsKKAnonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k);

/// Definition 4.6: every record of D has at least k matches — neighbors
/// whose edge extends to a perfect matching of V_{D,g(D)}. Uses the
/// O(V+E) matchable-edges algorithm.
Result<bool> IsGlobal1KAnonymous(const Dataset& dataset,
                                 const GeneralizedTable& table, size_t k);

/// Same notion, decided with the paper's per-edge Hopcroft–Karp test.
/// Exponentially slower in practice; kept as a cross-validation oracle.
Result<bool> IsGlobal1KAnonymousNaive(const Dataset& dataset,
                                      const GeneralizedTable& table, size_t k);

/// Checks one notion.
Result<bool> SatisfiesNotion(AnonymityNotion notion, const Dataset& dataset,
                             const GeneralizedTable& table, size_t k);

/// Where an anonymity notion first fails. Beyond the plain yes/no of the
/// Is* verifiers, a witness names the offending row and the count that fell
/// short of k — what an oracle failure message needs, and what the
/// check/ shrinker uses to keep a reproducer failing while it drops rows.
struct NotionWitness {
  bool satisfied = true;
  AnonymityNotion notion = AnonymityNotion::kKAnonymity;
  /// The first violating row (scan order): a *table* row for k-anonymity
  /// and (k,1); a *dataset* row for (1,k) and global (1,k). For (k,k),
  /// whichever side failed first ((1,k) is checked before (k,1)).
  size_t row = 0;
  /// True when `row` indexes the generalized table, false for the dataset.
  bool row_in_table = false;
  /// The count that should have reached k: the identical-record group size
  /// for k-anonymity, the consistency degree for (1,k)/(k,1), the number of
  /// matches for global (1,k).
  size_t observed = 0;
  /// Cluster id of the violation for k-anonymity: the smallest table row
  /// with the same generalized record as `row`. Equal to `row` for the
  /// other notions.
  size_t cluster = 0;

  /// e.g. "(k,1) violated: table row 3 covers 1 < 2 originals".
  std::string ToString(size_t k) const;
};

/// Witness-returning counterparts of the Is* verifiers. Same validation,
/// same scan order, same cost (both stop at the first violation); the Is*
/// functions are implemented on top of these.
Result<NotionWitness> WitnessKAnonymity(const GeneralizedTable& table,
                                        size_t k);
Result<NotionWitness> Witness1K(const Dataset& dataset,
                                const GeneralizedTable& table, size_t k);
Result<NotionWitness> WitnessK1(const Dataset& dataset,
                                const GeneralizedTable& table, size_t k);
Result<NotionWitness> WitnessKK(const Dataset& dataset,
                                const GeneralizedTable& table, size_t k);
Result<NotionWitness> WitnessGlobal1K(const Dataset& dataset,
                                      const GeneralizedTable& table, size_t k);

/// Witness for one notion (the k-anonymity case ignores `dataset`).
Result<NotionWitness> WitnessNotion(AnonymityNotion notion,
                                    const Dataset& dataset,
                                    const GeneralizedTable& table, size_t k);

/// Degree/match statistics of a (dataset, table) pair — everything the
/// verifiers decide, in one pass, plus distribution summaries.
struct AnonymityReport {
  size_t k = 0;
  bool k_anonymous = false;
  bool one_k = false;
  bool k_one = false;
  bool kk = false;
  bool global_one_k = false;

  /// Min over originals of #consistent generalized records (the (1,k) side).
  size_t min_left_degree = 0;
  /// Min over generalized records of #consistent originals (the (k,1) side).
  size_t min_right_degree = 0;
  /// Min over originals of #matches (the global (1,k) side).
  size_t min_matches = 0;
  /// Smallest group of identical generalized records.
  size_t min_group_size = 0;

  std::string ToString() const;
};

/// Full analysis; builds the consistency graph once.
Result<AnonymityReport> AnalyzeAnonymity(const Dataset& dataset,
                                         const GeneralizedTable& table,
                                         size_t k);

}  // namespace kanon

#endif  // KANON_ANONYMITY_VERIFY_H_
