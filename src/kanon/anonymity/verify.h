#ifndef KANON_ANONYMITY_VERIFY_H_
#define KANON_ANONYMITY_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// The five k-type anonymity notions of the paper.
enum class AnonymityNotion {
  kKAnonymity,      // Definition 4.1.
  kOneK,            // (1,k): Definition 4.4.
  kKOne,            // (k,1): Definition 4.4.
  kKK,              // (k,k): Definition 4.4.
  kGlobalOneK,      // Global (1,k): Definition 4.6.
};

const char* AnonymityNotionName(AnonymityNotion notion);

/// The verifiers take untrusted (dataset, table, k) triples — e.g. files a
/// user asks `kanon_cli --verify` about — so argument problems (k = 0,
/// arity or row-count mismatches) surface as Status::InvalidArgument, never
/// as process aborts.

/// Definition 4.1: every generalized record is identical to at least k−1
/// other generalized records.
Result<bool> IsKAnonymous(const GeneralizedTable& table, size_t k);

/// Definition 4.4: every record of D is consistent with at least k records
/// of g(D).
Result<bool> Is1KAnonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k);

/// Definition 4.4: every record of g(D) is consistent with at least k
/// records of D.
Result<bool> IsK1Anonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k);

/// Definition 4.4: both (1,k) and (k,1).
Result<bool> IsKKAnonymous(const Dataset& dataset,
                           const GeneralizedTable& table, size_t k);

/// Definition 4.6: every record of D has at least k matches — neighbors
/// whose edge extends to a perfect matching of V_{D,g(D)}. Uses the
/// O(V+E) matchable-edges algorithm.
Result<bool> IsGlobal1KAnonymous(const Dataset& dataset,
                                 const GeneralizedTable& table, size_t k);

/// Same notion, decided with the paper's per-edge Hopcroft–Karp test.
/// Exponentially slower in practice; kept as a cross-validation oracle.
Result<bool> IsGlobal1KAnonymousNaive(const Dataset& dataset,
                                      const GeneralizedTable& table, size_t k);

/// Checks one notion.
Result<bool> SatisfiesNotion(AnonymityNotion notion, const Dataset& dataset,
                             const GeneralizedTable& table, size_t k);

/// Degree/match statistics of a (dataset, table) pair — everything the
/// verifiers decide, in one pass, plus distribution summaries.
struct AnonymityReport {
  size_t k = 0;
  bool k_anonymous = false;
  bool one_k = false;
  bool k_one = false;
  bool kk = false;
  bool global_one_k = false;

  /// Min over originals of #consistent generalized records (the (1,k) side).
  size_t min_left_degree = 0;
  /// Min over generalized records of #consistent originals (the (k,1) side).
  size_t min_right_degree = 0;
  /// Min over originals of #matches (the global (1,k) side).
  size_t min_matches = 0;
  /// Smallest group of identical generalized records.
  size_t min_group_size = 0;

  std::string ToString() const;
};

/// Full analysis; builds the consistency graph once.
Result<AnonymityReport> AnalyzeAnonymity(const Dataset& dataset,
                                         const GeneralizedTable& table,
                                         size_t k);

}  // namespace kanon

#endif  // KANON_ANONYMITY_VERIFY_H_
