#include "kanon/anonymity/linkage.h"

#include <algorithm>

#include "kanon/common/check.h"

namespace kanon {

Result<std::vector<uint32_t>> LinkCandidates(
    const GeneralizedTable& table, const std::vector<ValueCode>& record) {
  const GeneralizationScheme& scheme = table.scheme();
  const size_t r = scheme.num_attributes();
  if (record.size() != r) {
    return Status::InvalidArgument("record has " +
                                   std::to_string(record.size()) +
                                   " values; expected " + std::to_string(r));
  }
  for (size_t j = 0; j < r; ++j) {
    if (record[j] != kNoValue &&
        record[j] >= scheme.schema().attribute(j).size()) {
      return Status::OutOfRange("value for attribute '" +
                                scheme.schema().attribute(j).name() +
                                "' out of its domain");
    }
  }
  std::vector<uint32_t> candidates;
  for (uint32_t t = 0; t < table.num_rows(); ++t) {
    bool consistent = true;
    for (size_t j = 0; j < r && consistent; ++j) {
      if (record[j] == kNoValue) continue;
      consistent = scheme.hierarchy(j).Contains(table.at(t, j), record[j]);
    }
    if (consistent) {
      candidates.push_back(t);
    }
  }
  return candidates;
}

Result<std::vector<uint32_t>> LinkCandidatesByLabel(
    const GeneralizedTable& table, const std::vector<std::string>& labels) {
  const Schema& schema = table.scheme().schema();
  if (labels.size() != schema.num_attributes()) {
    return Status::InvalidArgument("label record has " +
                                   std::to_string(labels.size()) +
                                   " values; expected " +
                                   std::to_string(schema.num_attributes()));
  }
  std::vector<ValueCode> record(labels.size(), kNoValue);
  for (size_t j = 0; j < labels.size(); ++j) {
    if (labels[j].empty() || labels[j] == "*") continue;
    KANON_ASSIGN_OR_RETURN(record[j], schema.attribute(j).CodeOf(labels[j]));
  }
  return LinkCandidates(table, record);
}

size_t MinLinkageSetSize(const Dataset& dataset,
                         const GeneralizedTable& table) {
  KANON_CHECK(dataset.num_attributes() == table.num_attributes(),
              "dataset/table arity mismatch");
  if (dataset.num_rows() == 0) return 0;
  size_t min_size = table.num_rows();
  for (uint32_t i = 0; i < dataset.num_rows(); ++i) {
    size_t count = 0;
    for (uint32_t t = 0; t < table.num_rows(); ++t) {
      if (table.ConsistentPair(dataset, i, t)) ++count;
    }
    min_size = std::min(min_size, count);
  }
  return min_size;
}

}  // namespace kanon
