#include "kanon/anonymity/attack.h"

#include <algorithm>

#include "kanon/common/check.h"
#include "kanon/common/text.h"
#include "kanon/graph/consistency_graph.h"
#include "kanon/graph/matchable_edges.h"

namespace kanon {

size_t AttackResult::min_neighbors() const {
  if (neighbor_counts.empty()) return 0;
  return *std::min_element(neighbor_counts.begin(), neighbor_counts.end());
}

size_t AttackResult::min_matches() const {
  if (match_counts.empty()) return 0;
  return *std::min_element(match_counts.begin(), match_counts.end());
}

std::string AttackResult::Summary() const {
  const size_t n = match_counts.size();
  double avg_neighbors = 0.0;
  double avg_matches = 0.0;
  for (size_t i = 0; i < n; ++i) {
    avg_neighbors += neighbor_counts[i];
    avg_matches += match_counts[i];
  }
  if (n > 0) {
    avg_neighbors /= static_cast<double>(n);
    avg_matches /= static_cast<double>(n);
  }
  std::string out;
  out += "second-adversary attack (k = " + std::to_string(k) + ", n = " +
         std::to_string(n) + ")\n";
  out += "  neighbors per record: min " + std::to_string(min_neighbors()) +
         ", avg " + FormatDouble(avg_neighbors, 2) + "\n";
  out += "  matches per record:   min " + std::to_string(min_matches()) +
         ", avg " + FormatDouble(avg_matches, 2) + "\n";
  out += "  breached (<k matches): " + std::to_string(breached_records.size()) +
         "\n";
  out += "  re-identified (=1 match): " +
         std::to_string(reidentified_records.size()) + "\n";
  return out;
}

AttackResult MatchReductionAttack(const Dataset& dataset,
                                  const GeneralizedTable& table, size_t k) {
  KANON_CHECK(k >= 1, "k must be positive");
  KANON_CHECK(dataset.num_rows() == table.num_rows(),
              "attack requires one generalized record per dataset row");
  const size_t n = dataset.num_rows();

  AttackResult result;
  result.k = k;
  result.neighbor_counts.resize(n, 0);
  result.match_counts.resize(n, 0);

  const BipartiteGraph graph = BuildConsistencyGraph(dataset, table);
  for (uint32_t i = 0; i < n; ++i) {
    result.neighbor_counts[i] =
        static_cast<uint32_t>(graph.Neighbors(i).size());
  }

  const Result<MatchableEdgeSets> matchable = ComputeMatchableEdges(graph);
  KANON_CHECK(matchable.ok(), matchable.status().ToString());
  if (matchable->has_perfect_matching) {
    for (uint32_t i = 0; i < n; ++i) {
      result.match_counts[i] =
          static_cast<uint32_t>(matchable->matches[i].size());
    }
  }

  for (uint32_t i = 0; i < n; ++i) {
    if (result.match_counts[i] < k) {
      result.breached_records.push_back(i);
    }
    if (result.match_counts[i] == 1) {
      result.reidentified_records.push_back(i);
    }
  }
  return result;
}

}  // namespace kanon
