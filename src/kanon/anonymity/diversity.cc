#include "kanon/anonymity/diversity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "kanon/common/check.h"
#include "kanon/loss/table_metrics.h"

namespace kanon {

namespace {

void CheckArgs(const Dataset& dataset, const GeneralizedTable& table) {
  KANON_CHECK(dataset.has_class_column(),
              "ℓ-diversity requires a class column");
  KANON_CHECK(dataset.num_rows() == table.num_rows(), "row count mismatch");
}

}  // namespace

bool IsDistinctLDiverse(const Dataset& dataset, const GeneralizedTable& table,
                        size_t l) {
  KANON_CHECK(l >= 1, "l must be positive");
  CheckArgs(dataset, table);
  return DistinctDiversity(dataset, table) >= l;
}

bool IsEntropyLDiverse(const Dataset& dataset, const GeneralizedTable& table,
                       double l) {
  KANON_CHECK(l >= 1.0, "l must be at least 1");
  CheckArgs(dataset, table);
  const double threshold = std::log2(l);
  const size_t num_classes = dataset.class_domain().size();
  for (const auto& group : GroupIdenticalRecords(table)) {
    std::vector<size_t> counts(num_classes, 0);
    for (uint32_t row : group) {
      ++counts[dataset.class_of(row)];
    }
    double entropy = 0.0;
    for (size_t c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) /
                       static_cast<double>(group.size());
      entropy -= p * std::log2(p);
    }
    if (entropy < threshold - 1e-12) return false;
  }
  return true;
}

size_t DistinctDiversity(const Dataset& dataset,
                         const GeneralizedTable& table) {
  CheckArgs(dataset, table);
  if (table.num_rows() == 0) return 0;
  size_t min_distinct = SIZE_MAX;
  for (const auto& group : GroupIdenticalRecords(table)) {
    std::set<ValueCode> classes;
    for (uint32_t row : group) {
      classes.insert(dataset.class_of(row));
    }
    min_distinct = std::min(min_distinct, classes.size());
  }
  return min_distinct;
}

bool IsConsistencyLDiverse(const Dataset& dataset,
                           const GeneralizedTable& table, size_t l) {
  KANON_CHECK(l >= 1, "l must be positive");
  CheckArgs(dataset, table);
  for (uint32_t i = 0; i < dataset.num_rows(); ++i) {
    std::set<ValueCode> classes;
    for (uint32_t t = 0; t < table.num_rows() && classes.size() < l; ++t) {
      if (table.ConsistentPair(dataset, i, t)) {
        classes.insert(dataset.class_of(t));
      }
    }
    if (classes.size() < l) return false;
  }
  return true;
}

}  // namespace kanon
