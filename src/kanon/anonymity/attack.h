#ifndef KANON_ANONYMITY_ATTACK_H_
#define KANON_ANONYMITY_ATTACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// Result of the second-adversary attack of Section IV-A: an adversary who
/// knows the entire public database D and the published table g(D) builds
/// the bipartite consistency graph and prunes, for every individual, the
/// neighbors that are *not* matches (cannot belong to any perfect
/// matching). A record whose match count drops below k is a privacy breach
/// of the k-anonymity goal even when g(D) is (k,k)-anonymous.
struct AttackResult {
  size_t k = 0;
  /// Per original record: #neighbors in V_{D,g(D)} (what the *first*
  /// adversary sees).
  std::vector<uint32_t> neighbor_counts;
  /// Per original record: #matches after pruning (what the *second*
  /// adversary can narrow the candidate set down to).
  std::vector<uint32_t> match_counts;
  /// Records whose match count is below k — individuals the second
  /// adversary links to fewer than k generalized records.
  std::vector<uint32_t> breached_records;
  /// Records the attack pins to exactly one generalized record — full
  /// re-identification.
  std::vector<uint32_t> reidentified_records;

  size_t min_neighbors() const;
  size_t min_matches() const;
  std::string Summary() const;
};

/// Runs the attack. The table must have one generalized record per dataset
/// row. If the consistency graph has no perfect matching (g(D) is not a
/// row-wise generalization of any permutation of D), every record counts as
/// breached with zero matches.
AttackResult MatchReductionAttack(const Dataset& dataset,
                                  const GeneralizedTable& table, size_t k);

}  // namespace kanon

#endif  // KANON_ANONYMITY_ATTACK_H_
