#ifndef KANON_ANONYMITY_DIVERSITY_H_
#define KANON_ANONYMITY_DIVERSITY_H_

#include <cstddef>

#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// ℓ-diversity (Machanavajjhala et al.), which the paper points to as the
/// natural strengthening of its notions on the sensitive-attribute side:
/// every anonymity group (rows sharing the same generalized record) must
/// contain "diverse enough" values of the sensitive class column.
///
/// Distinct ℓ-diversity: each group has at least ℓ distinct class values.
/// Requires dataset.has_class_column() and equal row counts.
bool IsDistinctLDiverse(const Dataset& dataset, const GeneralizedTable& table,
                        size_t l);

/// Entropy ℓ-diversity: each group's class distribution has entropy of at
/// least log2(ℓ).
bool IsEntropyLDiverse(const Dataset& dataset, const GeneralizedTable& table,
                       double l);

/// The largest ℓ such that the table is distinct ℓ-diverse (the minimum,
/// over the groups, of the number of distinct class values). 0 for an
/// empty table.
size_t DistinctDiversity(const Dataset& dataset,
                         const GeneralizedTable& table);

/// Consistency-side diversity for the relaxed notions, where groups of
/// identical records need not exist: for every original record, the set of
/// generalized records consistent with it must cover at least ℓ distinct
/// class values (each generalized record contributes the class of its own
/// original). This is the natural transplant of distinct ℓ-diversity to
/// (1,k)/(k,k)-anonymized tables; the paper leaves its systematic study to
/// future work.
bool IsConsistencyLDiverse(const Dataset& dataset,
                           const GeneralizedTable& table, size_t l);

}  // namespace kanon

#endif  // KANON_ANONYMITY_DIVERSITY_H_
