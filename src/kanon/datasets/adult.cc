#include "kanon/datasets/adult.h"

#include <algorithm>
#include <fstream>

#include "kanon/common/rng.h"
#include "kanon/common/text.h"

namespace kanon {

namespace {

constexpr int kMinAge = 17;
constexpr int kMaxAge = 90;

const char* const kWorkclass[] = {
    "Private",      "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov",    "State-gov",        "Without-pay",  "Never-worked"};
const double kWorkclassW[] = {0.730, 0.080, 0.035, 0.030,
                              0.065, 0.040, 0.015, 0.005};

const char* const kEducation[] = {
    "Preschool", "1st-4th",      "5th-6th",   "7th-8th",  "9th",
    "10th",      "11th",         "12th",      "HS-grad",  "Some-college",
    "Assoc-voc", "Assoc-acdm",   "Bachelors", "Masters",  "Prof-school",
    "Doctorate"};
const double kEducationW[] = {0.002, 0.005, 0.010, 0.020, 0.015, 0.028,
                              0.036, 0.013, 0.320, 0.222, 0.042, 0.032,
                              0.165, 0.053, 0.017, 0.012};

const char* const kMarital[] = {
    "Married-civ-spouse", "Never-married",         "Divorced", "Separated",
    "Widowed",            "Married-spouse-absent", "Married-AF-spouse"};
const double kMaritalW[] = {0.460, 0.328, 0.136, 0.031, 0.031, 0.012, 0.002};

const char* const kOccupation[] = {
    "Prof-specialty",  "Craft-repair",      "Exec-managerial",
    "Adm-clerical",    "Sales",             "Other-service",
    "Machine-op-inspct", "Transport-moving", "Handlers-cleaners",
    "Farming-fishing", "Tech-support",      "Protective-serv",
    "Priv-house-serv", "Armed-Forces"};
const double kOccupationW[] = {0.134, 0.133, 0.132, 0.122, 0.118, 0.107,
                               0.065, 0.052, 0.045, 0.032, 0.030, 0.021,
                               0.005, 0.004};

const char* const kRelationship[] = {"Husband",   "Not-in-family",
                                     "Own-child", "Unmarried",
                                     "Wife",      "Other-relative"};

const char* const kRace[] = {"White", "Black", "Asian-Pac-Islander",
                             "Amer-Indian-Eskimo", "Other"};
const double kRaceW[] = {0.854, 0.096, 0.031, 0.010, 0.009};

const char* const kSex[] = {"Male", "Female"};
const double kSexW[] = {0.670, 0.330};

// The 41 native countries of the UCI file, grouped by region.
const char* const kCountryNA[] = {"United-States", "Canada",
                                  "Outlying-US(Guam-USVI-etc)"};
const char* const kCountryLatin[] = {
    "Mexico",  "Puerto-Rico", "Cuba",     "El-Salvador",
    "Guatemala", "Honduras",  "Nicaragua", "Dominican-Republic",
    "Haiti",   "Jamaica",     "Trinadad&Tobago", "Columbia",
    "Ecuador", "Peru"};
const char* const kCountryEurope[] = {
    "England", "Germany", "France",  "Italy",      "Poland",
    "Portugal", "Greece", "Ireland", "Scotland",   "Yugoslavia",
    "Hungary", "Holand-Netherlands"};
const char* const kCountryAsia[] = {
    "Philippines", "India", "China",    "Japan", "Vietnam", "Taiwan",
    "Iran",        "Cambodia", "Thailand", "Laos", "Hong",  "South"};

template <size_t N>
std::vector<std::string> ToVector(const char* const (&items)[N]) {
  return std::vector<std::string>(items, items + N);
}

template <size_t N>
std::vector<double> ToWeights(const double (&items)[N]) {
  return std::vector<double>(items, items + N);
}

// Age histogram approximating the census: ramps up through the twenties,
// peaks in the mid-thirties, then decays.
std::vector<double> AgeWeights() {
  std::vector<double> weights;
  for (int age = kMinAge; age <= kMaxAge; ++age) {
    double w;
    if (age < 23) {
      w = 0.6 + 0.08 * (age - kMinAge);
    } else if (age < 37) {
      w = 1.1 + 0.02 * (age - 23);
    } else if (age < 60) {
      w = 1.38 - 0.04 * (age - 37);
    } else {
      w = std::max(0.04, 0.46 - 0.02 * (age - 60));
    }
    weights.push_back(w);
  }
  return weights;
}

struct AdultSchemaParts {
  Schema schema;
  GeneralizationScheme scheme;
};

Result<AdultSchemaParts> BuildAdultSchema() {
  std::vector<std::string> countries;
  const std::vector<std::vector<std::string>> country_groups = {
      ToVector(kCountryNA), ToVector(kCountryLatin), ToVector(kCountryEurope),
      ToVector(kCountryAsia)};
  for (const auto& group : country_groups) {
    countries.insert(countries.end(), group.begin(), group.end());
  }

  std::vector<AttributeDomain> attributes;
  attributes.push_back(AttributeDomain::IntegerRange("age", kMinAge, kMaxAge));
  auto add = [&attributes](std::string name,
                           std::vector<std::string> labels) -> Status {
    Result<AttributeDomain> domain =
        AttributeDomain::Create(std::move(name), std::move(labels));
    KANON_RETURN_NOT_OK(domain.status());
    attributes.push_back(std::move(domain).value());
    return Status::OK();
  };
  KANON_RETURN_NOT_OK(add("work-class", ToVector(kWorkclass)));
  KANON_RETURN_NOT_OK(add("education", ToVector(kEducation)));
  KANON_RETURN_NOT_OK(add("marital-status", ToVector(kMarital)));
  KANON_RETURN_NOT_OK(add("occupation", ToVector(kOccupation)));
  KANON_RETURN_NOT_OK(add("relationship", ToVector(kRelationship)));
  KANON_RETURN_NOT_OK(add("race", ToVector(kRace)));
  KANON_RETURN_NOT_OK(add("sex", ToVector(kSex)));
  KANON_RETURN_NOT_OK(add("native-country", countries));
  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attributes)));

  std::vector<Hierarchy> hierarchies;
  // age: nested 5/10/20-year bands.
  KANON_ASSIGN_OR_RETURN(
      Hierarchy age_h,
      Hierarchy::Intervals(schema.attribute(0).size(), {5, 10, 20}));
  hierarchies.push_back(std::move(age_h));

  auto add_label_groups =
      [&schema, &hierarchies](
          size_t attr,
          const std::vector<std::vector<std::string>>& groups) -> Status {
    Result<Hierarchy> h =
        Hierarchy::FromLabelGroups(schema.attribute(attr), groups);
    KANON_RETURN_NOT_OK(h.status());
    hierarchies.push_back(std::move(h).value());
    return Status::OK();
  };

  KANON_RETURN_NOT_OK(add_label_groups(
      1, {{"Self-emp-not-inc", "Self-emp-inc"},
          {"Federal-gov", "Local-gov", "State-gov"},
          {"Without-pay", "Never-worked"}}));
  KANON_RETURN_NOT_OK(add_label_groups(
      2, {// The paper's three semantic groups ...
          {"Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th",
           "11th", "12th", "HS-grad"},
          {"Some-college", "Assoc-voc", "Assoc-acdm", "Bachelors"},
          {"Masters", "Prof-school", "Doctorate"},
          // ... refined by nested sub-groups.
          {"Preschool", "1st-4th", "5th-6th", "7th-8th"},
          {"9th", "10th", "11th", "12th"},
          {"Assoc-voc", "Assoc-acdm"}}));
  KANON_RETURN_NOT_OK(add_label_groups(
      3, {{"Married-civ-spouse", "Married-spouse-absent", "Married-AF-spouse"},
          {"Divorced", "Separated", "Widowed"}}));
  KANON_RETURN_NOT_OK(add_label_groups(
      4, {{"Exec-managerial", "Prof-specialty", "Adm-clerical", "Sales",
           "Tech-support"},
          {"Craft-repair", "Machine-op-inspct", "Transport-moving",
           "Handlers-cleaners", "Farming-fishing"},
          {"Other-service", "Protective-serv", "Priv-house-serv",
           "Armed-Forces"}}));
  KANON_RETURN_NOT_OK(add_label_groups(
      5, {{"Husband", "Wife", "Own-child", "Other-relative"},
          {"Not-in-family", "Unmarried"}}));
  KANON_RETURN_NOT_OK(add_label_groups(
      6, {{"Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"}}));
  KANON_RETURN_NOT_OK(add_label_groups(7, {}));  // sex: suppression only.
  KANON_RETURN_NOT_OK(add_label_groups(
      8, {ToVector(kCountryNA), ToVector(kCountryLatin),
          ToVector(kCountryEurope), ToVector(kCountryAsia)}));

  KANON_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme,
      GeneralizationScheme::Create(schema, std::move(hierarchies)));
  return AdultSchemaParts{std::move(schema), std::move(scheme)};
}

// Country weights: United-States dominates, Mexico next, thin tail.
std::vector<double> CountryWeights(const AttributeDomain& domain) {
  std::vector<double> weights(domain.size(), 0.0018);
  auto set = [&](const char* label, double w) {
    Result<ValueCode> code = domain.CodeOf(label);
    KANON_CHECK(code.ok(), code.status().ToString());
    weights[code.value()] = w;
  };
  set("United-States", 0.897);
  set("Mexico", 0.0200);
  set("Philippines", 0.0061);
  set("Germany", 0.0042);
  set("Canada", 0.0037);
  set("Puerto-Rico", 0.0035);
  set("El-Salvador", 0.0033);
  set("India", 0.0031);
  set("Cuba", 0.0029);
  set("England", 0.0028);
  set("China", 0.0023);
  return weights;
}

}  // namespace

Result<Workload> MakeAdultWorkload(size_t n, uint64_t seed) {
  if (n == 0) {
    return Status::InvalidArgument("n must be positive");
  }
  KANON_ASSIGN_OR_RETURN(AdultSchemaParts parts, BuildAdultSchema());
  const Schema& schema = parts.schema;

  Rng rng(seed);
  const AliasSampler age_sampler(AgeWeights());
  const AliasSampler workclass_sampler(ToWeights(kWorkclassW));
  const AliasSampler education_sampler(ToWeights(kEducationW));
  const AliasSampler marital_sampler(ToWeights(kMaritalW));
  const AliasSampler occupation_sampler(ToWeights(kOccupationW));
  const AliasSampler race_sampler(ToWeights(kRaceW));
  const AliasSampler sex_sampler(ToWeights(kSexW));
  const AliasSampler country_sampler(CountryWeights(schema.attribute(8)));

  auto code_of = [&schema](size_t attr, const char* label) -> ValueCode {
    Result<ValueCode> code = schema.attribute(attr).CodeOf(label);
    KANON_CHECK(code.ok(), code.status().ToString());
    return code.value();
  };
  const ValueCode married = code_of(3, "Married-civ-spouse");
  const ValueCode never_married = code_of(3, "Never-married");
  const ValueCode male = code_of(7, "Male");
  const ValueCode husband = code_of(5, "Husband");
  const ValueCode wife = code_of(5, "Wife");
  const ValueCode own_child = code_of(5, "Own-child");
  const ValueCode not_in_family = code_of(5, "Not-in-family");
  const ValueCode unmarried_rel = code_of(5, "Unmarried");
  const ValueCode other_relative = code_of(5, "Other-relative");

  Dataset dataset(schema);
  std::vector<ValueCode> income(n);
  Record record(schema.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    const ValueCode age =
        static_cast<ValueCode>(age_sampler.Sample(&rng));
    const ValueCode sex = static_cast<ValueCode>(sex_sampler.Sample(&rng));
    const ValueCode marital =
        static_cast<ValueCode>(marital_sampler.Sample(&rng));
    const ValueCode education =
        static_cast<ValueCode>(education_sampler.Sample(&rng));

    // relationship follows marital status and sex, as in the census data.
    ValueCode relationship;
    if (marital == married) {
      relationship = sex == male ? husband : wife;
      if (rng.NextDouble() < 0.04) relationship = other_relative;
    } else if (marital == never_married) {
      const double u = rng.NextDouble();
      relationship = u < 0.45 ? own_child
                              : (u < 0.85 ? not_in_family : unmarried_rel);
    } else {
      relationship =
          rng.NextDouble() < 0.55 ? not_in_family : unmarried_rel;
    }

    // occupation loosely follows education: advanced degrees skew
    // white-collar (codes 0..4 of kOccupation after the grouping above are
    // mixed, so resample into the white-collar group with probability 0.7).
    ValueCode occupation =
        static_cast<ValueCode>(occupation_sampler.Sample(&rng));
    const bool advanced = education >= code_of(2, "Bachelors");
    if (advanced && rng.NextDouble() < 0.7) {
      const ValueCode white_collar[] = {
          code_of(4, "Prof-specialty"), code_of(4, "Exec-managerial"),
          code_of(4, "Adm-clerical"), code_of(4, "Sales"),
          code_of(4, "Tech-support")};
      occupation = white_collar[rng.NextBounded(5)];
    }

    record[0] = age;
    record[1] = static_cast<ValueCode>(workclass_sampler.Sample(&rng));
    record[2] = education;
    record[3] = marital;
    record[4] = occupation;
    record[5] = relationship;
    record[6] = static_cast<ValueCode>(race_sampler.Sample(&rng));
    record[7] = sex;
    record[8] = static_cast<ValueCode>(country_sampler.Sample(&rng));
    KANON_RETURN_NOT_OK(dataset.AppendRow(record));

    // Income: base rate ~24% >50K, boosted by education/marriage/age.
    double p_high = 0.08;
    if (advanced) p_high += 0.30;
    if (marital == married) p_high += 0.22;
    if (age + kMinAge >= 35 && age + kMinAge <= 60) p_high += 0.08;
    income[i] = rng.NextDouble() < p_high ? 1 : 0;
  }

  KANON_ASSIGN_OR_RETURN(
      AttributeDomain income_domain,
      AttributeDomain::Create("income", {"<=50K", ">50K"}));
  KANON_RETURN_NOT_OK(
      dataset.SetClassColumn(std::move(income_domain), std::move(income)));

  return Workload{"ADT", std::move(dataset),
                  std::make_shared<const GeneralizationScheme>(
                      std::move(parts.scheme))};
}

Result<Workload> LoadAdultWorkload(const std::string& path, size_t max_rows) {
  KANON_ASSIGN_OR_RETURN(AdultSchemaParts parts, BuildAdultSchema());
  const Schema& schema = parts.schema;

  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }

  // adult.data columns: age, workclass, fnlwgt, education, education-num,
  // marital-status, occupation, relationship, race, sex, capital-gain,
  // capital-loss, hours-per-week, native-country, income.
  const size_t kSource[] = {0, 1, 3, 5, 6, 7, 8, 9, 13};
  Dataset dataset(schema);
  std::vector<ValueCode> income;
  std::string line;
  while (std::getline(file, line)) {
    if (max_rows > 0 && dataset.num_rows() >= max_rows) break;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 15) {
      return Status::InvalidArgument("adult.data row with " +
                                     std::to_string(fields.size()) +
                                     " fields; expected 15");
    }
    for (std::string& f : fields) f = std::string(Trim(f));
    if (std::find(fields.begin(), fields.end(), "?") != fields.end()) {
      continue;  // Skip rows with missing values, as the paper's setup does.
    }
    std::vector<std::string> labels;
    labels.reserve(9);
    for (size_t src : kSource) {
      labels.push_back(fields[src]);
    }
    KANON_RETURN_NOT_OK(dataset.AppendRowLabels(labels));
    income.push_back(fields[14].find(">50K") != std::string::npos ? 1 : 0);
  }
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("'" + path + "' contains no usable rows");
  }
  KANON_ASSIGN_OR_RETURN(
      AttributeDomain income_domain,
      AttributeDomain::Create("income", {"<=50K", ">50K"}));
  KANON_RETURN_NOT_OK(
      dataset.SetClassColumn(std::move(income_domain), std::move(income)));

  return Workload{"ADT-real", std::move(dataset),
                  std::make_shared<const GeneralizationScheme>(
                      std::move(parts.scheme))};
}

}  // namespace kanon
