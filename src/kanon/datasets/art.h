#ifndef KANON_DATASETS_ART_H_
#define KANON_DATASETS_ART_H_

#include <cstdint>

#include "kanon/common/result.h"
#include "kanon/datasets/workload.h"

namespace kanon {

/// The paper's artificial dataset (Section VI): n records over six
/// attributes A1..A6 whose value distributions and permissible generalized
/// subsets are exactly the ones printed in the paper:
///
///   A1: {0.7, 0.3}                                 — no non-trivial subsets
///   A2: {0.3, 0.3, 0.2, 0.2}                       — {a1,a2}, {a3,a4}
///   A3: {0.25, 0.25, 0.4, 0.1}                     — {a1,a2}, {a3,a4}
///   A4: {6×0.07, 10×0.04, 9×0.02}                  — {a1..a6}, {a7..a12},
///        {a13..a18}, {a19..a25}, {a1..a12}, {a13..a25}
///   A5: {10×0.1}                                   — {a1,a2}, {a3,a4},
///        {a6,a7}, {a8,a9}, {a1..a5}, {a6..a10}
///   A6: {0.05, 0.05, 0.5, 0.3, 0.1}                — {a1,a2}, {a4,a5},
///        {a3,a4,a5}
///
/// Attribute values are sampled independently. Deterministic in `seed`.
Result<Workload> MakeArtWorkload(size_t n, uint64_t seed);

}  // namespace kanon

#endif  // KANON_DATASETS_ART_H_
