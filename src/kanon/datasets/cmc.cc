#include "kanon/datasets/cmc.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "kanon/common/rng.h"
#include "kanon/common/text.h"

namespace kanon {

namespace {

constexpr int kMinWifeAge = 16;
constexpr int kMaxWifeAge = 49;
constexpr int kMaxChildren = 16;

std::vector<std::string> NumericLabels(int lo, int hi) {
  std::vector<std::string> labels;
  for (int v = lo; v <= hi; ++v) {
    labels.push_back(std::to_string(v));
  }
  return labels;
}

struct CmcSchemaParts {
  Schema schema;
  GeneralizationScheme scheme;
};

Result<CmcSchemaParts> BuildCmcSchema() {
  std::vector<AttributeDomain> attributes;
  attributes.push_back(
      AttributeDomain::IntegerRange("wife-age", kMinWifeAge, kMaxWifeAge));
  auto add = [&attributes](std::string name, int lo, int hi) -> Status {
    Result<AttributeDomain> domain =
        AttributeDomain::Create(std::move(name), NumericLabels(lo, hi));
    KANON_RETURN_NOT_OK(domain.status());
    attributes.push_back(std::move(domain).value());
    return Status::OK();
  };
  KANON_RETURN_NOT_OK(add("wife-education", 1, 4));
  KANON_RETURN_NOT_OK(add("husband-education", 1, 4));
  KANON_RETURN_NOT_OK(add("num-children", 0, kMaxChildren));
  KANON_RETURN_NOT_OK(add("wife-religion", 0, 1));
  KANON_RETURN_NOT_OK(add("wife-working", 0, 1));
  KANON_RETURN_NOT_OK(add("husband-occupation", 1, 4));
  KANON_RETURN_NOT_OK(add("living-standard", 1, 4));
  KANON_RETURN_NOT_OK(add("media-exposure", 0, 1));
  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attributes)));

  std::vector<Hierarchy> hierarchies;
  // wife-age: nested 5/10-year bands (offset from 16).
  KANON_ASSIGN_OR_RETURN(
      Hierarchy age_h,
      Hierarchy::Intervals(schema.attribute(0).size(), {5, 10}));
  hierarchies.push_back(std::move(age_h));

  const std::vector<std::vector<ValueCode>> low_high = {{0, 1}, {2, 3}};
  auto add_groups = [&schema, &hierarchies](
                        size_t attr,
                        std::vector<std::vector<ValueCode>> groups) -> Status {
    Result<Hierarchy> h =
        Hierarchy::FromGroups(schema.attribute(attr).size(), groups);
    KANON_RETURN_NOT_OK(h.status());
    hierarchies.push_back(std::move(h).value());
    return Status::OK();
  };
  KANON_RETURN_NOT_OK(add_groups(1, low_high));  // wife-education
  KANON_RETURN_NOT_OK(add_groups(2, low_high));  // husband-education
  // num-children: {1,2}, {3,4}, {1..4}, {5..16}.
  KANON_RETURN_NOT_OK(add_groups(
      3, {{1, 2},
              {3, 4},
              {1, 2, 3, 4},
              {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}}));
  KANON_RETURN_NOT_OK(add_groups(4, {}));        // wife-religion
  KANON_RETURN_NOT_OK(add_groups(5, {}));        // wife-working
  KANON_RETURN_NOT_OK(add_groups(6, low_high));  // husband-occupation
  KANON_RETURN_NOT_OK(add_groups(7, low_high));  // living-standard
  KANON_RETURN_NOT_OK(add_groups(8, {}));        // media-exposure

  KANON_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme,
      GeneralizationScheme::Create(schema, std::move(hierarchies)));
  return CmcSchemaParts{std::move(schema), std::move(scheme)};
}

Result<AttributeDomain> ClassDomain() {
  return AttributeDomain::Create("contraceptive-method",
                                 {"no-use", "long-term", "short-term"});
}

std::vector<double> WifeAgeWeights() {
  std::vector<double> weights;
  for (int age = kMinWifeAge; age <= kMaxWifeAge; ++age) {
    const double z = (age - 32.5) / 8.2;
    weights.push_back(std::exp(-0.5 * z * z));
  }
  return weights;
}

std::vector<double> ChildrenWeights() {
  // Decaying histogram with mean ≈ 3.3, as in the survey.
  std::vector<double> weights = {0.065, 0.180, 0.160, 0.150, 0.120, 0.090,
                                 0.070, 0.050, 0.035, 0.025, 0.018, 0.012,
                                 0.008, 0.005, 0.004, 0.002, 0.001};
  return weights;
}

}  // namespace

Result<Workload> MakeCmcWorkload(size_t n, uint64_t seed) {
  if (n == 0) {
    return Status::InvalidArgument("n must be positive");
  }
  KANON_ASSIGN_OR_RETURN(CmcSchemaParts parts, BuildCmcSchema());
  const Schema& schema = parts.schema;

  Rng rng(seed);
  const AliasSampler age_sampler(WifeAgeWeights());
  const AliasSampler wife_edu_sampler({0.10, 0.22, 0.28, 0.40});
  const AliasSampler husband_edu_sampler({0.03, 0.12, 0.24, 0.61});
  const AliasSampler children_sampler(ChildrenWeights());
  const AliasSampler religion_sampler({0.15, 0.85});
  const AliasSampler working_sampler({0.25, 0.75});
  const AliasSampler occupation_sampler({0.30, 0.29, 0.38, 0.03});
  const AliasSampler living_sampler({0.09, 0.15, 0.29, 0.47});
  const AliasSampler media_sampler({0.926, 0.074});

  Dataset dataset(schema);
  std::vector<ValueCode> method(n);
  Record record(schema.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    const ValueCode age = static_cast<ValueCode>(age_sampler.Sample(&rng));
    const ValueCode wife_edu =
        static_cast<ValueCode>(wife_edu_sampler.Sample(&rng));
    ValueCode children =
        static_cast<ValueCode>(children_sampler.Sample(&rng));
    // Children count grows with age: young wives rarely have many.
    const int actual_age = kMinWifeAge + age;
    if (actual_age < 22 && children > 2) {
      children = static_cast<ValueCode>(rng.NextBounded(3));
    }

    record[0] = age;
    record[1] = wife_edu;
    record[2] = static_cast<ValueCode>(husband_edu_sampler.Sample(&rng));
    record[3] = children;
    record[4] = static_cast<ValueCode>(religion_sampler.Sample(&rng));
    record[5] = static_cast<ValueCode>(working_sampler.Sample(&rng));
    record[6] = static_cast<ValueCode>(occupation_sampler.Sample(&rng));
    record[7] = static_cast<ValueCode>(living_sampler.Sample(&rng));
    record[8] = static_cast<ValueCode>(media_sampler.Sample(&rng));
    KANON_RETURN_NOT_OK(dataset.AppendRow(record));

    // Class (no-use / long-term / short-term), tilted like the survey:
    // childless and older wives skew to no-use, educated wives to
    // long-term methods.
    double w_no = 0.43;
    double w_long = 0.22;
    double w_short = 0.35;
    if (children == 0) {
      w_no += 0.35;
    }
    if (wife_edu == 3) {
      w_long += 0.15;
    }
    if (actual_age >= 42) {
      w_no += 0.20;
    } else if (actual_age <= 25) {
      w_short += 0.12;
    }
    method[i] =
        static_cast<ValueCode>(rng.NextWeighted({w_no, w_long, w_short}));
  }

  KANON_ASSIGN_OR_RETURN(AttributeDomain class_domain, ClassDomain());
  KANON_RETURN_NOT_OK(
      dataset.SetClassColumn(std::move(class_domain), std::move(method)));

  return Workload{"CMC", std::move(dataset),
                  std::make_shared<const GeneralizationScheme>(
                      std::move(parts.scheme))};
}

Result<Workload> LoadCmcWorkload(const std::string& path) {
  KANON_ASSIGN_OR_RETURN(CmcSchemaParts parts, BuildCmcSchema());

  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  Dataset dataset(parts.schema);
  std::vector<ValueCode> method;
  std::string line;
  while (std::getline(file, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 10) {
      return Status::InvalidArgument("cmc.data row with " +
                                     std::to_string(fields.size()) +
                                     " fields; expected 10");
    }
    for (std::string& f : fields) f = std::string(Trim(f));
    std::vector<std::string> labels(fields.begin(), fields.begin() + 9);
    KANON_RETURN_NOT_OK(dataset.AppendRowLabels(labels));
    // Class codes in the file are 1..3.
    char* end = nullptr;
    const long cls = std::strtol(fields[9].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || cls < 1 || cls > 3) {
      return Status::OutOfRange("class value must be an integer in 1..3; got '" +
                                fields[9] + "'");
    }
    method.push_back(static_cast<ValueCode>(cls - 1));
  }
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("'" + path + "' contains no usable rows");
  }
  KANON_ASSIGN_OR_RETURN(AttributeDomain class_domain, ClassDomain());
  KANON_RETURN_NOT_OK(
      dataset.SetClassColumn(std::move(class_domain), std::move(method)));

  return Workload{"CMC-real", std::move(dataset),
                  std::make_shared<const GeneralizationScheme>(
                      std::move(parts.scheme))};
}

}  // namespace kanon
