#ifndef KANON_DATASETS_CMC_H_
#define KANON_DATASETS_CMC_H_

#include <cstdint>
#include <string>

#include "kanon/common/result.h"
#include "kanon/datasets/workload.h"

namespace kanon {

/// A synthetic stand-in for the UCI Contraceptive Method Choice dataset
/// (1987 National Indonesia Contraceptive Prevalence Survey): nine public
/// attributes — wife-age, wife-education, husband-education, num-children,
/// wife-religion, wife-working, husband-occupation, living-standard,
/// media-exposure — plus the contraceptive-method class column (no-use /
/// long-term / short-term). Marginals approximate the survey; the class is
/// correlated with age, education and children as in the real data.
/// The paper uses n = 1500 (the real file has 1473 rows). Deterministic in
/// `seed`.
Result<Workload> MakeCmcWorkload(size_t n, uint64_t seed);

/// Loads the genuine UCI `cmc.data` file (no header, 10 comma-separated
/// integer columns, last = class) into the same schema and hierarchies.
Result<Workload> LoadCmcWorkload(const std::string& path);

}  // namespace kanon

#endif  // KANON_DATASETS_CMC_H_
