#include "kanon/datasets/art.h"

#include "kanon/common/rng.h"

namespace kanon {

namespace {

// Value labels "a1".."am".
std::vector<std::string> GenericLabels(size_t m) {
  std::vector<std::string> labels;
  labels.reserve(m);
  for (size_t i = 1; i <= m; ++i) {
    std::string label = "a";
    label += std::to_string(i);
    labels.push_back(std::move(label));
  }
  return labels;
}

// A contiguous 0-based group [lo, hi] (paper indices are 1-based).
std::vector<ValueCode> Range(int lo_1based, int hi_1based) {
  std::vector<ValueCode> out;
  for (int v = lo_1based; v <= hi_1based; ++v) {
    out.push_back(static_cast<ValueCode>(v - 1));
  }
  return out;
}

}  // namespace

Result<Workload> MakeArtWorkload(size_t n, uint64_t seed) {
  if (n == 0) {
    return Status::InvalidArgument("n must be positive");
  }

  // Value distributions per the paper.
  const std::vector<std::vector<double>> weights = {
      {0.7, 0.3},
      {0.3, 0.3, 0.2, 0.2},
      {0.25, 0.25, 0.4, 0.1},
      {0.07, 0.07, 0.07, 0.07, 0.07, 0.07,              // 6 × 0.07
       0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04,  // 10×.04
       0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02},       // 9×.02
      {0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
      {0.05, 0.05, 0.5, 0.3, 0.1},
  };

  std::vector<AttributeDomain> attributes;
  for (size_t j = 0; j < weights.size(); ++j) {
    KANON_ASSIGN_OR_RETURN(
        AttributeDomain domain,
        AttributeDomain::Create(std::string("A") += std::to_string(j + 1),
                                GenericLabels(weights[j].size())));
    attributes.push_back(std::move(domain));
  }
  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attributes)));

  // Non-trivial permissible subsets per the paper (1-based indices).
  std::vector<std::vector<std::vector<ValueCode>>> groups(6);
  groups[0] = {};
  groups[1] = {Range(1, 2), Range(3, 4)};
  groups[2] = {Range(1, 2), Range(3, 4)};
  groups[3] = {Range(1, 6),   Range(7, 12), Range(13, 18),
               Range(19, 25), Range(1, 12), Range(13, 25)};
  groups[4] = {Range(1, 2), Range(3, 4), Range(6, 7),
               Range(8, 9), Range(1, 5), Range(6, 10)};
  groups[5] = {Range(1, 2), Range(4, 5), Range(3, 5)};

  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < weights.size(); ++j) {
    KANON_ASSIGN_OR_RETURN(
        Hierarchy h, Hierarchy::FromGroups(weights[j].size(), groups[j]));
    hierarchies.push_back(std::move(h));
  }
  KANON_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme_value,
      GeneralizationScheme::Create(schema, std::move(hierarchies)));

  Dataset dataset(schema);
  Rng rng(seed);
  std::vector<AliasSampler> samplers;
  samplers.reserve(weights.size());
  for (const auto& w : weights) {
    samplers.emplace_back(w);
  }
  Record record(weights.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < weights.size(); ++j) {
      record[j] = static_cast<ValueCode>(samplers[j].Sample(&rng));
    }
    KANON_RETURN_NOT_OK(dataset.AppendRow(record));
  }

  return Workload{
      "ART", std::move(dataset),
      std::make_shared<const GeneralizationScheme>(std::move(scheme_value))};
}

}  // namespace kanon
