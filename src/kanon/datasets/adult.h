#ifndef KANON_DATASETS_ADULT_H_
#define KANON_DATASETS_ADULT_H_

#include <cstdint>
#include <string>

#include "kanon/common/result.h"
#include "kanon/datasets/workload.h"

namespace kanon {

/// A synthetic stand-in for the UCI Adult (census income) dataset with the
/// paper's nine public attributes: age, work-class, education,
/// marital-status, occupation, relationship, race, sex, native-country.
///
/// Domains are the real Adult categorical domains; marginals approximate
/// the census data (e.g. Private ≈ 0.73 of work-class, United-States ≈ 0.90
/// of native-country) and the strongest real correlations are preserved
/// (sex/marital-status → relationship, education → occupation). The
/// income class column (<=50K / >50K) is attached for the classification
/// metric. Deterministic in `seed`.
///
/// The generalization hierarchies group semantically close values (the
/// paper's example: education → {high-school, college, advanced-degrees});
/// age uses nested 5/10/20-year bands.
Result<Workload> MakeAdultWorkload(size_t n, uint64_t seed);

/// Loads the genuine UCI `adult.data` file (no header, 15 comma-separated
/// columns, "?" for missing) into the same schema and hierarchies, so the
/// experiments can be re-run on the real data when the file is available.
/// Rows with missing values are skipped; at most `max_rows` rows are kept
/// (0 = all). Rows whose age falls outside [17, 90] are rejected.
Result<Workload> LoadAdultWorkload(const std::string& path, size_t max_rows);

}  // namespace kanon

#endif  // KANON_DATASETS_ADULT_H_
