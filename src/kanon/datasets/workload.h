#ifndef KANON_DATASETS_WORKLOAD_H_
#define KANON_DATASETS_WORKLOAD_H_

#include <memory>
#include <string>

#include "kanon/data/dataset.h"
#include "kanon/generalization/scheme.h"

namespace kanon {

/// A dataset bundled with its generalization scheme — everything an
/// anonymization experiment needs.
struct Workload {
  std::string name;
  Dataset dataset;
  std::shared_ptr<const GeneralizationScheme> scheme;
};

}  // namespace kanon

#endif  // KANON_DATASETS_WORKLOAD_H_
