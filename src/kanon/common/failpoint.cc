#include "kanon/common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "kanon/common/text.h"

namespace kanon {
namespace failpoint {

namespace {

struct FailpointState {
  int skip_remaining = 0;  // Hits to let through before failing.
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, FailpointState> armed;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Fast gate consulted by the macro before taking the mutex.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

// Parses KANON_FAILPOINTS ("name[=skip][,name...]") exactly once.
void EnsureEnvLoaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("KANON_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    for (const std::string& entry : Split(env, ',')) {
      const std::string trimmed(Trim(entry));
      if (trimmed.empty()) continue;
      const size_t eq = trimmed.find('=');
      int after = 0;
      std::string name = trimmed;
      if (eq != std::string::npos) {
        name = trimmed.substr(0, eq);
        after = std::atoi(trimmed.c_str() + eq + 1);
        if (after < 0) after = 0;
      }
      Arm(name, after);
    }
  });
}

}  // namespace

bool AnyArmed() {
  EnsureEnvLoaded();
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

Status Check(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return Status::OK();
  if (it->second.skip_remaining > 0) {
    --it->second.skip_remaining;
    return Status::OK();
  }
  return Status::Internal(std::string("injected failure at failpoint '") +
                          name + "'");
}

void Arm(const std::string& name, int after) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.armed.emplace(name, FailpointState{after}).second) {
    ArmedCount().fetch_add(1, std::memory_order_relaxed);
  } else {
    registry.armed[name].skip_remaining = after;
  }
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.armed.erase(name) > 0) {
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  ArmedCount().fetch_sub(static_cast<int>(registry.armed.size()),
                         std::memory_order_relaxed);
  registry.armed.clear();
}

std::vector<std::string> ArmedNames() {
  EnsureEnvLoaded();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  for (const auto& [name, state] : registry.armed) {
    names.push_back(name);
  }
  return names;
}

}  // namespace failpoint
}  // namespace kanon
