#ifndef KANON_COMMON_TEXT_H_
#define KANON_COMMON_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

namespace kanon {

/// Splits `input` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace kanon

#endif  // KANON_COMMON_TEXT_H_
