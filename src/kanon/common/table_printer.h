#ifndef KANON_COMMON_TABLE_PRINTER_H_
#define KANON_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace kanon {

/// Renders aligned plain-text tables for the bench harnesses and examples.
///
///   TablePrinter t;
///   t.SetHeader({"k", "loss"});
///   t.AddRow({"5", "0.65"});
///   std::string text = t.ToString();
class TablePrinter {
 public:
  void SetHeader(std::vector<std::string> header);

  /// Rows may have fewer cells than the header; missing cells print empty.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator line at this position.
  void AddSeparator();

  /// Renders the table. Every column is padded to its widest cell.
  std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace kanon

#endif  // KANON_COMMON_TABLE_PRINTER_H_
