#include "kanon/common/text.h"

#include <cctype>
#include <cstdio>

namespace kanon {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace kanon
