#ifndef KANON_COMMON_PARALLEL_H_
#define KANON_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "kanon/common/run_context.h"

namespace kanon {

/// Thread count used when a caller passes num_threads <= 0: the hardware
/// concurrency (at least 1).
int DefaultNumThreads();

/// Resolves a requested thread count: values <= 0 mean DefaultNumThreads().
int ResolveNumThreads(int requested);

/// Chunk geometry of a sweep over n items. A pure function of n — never of
/// the thread count or of the machine — so per-chunk partial results merged
/// in chunk-index order are byte-identical for every --threads value (the
/// determinism contract; see docs/parallelism.md).
size_t ParallelChunkCount(size_t n);

/// Half-open item range [begin, end) of chunk `chunk` (< ParallelChunkCount).
/// Chunk ranges partition [0, n) in order: chunk c ends where c+1 begins.
std::pair<size_t, size_t> ParallelChunkRange(size_t n, size_t chunk);

/// Outcome of one parallel sweep.
struct SweepStatus {
  /// True when every chunk ran. False when `ctx` stopped the sweep early
  /// (deadline or cancellation observed inside a worker): the remaining
  /// chunks were skipped, the stop is already registered sticky on the
  /// context, and the caller must finalize its degraded path. Chunks that
  /// did run are never rolled back.
  bool completed = true;
};

/// Runs body(chunk, begin, end) once per chunk of [0, n), spread over up to
/// `num_threads` threads (<= 0 resolves to DefaultNumThreads()). Bodies must
/// write only disjoint state: their own items, or their own chunk slot of a
/// caller-provided partials array.
///
/// RunContext interaction (ctx may be null):
///   - A sweep on an already-stopped context runs nothing (completed=false).
///   - Workers poll RunContext::StopRequested() — deadline + cancellation,
///     both thread-safe — between chunks; a stop skips the remaining chunks.
///   - A completed sweep charges exactly ONE CheckPoint(stage) from the
///     calling thread, so the step budget advances deterministically (one
///     step per sweep, independent of thread count). The charge may trip the
///     budget; that stop applies from the *next* sweep/checkpoint on, never
///     retroactively to the finished one.
///
/// `serial_below`: run inline on the calling thread when n is smaller
/// (identical results either way; purely an overhead knob for sweeps whose
/// per-item work is tiny). Nested sweeps always run inline.
SweepStatus ParallelChunks(
    size_t n, int num_threads, RunContext* ctx, const char* stage,
    const std::function<void(size_t, size_t, size_t)>& body,
    size_t serial_below = 0);

/// Item-wise wrapper: body(i) for every i in [0, n). When `done` is
/// non-null it is assigned n zeroes up front and done[i] = 1 after body(i)
/// ran — the caller's map of which items survived an interrupted sweep.
SweepStatus ParallelFor(size_t n, int num_threads, RunContext* ctx,
                        const char* stage,
                        const std::function<void(size_t)>& body,
                        std::vector<uint8_t>* done = nullptr,
                        size_t serial_below = 0);

/// Result of a deterministic parallel argmin.
struct ArgminResult {
  size_t index = 0;   // Smallest index attaining the minimum value.
  double value = 0.0;
  bool valid = false;  // At least one item was evaluated.
  /// False when the sweep was stopped early; the result then covers only
  /// the chunks that ran and the caller must treat it as a checkpoint stop.
  bool completed = true;
};

/// Deterministic parallel argmin of eval(i) over [0, n): chunk-local minima
/// are merged in chunk-index order with strict `<`, so the smallest index
/// attaining the global minimum wins at every thread count — the same
/// winner a serial ascending scan with strict `<` picks. Items may opt out
/// by returning +infinity (an all-infinite sweep still reports valid with
/// value +infinity; check the value).
ArgminResult ParallelArgmin(size_t n, int num_threads, RunContext* ctx,
                            const char* stage,
                            const std::function<double(size_t)>& eval,
                            size_t serial_below = 0);

}  // namespace kanon

#endif  // KANON_COMMON_PARALLEL_H_
