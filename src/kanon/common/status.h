#ifndef KANON_COMMON_STATUS_H_
#define KANON_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace kanon {

/// Error categories used throughout the library. The library never throws;
/// fallible operations return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
};

/// Returns a short human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, in the style of Arrow / RocksDB.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define KANON_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::kanon::Status kanon_status_macro_s = (expr); \
    if (!kanon_status_macro_s.ok()) {              \
      return kanon_status_macro_s;                 \
    }                                              \
  } while (false)

}  // namespace kanon

#endif  // KANON_COMMON_STATUS_H_
