#ifndef KANON_COMMON_RUN_CONTEXT_H_
#define KANON_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "kanon/common/timer.h"

namespace kanon {

/// Why a run was asked to wind down.
enum class StopReason {
  kNone = 0,
  kDeadline,    // The wall-clock deadline expired.
  kCancelled,   // The cancellation token was triggered (e.g. SIGINT).
  kStepBudget,  // The iteration/step budget was exhausted.
};

/// Short human-readable name ("none", "deadline", ...).
const char* StopReasonName(StopReason reason);

/// A shared cancellation flag. Cancel() only stores an atomic bool, so it is
/// async-signal-safe and may be called from a SIGINT handler or another
/// thread; pipelines observe it through RunContext::CheckPoint().
///
/// Tokens form a one-way tree: a token built with a parent reports cancelled
/// when either it or any ancestor is cancelled, while cancelling it leaves
/// the parent (and therefore its siblings) untouched. This is what lets a
/// sharded driver cancel one shard's run without killing the others, yet
/// still have a SIGINT on the parent stop every child.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(std::shared_ptr<const CancellationToken> parent)
      : parent_(std::move(parent)) {}

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::shared_ptr<const CancellationToken> parent_;
};

/// Snapshot handed to the progress observer.
struct RunProgress {
  const char* stage = "";     // Pipeline stage, e.g. "agglomerative/merge".
  size_t steps = 0;           // Cooperative checkpoints passed so far.
  double elapsed_seconds = 0.0;
};

/// Outcome bookkeeping for one anonymization run.
struct RunStats {
  /// True when a pipeline finalized early and used its fallback path. The
  /// output is still valid for the promised anonymity notion, just lossier.
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
  /// Cooperative checkpoints passed (one per merge/expansion iteration).
  size_t iterations_completed = 0;
  /// Records coarsened beyond plan by a degradation fallback (pooled into a
  /// catch-all cluster or fully suppressed).
  size_t records_suppressed = 0;
  /// First stage that had to degrade, e.g. "agglomerative/merge".
  std::string degraded_stage;
};

/// Execution controls for one anonymization run: an optional wall-clock
/// deadline, an optional cooperative cancellation token, an optional step
/// budget, and an optional progress observer. A default-constructed context
/// is unbounded and adds one predictable branch per iteration.
///
/// Pipelines call CheckPoint() once per merge/expansion iteration; once it
/// returns true (sticky), they must stop refining and *finalize*: emit a
/// table that still satisfies the promised anonymity notion, typically by
/// pooling undersized clusters or falling back to suppression, and record
/// the fact via NoteDegraded(). RunContext is not thread-safe except for the
/// CancellationToken; one context belongs to one run.
class RunContext {
 public:
  RunContext() = default;

  /// Arms a deadline `seconds` from now. Non-positive values expire
  /// immediately (useful to exercise the degraded paths).
  void ArmDeadline(double seconds) {
    deadline_seconds_ = seconds;
    deadline_armed_ = true;
    timer_.Reset();
  }

  /// Stops the run after `steps` cooperative checkpoints. 0 = unlimited.
  void set_step_budget(size_t steps) { step_budget_ = steps; }

  void set_cancel_token(std::shared_ptr<CancellationToken> token) {
    cancel_token_ = std::move(token);
  }
  const std::shared_ptr<CancellationToken>& cancel_token() const {
    return cancel_token_;
  }

  /// `observer` fires every `interval_steps` checkpoints (and on the first).
  void set_progress_observer(std::function<void(const RunProgress&)> observer,
                             size_t interval_steps = 1024);

  /// One cooperative checkpoint. Counts an iteration, fires the progress
  /// observer, and returns true once the run must wind down. The result is
  /// sticky: after the first true, every later call returns true, so a
  /// multi-stage pipeline degrades every remaining stage promptly.
  bool CheckPoint(const char* stage);

  bool stopped() const { return stats_.stop_reason != StopReason::kNone; }
  StopReason stop_reason() const { return stats_.stop_reason; }

  /// Thread-safe peek used by parallel sweep workers: reports the stop the
  /// run would take at its next checkpoint — the sticky stop, cancellation,
  /// and the deadline — without mutating any state. The step budget is not
  /// consulted here; it is charged by the sweep's coordinating thread (one
  /// CheckPoint per sweep). Safe to call concurrently as long as nothing
  /// mutates the context, which holds during a sweep: the owning thread is
  /// blocked inside it.
  StopReason StopRequested() const;

  /// Registers a stop observed outside CheckPoint (e.g. a parallel sweep
  /// saw the deadline expire mid-flight). Sticky, like a CheckPoint stop;
  /// a no-op when the run is already stopped. Owning thread only.
  void NoteStop(StopReason reason);

  /// Wall-clock seconds left before the deadline; +infinity when no deadline
  /// is armed, clamped at 0 once it expired.
  double RemainingSeconds() const;

  /// Checkpoints left in the step budget; SIZE_MAX when unlimited, 0 once
  /// exhausted (or once the run stopped for any reason).
  size_t RemainingSteps() const;

  /// Child context for one isolated unit of work (e.g. one shard of a
  /// sharded run): it receives `fraction` (clamped to (0, 1]) of this
  /// context's *remaining* wall-clock and step budget — a child can never
  /// outlive its parent's budget — and a fresh cancellation token linked to
  /// the parent's, so cancelling the child does not cancel siblings while
  /// cancelling the parent stops every child. An exhausted parent produces
  /// a child that stops at its first checkpoint. The progress observer is
  /// not inherited. Stats start fresh; use ChargeSteps()/NoteDegraded() on
  /// the parent to account for the child's work.
  RunContext Fork(double fraction);

  /// Charges `steps` checkpoints spent elsewhere (e.g. by a finished child
  /// context) against this context's step budget, recording kStepBudget if
  /// that exhausts it. Unlike CheckPoint() this never consults the clock or
  /// fires the observer.
  void ChargeSteps(size_t steps);

  /// Degradation bookkeeping, written by pipelines.
  void NoteDegraded(const char* stage);
  void AddRecordsSuppressed(size_t count) {
    stats_.records_suppressed += count;
  }

  const RunStats& stats() const { return stats_; }

 private:
  // How often the (comparatively costly) clock is consulted.
  static constexpr size_t kClockCheckMask = 63;

  Timer timer_;
  bool deadline_armed_ = false;
  double deadline_seconds_ = 0.0;
  size_t step_budget_ = 0;  // 0 = unlimited.
  std::shared_ptr<CancellationToken> cancel_token_;
  std::function<void(const RunProgress&)> observer_;
  size_t observer_interval_ = 1024;
  RunStats stats_;
};

}  // namespace kanon

#endif  // KANON_COMMON_RUN_CONTEXT_H_
