#ifndef KANON_COMMON_RUN_CONTEXT_H_
#define KANON_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "kanon/common/timer.h"

namespace kanon {

/// Why a run was asked to wind down.
enum class StopReason {
  kNone = 0,
  kDeadline,    // The wall-clock deadline expired.
  kCancelled,   // The cancellation token was triggered (e.g. SIGINT).
  kStepBudget,  // The iteration/step budget was exhausted.
};

/// Short human-readable name ("none", "deadline", ...).
const char* StopReasonName(StopReason reason);

/// A shared cancellation flag. Cancel() only stores an atomic bool, so it is
/// async-signal-safe and may be called from a SIGINT handler or another
/// thread; pipelines observe it through RunContext::CheckPoint().
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Snapshot handed to the progress observer.
struct RunProgress {
  const char* stage = "";     // Pipeline stage, e.g. "agglomerative/merge".
  size_t steps = 0;           // Cooperative checkpoints passed so far.
  double elapsed_seconds = 0.0;
};

/// Outcome bookkeeping for one anonymization run.
struct RunStats {
  /// True when a pipeline finalized early and used its fallback path. The
  /// output is still valid for the promised anonymity notion, just lossier.
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
  /// Cooperative checkpoints passed (one per merge/expansion iteration).
  size_t iterations_completed = 0;
  /// Records coarsened beyond plan by a degradation fallback (pooled into a
  /// catch-all cluster or fully suppressed).
  size_t records_suppressed = 0;
  /// First stage that had to degrade, e.g. "agglomerative/merge".
  std::string degraded_stage;
};

/// Execution controls for one anonymization run: an optional wall-clock
/// deadline, an optional cooperative cancellation token, an optional step
/// budget, and an optional progress observer. A default-constructed context
/// is unbounded and adds one predictable branch per iteration.
///
/// Pipelines call CheckPoint() once per merge/expansion iteration; once it
/// returns true (sticky), they must stop refining and *finalize*: emit a
/// table that still satisfies the promised anonymity notion, typically by
/// pooling undersized clusters or falling back to suppression, and record
/// the fact via NoteDegraded(). RunContext is not thread-safe except for the
/// CancellationToken; one context belongs to one run.
class RunContext {
 public:
  RunContext() = default;

  /// Arms a deadline `seconds` from now. Non-positive values expire
  /// immediately (useful to exercise the degraded paths).
  void ArmDeadline(double seconds) {
    deadline_seconds_ = seconds;
    deadline_armed_ = true;
    timer_.Reset();
  }

  /// Stops the run after `steps` cooperative checkpoints. 0 = unlimited.
  void set_step_budget(size_t steps) { step_budget_ = steps; }

  void set_cancel_token(std::shared_ptr<CancellationToken> token) {
    cancel_token_ = std::move(token);
  }

  /// `observer` fires every `interval_steps` checkpoints (and on the first).
  void set_progress_observer(std::function<void(const RunProgress&)> observer,
                             size_t interval_steps = 1024);

  /// One cooperative checkpoint. Counts an iteration, fires the progress
  /// observer, and returns true once the run must wind down. The result is
  /// sticky: after the first true, every later call returns true, so a
  /// multi-stage pipeline degrades every remaining stage promptly.
  bool CheckPoint(const char* stage);

  bool stopped() const { return stats_.stop_reason != StopReason::kNone; }
  StopReason stop_reason() const { return stats_.stop_reason; }

  /// Thread-safe peek used by parallel sweep workers: reports the stop the
  /// run would take at its next checkpoint — the sticky stop, cancellation,
  /// and the deadline — without mutating any state. The step budget is not
  /// consulted here; it is charged by the sweep's coordinating thread (one
  /// CheckPoint per sweep). Safe to call concurrently as long as nothing
  /// mutates the context, which holds during a sweep: the owning thread is
  /// blocked inside it.
  StopReason StopRequested() const;

  /// Registers a stop observed outside CheckPoint (e.g. a parallel sweep
  /// saw the deadline expire mid-flight). Sticky, like a CheckPoint stop;
  /// a no-op when the run is already stopped. Owning thread only.
  void NoteStop(StopReason reason);

  /// Degradation bookkeeping, written by pipelines.
  void NoteDegraded(const char* stage);
  void AddRecordsSuppressed(size_t count) {
    stats_.records_suppressed += count;
  }

  const RunStats& stats() const { return stats_; }

 private:
  // How often the (comparatively costly) clock is consulted.
  static constexpr size_t kClockCheckMask = 63;

  Timer timer_;
  bool deadline_armed_ = false;
  double deadline_seconds_ = 0.0;
  size_t step_budget_ = 0;  // 0 = unlimited.
  std::shared_ptr<CancellationToken> cancel_token_;
  std::function<void(const RunProgress&)> observer_;
  size_t observer_interval_ = 1024;
  RunStats stats_;
};

}  // namespace kanon

#endif  // KANON_COMMON_RUN_CONTEXT_H_
