#include "kanon/common/run_context.h"

#include <cstdint>
#include <limits>

namespace kanon {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kStepBudget:
      return "step-budget";
  }
  return "unknown";
}

void RunContext::set_progress_observer(
    std::function<void(const RunProgress&)> observer, size_t interval_steps) {
  observer_ = std::move(observer);
  observer_interval_ = interval_steps == 0 ? 1 : interval_steps;
}

bool RunContext::CheckPoint(const char* stage) {
  if (stopped()) return true;
  const size_t step = stats_.iterations_completed++;
  if (observer_ && step % observer_interval_ == 0) {
    observer_(RunProgress{stage, step, timer_.ElapsedSeconds()});
  }
  if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
    stats_.stop_reason = StopReason::kCancelled;
    return true;
  }
  if (step_budget_ != 0 && stats_.iterations_completed > step_budget_) {
    stats_.stop_reason = StopReason::kStepBudget;
    return true;
  }
  if (deadline_armed_ && (step & kClockCheckMask) == 0 &&
      timer_.ElapsedSeconds() >= deadline_seconds_) {
    stats_.stop_reason = StopReason::kDeadline;
    return true;
  }
  return false;
}

StopReason RunContext::StopRequested() const {
  if (stats_.stop_reason != StopReason::kNone) return stats_.stop_reason;
  if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
    return StopReason::kCancelled;
  }
  if (deadline_armed_ && timer_.ElapsedSeconds() >= deadline_seconds_) {
    return StopReason::kDeadline;
  }
  return StopReason::kNone;
}

void RunContext::NoteStop(StopReason reason) {
  if (!stopped() && reason != StopReason::kNone) {
    stats_.stop_reason = reason;
  }
}

double RunContext::RemainingSeconds() const {
  if (!deadline_armed_) return std::numeric_limits<double>::infinity();
  const double remaining = deadline_seconds_ - timer_.ElapsedSeconds();
  return remaining > 0.0 ? remaining : 0.0;
}

size_t RunContext::RemainingSteps() const {
  if (stopped()) return 0;
  if (step_budget_ == 0) return SIZE_MAX;
  return step_budget_ > stats_.iterations_completed
             ? step_budget_ - stats_.iterations_completed
             : 0;
}

RunContext RunContext::Fork(double fraction) {
  if (!(fraction > 0.0)) fraction = 1.0;
  if (fraction > 1.0) fraction = 1.0;
  RunContext child;
  // Every child gets its own token so cancelling one shard's run never
  // cancels a sibling; the link keeps a parent-level Cancel() visible.
  child.set_cancel_token(std::make_shared<CancellationToken>(cancel_token_));
  if (deadline_armed_) {
    child.ArmDeadline(RemainingSeconds() * fraction);
  }
  if (step_budget_ != 0) {
    const size_t remaining = RemainingSteps();
    if (remaining == 0) {
      // The parent's budget is spent: the child must stop at its first
      // checkpoint (a step budget of 0 would mean "unlimited").
      child.NoteStop(StopReason::kStepBudget);
    } else {
      size_t share = static_cast<size_t>(
          static_cast<double>(remaining) * fraction);
      if (share == 0) share = 1;
      if (share > remaining) share = remaining;
      child.set_step_budget(share);
    }
  }
  // A parent already stopped for any reason freezes its children too.
  if (stopped()) child.NoteStop(stats_.stop_reason);
  return child;
}

void RunContext::ChargeSteps(size_t steps) {
  stats_.iterations_completed += steps;
  // Same boundary as CheckPoint(): the budget counts checkpoints allowed,
  // so the run stops only once the count *exceeds* it.
  if (!stopped() && step_budget_ != 0 &&
      stats_.iterations_completed > step_budget_) {
    stats_.stop_reason = StopReason::kStepBudget;
  }
}

void RunContext::NoteDegraded(const char* stage) {
  if (!stats_.degraded) {
    stats_.degraded_stage = stage;
  }
  stats_.degraded = true;
}

}  // namespace kanon
