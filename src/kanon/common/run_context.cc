#include "kanon/common/run_context.h"

namespace kanon {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kStepBudget:
      return "step-budget";
  }
  return "unknown";
}

void RunContext::set_progress_observer(
    std::function<void(const RunProgress&)> observer, size_t interval_steps) {
  observer_ = std::move(observer);
  observer_interval_ = interval_steps == 0 ? 1 : interval_steps;
}

bool RunContext::CheckPoint(const char* stage) {
  if (stopped()) return true;
  const size_t step = stats_.iterations_completed++;
  if (observer_ && step % observer_interval_ == 0) {
    observer_(RunProgress{stage, step, timer_.ElapsedSeconds()});
  }
  if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
    stats_.stop_reason = StopReason::kCancelled;
    return true;
  }
  if (step_budget_ != 0 && stats_.iterations_completed > step_budget_) {
    stats_.stop_reason = StopReason::kStepBudget;
    return true;
  }
  if (deadline_armed_ && (step & kClockCheckMask) == 0 &&
      timer_.ElapsedSeconds() >= deadline_seconds_) {
    stats_.stop_reason = StopReason::kDeadline;
    return true;
  }
  return false;
}

StopReason RunContext::StopRequested() const {
  if (stats_.stop_reason != StopReason::kNone) return stats_.stop_reason;
  if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
    return StopReason::kCancelled;
  }
  if (deadline_armed_ && timer_.ElapsedSeconds() >= deadline_seconds_) {
    return StopReason::kDeadline;
  }
  return StopReason::kNone;
}

void RunContext::NoteStop(StopReason reason) {
  if (!stopped() && reason != StopReason::kNone) {
    stats_.stop_reason = reason;
  }
}

void RunContext::NoteDegraded(const char* stage) {
  if (!stats_.degraded) {
    stats_.degraded_stage = stage;
  }
  stats_.degraded = true;
}

}  // namespace kanon
