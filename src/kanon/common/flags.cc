#include "kanon/common/flags.h"

#include <cstdlib>

#include "kanon/common/check.h"

namespace kanon {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      values_[name] = body.substr(eq + 1);
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  KANON_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
              "flag --" + name + " is not an integer: " + it->second);
  return value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  KANON_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
              "flag --" + name + " is not a number: " + it->second);
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace kanon
