#include "kanon/common/rng.h"

#include <deque>

namespace kanon {

namespace {

// splitmix64 finalizer: a bijective avalanche mix.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::Fork(uint64_t label) const {
  // Two rounds of mixing with distinct additive constants decorrelate the
  // substream from both the parent stream (which steps by the same golden
  // ratio) and from sibling labels. Depends only on root_, never on state_.
  const uint64_t mixed_label = Mix64(label + 0x632be59bd9b4e019ULL);
  return Rng(Mix64(root_ ^ mixed_label ^ 0x9e3779b97f4a7c15ULL));
}

Rng Rng::Fork(std::string_view label) const {
  // FNV-1a over the label bytes, then the integer fork path.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : label) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return Fork(hash);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    KANON_CHECK(w >= 0.0, "NextWeighted requires non-negative weights");
    total += w;
  }
  KANON_CHECK(total > 0.0, "NextWeighted requires a positive weight sum");
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack.
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  KANON_CHECK(!weights.empty(), "AliasSampler requires at least one weight");
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    KANON_CHECK(w >= 0.0, "AliasSampler requires non-negative weights");
    total += w;
  }
  KANON_CHECK(total > 0.0, "AliasSampler requires a positive weight sum");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::deque<size_t> small;
  std::deque<size_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.front();
    small.pop_front();
    size_t l = large.front();
    large.pop_front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.front()] = 1.0;
    large.pop_front();
  }
  while (!small.empty()) {
    prob_[small.front()] = 1.0;  // Floating-point slack.
    small.pop_front();
  }
}

size_t AliasSampler::Sample(Rng* rng) const {
  size_t i = static_cast<size_t>(rng->NextBounded(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace kanon
