#ifndef KANON_COMMON_RNG_H_
#define KANON_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "kanon/common/check.h"

namespace kanon {

/// Deterministic pseudo-random number generator (splitmix64 core).
///
/// All randomness in the library flows through explicitly seeded Rng
/// instances so that every experiment, test, and bench is reproducible
/// across platforms and standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed), root_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    KANON_CHECK(bound > 0, "NextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    KANON_CHECK(lo <= hi, "NextInt requires lo <= hi");
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Samples an index according to `weights` (non-negative, not all zero).
  size_t NextWeighted(const std::vector<double>& weights);

  /// Independent substream for `label`: a new Rng whose stream is a pure
  /// function of this Rng's *construction seed* and the label — never of how
  /// much of this stream has already been consumed. Forking the same label
  /// before or after any number of Next() calls yields the same substream,
  /// so work items seeded via Fork(item_index) draw identical randomness
  /// whether they run serially, in parallel, or in any order (the campaign
  /// reproducibility contract of check/).
  ///
  /// Forks of forks are fine: the child's construction seed becomes its own
  /// root, so Fork(a).Fork(b) is a well-defined two-level substream.
  Rng Fork(uint64_t label) const;

  /// Fork keyed by a string label (FNV-1a hash of the bytes).
  Rng Fork(std::string_view label) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t root_;  // The construction seed; the base of Fork() substreams.
};

/// Draws from a fixed categorical distribution with O(1) sampling
/// (Walker alias method). Useful for the dataset generators which sample
/// millions of attribute values.
class AliasSampler {
 public:
  /// Builds the alias table. `weights` must be non-empty with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Samples a category index.
  size_t Sample(Rng* rng) const;

  size_t num_categories() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace kanon

#endif  // KANON_COMMON_RNG_H_
