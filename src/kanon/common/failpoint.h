#ifndef KANON_COMMON_FAILPOINT_H_
#define KANON_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "kanon/common/status.h"

namespace kanon {
namespace failpoint {

/// Deterministic fault-injection registry for robustness tests.
///
/// A failpoint is a named site compiled into a fallible code path (CSV/spec
/// ingestion, cluster-closure loops). When armed, the site returns an
/// injected non-OK Status instead of proceeding, proving that every failure
/// on that path surfaces as a Status — no crash, no invalid output.
///
/// Arming:
///   - programmatically: failpoint::Arm("csv.read_row", /*after=*/2);
///   - via environment:  KANON_FAILPOINTS="csv.read_row=2,spec.line"
///     (parsed on first use; "=N" skips the first N hits, default 0).
///
/// Disarmed failpoints cost one relaxed atomic load; builds with
/// KANON_DISABLE_FAILPOINTS defined compile the macro to nothing.

/// True when at least one failpoint is armed (fast gate; see the macro).
bool AnyArmed();

/// Counts a hit of `name`. Returns the injected error when `name` is armed
/// and its skip-count is exhausted; OK otherwise.
Status Check(const char* name);

/// Arms `name`: the (after+1)-th Check() hit fails, as do all later hits.
void Arm(const std::string& name, int after = 0);

/// Disarms one / every failpoint and resets hit counters.
void Disarm(const std::string& name);
void DisarmAll();

/// Names of currently armed failpoints (for diagnostics).
std::vector<std::string> ArmedNames();

}  // namespace failpoint
}  // namespace kanon

/// Drops an injected failure into a function returning Status or Result<T>.
/// Usage, at the top of a fallible loop body or entry point:
///   KANON_FAILPOINT("csv.read_row");
#ifdef KANON_DISABLE_FAILPOINTS
#define KANON_FAILPOINT(name) \
  do {                        \
  } while (false)
#else
#define KANON_FAILPOINT(name)                                       \
  do {                                                              \
    if (::kanon::failpoint::AnyArmed()) {                           \
      ::kanon::Status kanon_failpoint_status =                      \
          ::kanon::failpoint::Check(name);                          \
      if (!kanon_failpoint_status.ok()) {                           \
        return kanon_failpoint_status;                              \
      }                                                             \
    }                                                               \
  } while (false)
#endif

#endif  // KANON_COMMON_FAILPOINT_H_
