#ifndef KANON_COMMON_CHECK_H_
#define KANON_COMMON_CHECK_H_

#include <string>

namespace kanon {
namespace internal {

/// Prints the failure to stderr and aborts. Out-of-line to keep the macro
/// expansion small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

inline std::string CheckMessage() { return std::string(); }
inline std::string CheckMessage(std::string message) { return message; }
inline std::string CheckMessage(const char* message) {
  return std::string(message);
}

}  // namespace internal
}  // namespace kanon

/// Aborts with a diagnostic when `cond` is false. For programming errors
/// (violated invariants), not for recoverable conditions — those use Status.
#define KANON_CHECK(cond, ...)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::kanon::internal::CheckFailed(                                 \
          __FILE__, __LINE__, #cond,                                  \
          ::kanon::internal::CheckMessage(__VA_ARGS__));              \
    }                                                                 \
  } while (false)

/// KANON_DCHECK compiles away in release builds.
#ifdef NDEBUG
#define KANON_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#else
#define KANON_DCHECK(cond, ...) KANON_CHECK(cond, __VA_ARGS__)
#endif

#endif  // KANON_COMMON_CHECK_H_
