#ifndef KANON_COMMON_TIMER_H_
#define KANON_COMMON_TIMER_H_

#include <chrono>

namespace kanon {

/// Wall-clock stopwatch used by benches and examples.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kanon

#endif  // KANON_COMMON_TIMER_H_
