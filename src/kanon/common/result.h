#ifndef KANON_COMMON_RESULT_H_
#define KANON_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "kanon/common/check.h"
#include "kanon/common/status.h"

namespace kanon {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<Dataset> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Intentionally implicit
  /// so functions can `return Status::InvalidArgument(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    KANON_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() if this result holds a value.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    KANON_CHECK(ok(), "Result::value() called on error: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    KANON_CHECK(ok(), "Result::value() called on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    KANON_CHECK(ok(), "Result::value() called on error: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Unwraps a Result into `lhs`, propagating errors to the caller.
#define KANON_INTERNAL_CONCAT2(a, b) a##b
#define KANON_INTERNAL_CONCAT(a, b) KANON_INTERNAL_CONCAT2(a, b)
#define KANON_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                    \
  if (!var.ok()) {                                      \
    return var.status();                                \
  }                                                     \
  lhs = std::move(var).value()
#define KANON_ASSIGN_OR_RETURN(lhs, expr)                                  \
  KANON_INTERNAL_ASSIGN_OR_RETURN(                                         \
      KANON_INTERNAL_CONCAT(kanon_result_macro_, __LINE__), lhs, expr)

}  // namespace kanon

#endif  // KANON_COMMON_RESULT_H_
