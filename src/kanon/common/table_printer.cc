#include "kanon/common/table_printer.h"

#include <algorithm>

namespace kanon {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::string TablePrinter::ToString() const {
  size_t num_cols = header_.size();
  for (const Row& row : rows_) {
    num_cols = std::max(num_cols, row.cells.size());
  }
  if (num_cols == 0) return std::string();

  std::vector<size_t> width(num_cols, 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const Row& row : rows_) {
    for (size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : std::string();
      line += cell;
      if (c + 1 < num_cols) {
        line.append(width[c] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  size_t total_width = 0;
  for (size_t c = 0; c < num_cols; ++c) {
    total_width += width[c] + (c + 1 < num_cols ? 2 : 0);
  }
  const std::string rule(total_width, '-');

  std::string out;
  if (!header_.empty()) {
    out += render_cells(header_);
    out += rule;
    out += '\n';
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      out += rule;
      out += '\n';
    } else {
      out += render_cells(row.cells);
    }
  }
  return out;
}

}  // namespace kanon
