#include "kanon/common/status.h"

namespace kanon {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace kanon
