#include "kanon/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "kanon/telemetry/tracer.h"

namespace kanon {

int DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveNumThreads(int requested) {
  return requested > 0 ? requested : DefaultNumThreads();
}

namespace {

// Upper bound on chunks per sweep. Enough granularity for work stealing to
// balance uneven chunks, few enough that the per-chunk claim (one atomic
// fetch_add, one stop poll) is noise.
constexpr size_t kMaxChunks = 256;

// True while the current thread executes sweep chunks (worker or caller).
// Nested sweeps run inline so a chunk body can reuse parallel helpers
// without deadlocking the pool.
thread_local bool t_in_sweep = false;

// One sweep's shared state. Held by shared_ptr so a worker that wakes late
// can never touch freed memory, and stack lifetime never escapes: the
// caller waits until every participant left before returning.
struct Job {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t num_chunks = 0;
  RunContext* ctx = nullptr;
  Tracer* tracer = nullptr;              // Sweep's tracer; workers record
  const char* stage = "";                // their participation against it.
  std::atomic<size_t> next{0};           // Next chunk to claim.
  std::atomic<int> stop{0};              // First StopReason observed, or 0.
  std::atomic<int> seats{0};             // Extra workers still allowed in.
};

// Claims and runs chunks until the sweep is exhausted or stopped; returns
// the number of chunks this thread ran. Shared by pool workers and the
// calling thread.
size_t DrainChunks(Job& job) {
  // Save/restore rather than set/clear: a nested (inline) sweep must not
  // clear the flag while the enclosing sweep is still running, or the next
  // nested call would take the pool path and self-deadlock on region_mu_.
  const bool was_in_sweep = t_in_sweep;
  t_in_sweep = true;
  size_t ran = 0;
  for (;;) {
    if (job.stop.load(std::memory_order_relaxed) != 0) break;
    if (job.ctx != nullptr) {
      const StopReason r = job.ctx->StopRequested();
      if (r != StopReason::kNone) {
        int expected = 0;
        job.stop.compare_exchange_strong(expected, static_cast<int>(r),
                                         std::memory_order_relaxed);
        break;
      }
    }
    const size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    const auto [begin, end] = ParallelChunkRange(job.n, chunk);
    (*job.body)(chunk, begin, end);
    ++ran;
  }
  t_in_sweep = was_in_sweep;
  return ran;
}

// A lazily started pool of DrainChunks workers. One sweep runs at a time
// (concurrent top-level sweeps serialize on region_mu_); the pool grows to
// the largest extra-worker count ever requested and is joined at exit.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  // Runs `job` on the caller plus up to `extra_workers` pool threads;
  // returns only when every participant has left the job.
  void Run(const std::shared_ptr<Job>& job, size_t extra_workers) {
    std::lock_guard<std::mutex> region(region_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (workers_.size() < extra_workers) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
      job->seats.store(static_cast<int>(extra_workers),
                       std::memory_order_relaxed);
      current_ = job;
      ++generation_;
      active_workers_ = 0;
    }
    cv_.notify_all();
    DrainChunks(*job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return active_workers_ == 0; });
      current_.reset();
    }
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return shutdown_ ||
                 (current_ != nullptr && generation_ != seen_generation);
        });
        if (shutdown_) return;
        seen_generation = generation_;
        // Seats bound participation to the sweep's thread budget; workers
        // beyond it (from an earlier, wider sweep) sit this one out.
        if (current_->seats.fetch_sub(1, std::memory_order_relaxed) <= 0) {
          continue;
        }
        job = current_;
        ++active_workers_;
      }
      {
        // Worker-lane span: when the sweep is traced, each participating
        // pool worker records one "worker" span covering its DrainChunks
        // stint. Which worker claims which chunks is scheduling-dependent,
        // so these lanes are outside the determinism contract (lane 0's
        // "sweep" span is the deterministic record); a stint that claimed
        // zero chunks is suppressed entirely.
        PhaseSpan span(job->tracer, job->stage, "worker");
        const size_t ran = DrainChunks(*job);
        span.set_items(ran);
        if (ran == 0) span.Cancel();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--active_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex region_mu_;  // Serializes top-level sweeps.
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_;
  uint64_t generation_ = 0;
  size_t active_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace

size_t ParallelChunkCount(size_t n) {
  return n < kMaxChunks ? n : kMaxChunks;
}

std::pair<size_t, size_t> ParallelChunkRange(size_t n, size_t chunk) {
  const size_t chunks = ParallelChunkCount(n);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;  // The first `extra` chunks get +1 item.
  const size_t begin = chunk * base + std::min(chunk, extra);
  return {begin, begin + base + (chunk < extra ? 1 : 0)};
}

SweepStatus ParallelChunks(
    size_t n, int num_threads, RunContext* ctx, const char* stage,
    const std::function<void(size_t, size_t, size_t)>& body,
    size_t serial_below) {
  if (ctx != nullptr && ctx->stopped()) return {false};
  if (n == 0) return {true};
  const size_t num_chunks = ParallelChunkCount(n);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->num_chunks = num_chunks;
  job->ctx = ctx;
  // Sweep span + step accounting. Only top-level sweeps are traced (nested
  // sweeps run inline inside an already-traced chunk); lane 0 records
  // exactly one "sweep" span per sweep and the step clock advances by the
  // chunk count — both pure functions of n, never of the thread count.
  Tracer* const tracer = t_in_sweep ? nullptr : CurrentTracer();
  PhaseSpan sweep_span(tracer, stage, "sweep");
  if (tracer != nullptr) {
    sweep_span.set_items(num_chunks);
    tracer->AdvanceSteps(num_chunks);
    job->tracer = tracer;
    job->stage = stage;
  }
  const size_t threads = std::min<size_t>(
      static_cast<size_t>(ResolveNumThreads(num_threads)), num_chunks);
  if (threads <= 1 || t_in_sweep || n < serial_below) {
    DrainChunks(*job);
  } else {
    ThreadPool::Instance().Run(job, threads - 1);
  }
  const int stop = job->stop.load(std::memory_order_relaxed);
  if (stop != 0) {
    if (ctx != nullptr) ctx->NoteStop(static_cast<StopReason>(stop));
    return {false};
  }
  // Step accounting: one deterministic step per completed sweep. A budget
  // tripped here stops the run from the next checkpoint on.
  if (ctx != nullptr) ctx->CheckPoint(stage);
  return {true};
}

SweepStatus ParallelFor(size_t n, int num_threads, RunContext* ctx,
                        const char* stage,
                        const std::function<void(size_t)>& body,
                        std::vector<uint8_t>* done, size_t serial_below) {
  if (done != nullptr) done->assign(n, 0);
  return ParallelChunks(
      n, num_threads, ctx, stage,
      [&](size_t /*chunk*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          body(i);
          if (done != nullptr) (*done)[i] = 1;
        }
      },
      serial_below);
}

ArgminResult ParallelArgmin(size_t n, int num_threads, RunContext* ctx,
                            const char* stage,
                            const std::function<double(size_t)>& eval,
                            size_t serial_below) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Part {
    size_t index = 0;
    double value = kInf;
    bool valid = false;
  };
  std::vector<Part> parts(ParallelChunkCount(n));
  const SweepStatus sweep = ParallelChunks(
      n, num_threads, ctx, stage,
      [&](size_t chunk, size_t begin, size_t end) {
        Part local;
        for (size_t i = begin; i < end; ++i) {
          const double v = eval(i);
          // Strict < in ascending index order: first (smallest) index wins
          // ties, exactly like a serial scan.
          if (!local.valid || v < local.value) {
            local.index = i;
            local.value = v;
            local.valid = true;
          }
        }
        parts[chunk] = local;
      },
      serial_below);
  ArgminResult out;
  out.completed = sweep.completed;
  for (const Part& p : parts) {
    // Chunk-index order: on equal values the earlier chunk (smaller
    // indices) keeps the win.
    if (p.valid && (!out.valid || p.value < out.value)) {
      out.index = p.index;
      out.value = p.value;
      out.valid = true;
    }
  }
  return out;
}

}  // namespace kanon
