#include "kanon/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace kanon {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "KANON_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace kanon
