#include "kanon/telemetry/log.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "kanon/telemetry/flight_recorder.h"

namespace kanon {

namespace {

void AppendEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN literal; these only arise from buggy callers
    // and 0 is the least-surprising placeholder.
    out->push_back('0');
    return;
  }
  char buf[40];
  if (value == static_cast<long long>(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  out->append(buf);
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogField LogField::Str(const char* key, std::string value) {
  LogField f;
  f.key = key;
  f.kind = Kind::kStr;
  f.str = std::move(value);
  return f;
}

LogField LogField::Int(const char* key, int64_t value) {
  LogField f;
  f.key = key;
  f.kind = Kind::kInt;
  f.i64 = value;
  return f;
}

LogField LogField::U64(const char* key, uint64_t value) {
  LogField f;
  f.key = key;
  f.kind = Kind::kUint;
  f.u64 = value;
  return f;
}

LogField LogField::Dbl(const char* key, double value) {
  LogField f;
  f.key = key;
  f.kind = Kind::kDouble;
  f.f64 = value;
  return f;
}

LogField LogField::Bool(const char* key, bool value) {
  LogField f;
  f.key = key;
  f.kind = Kind::kBool;
  f.b = value;
  return f;
}

namespace log_internal {

double NowUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string RenderLine(double ts_unix, LogLevel level, std::string_view event,
                       const LogField* fields, size_t num_fields) {
  std::string out;
  out.reserve(96 + num_fields * 24);
  char ts[40];
  std::snprintf(ts, sizeof(ts), "%.3f", ts_unix);
  out.append("{\"ts\":");
  out.append(ts);
  out.append(",\"level\":\"");
  out.append(LogLevelName(level));
  out.append("\",\"event\":\"");
  AppendEscaped(&out, event);
  out.push_back('"');
  for (size_t i = 0; i < num_fields; ++i) {
    const LogField& f = fields[i];
    out.append(",\"");
    AppendEscaped(&out, f.key);
    out.append("\":");
    switch (f.kind) {
      case LogField::Kind::kStr:
        out.push_back('"');
        AppendEscaped(&out, f.str);
        out.push_back('"');
        break;
      case LogField::Kind::kInt:
        out.append(std::to_string(f.i64));
        break;
      case LogField::Kind::kUint:
        out.append(std::to_string(f.u64));
        break;
      case LogField::Kind::kDouble:
        AppendDouble(&out, f.f64);
        break;
      case LogField::Kind::kBool:
        out.append(f.b ? "true" : "false");
        break;
    }
  }
  out.push_back('}');
  return out;
}

}  // namespace log_internal

Result<std::unique_ptr<Logger>> Logger::Open(const std::string& target,
                                             const Options& options) {
  if (target == "stderr") {
    return std::unique_ptr<Logger>(new Logger(stderr, false, options));
  }
  std::FILE* stream = std::fopen(target.c_str(), "a");
  if (stream == nullptr) {
    return Status::IOError("cannot open log file '" + target +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<Logger>(new Logger(stream, true, options));
}

Logger::Logger(std::FILE* stream, bool owns_stream, const Options& options)
    : options_(options),
      stream_(stream),
      owns_stream_(owns_stream),
      tokens_(options.burst > 0.0
                  ? options.burst
                  : std::max(16.0, 2.0 * options.rate_limit_per_sec)),
      last_refill_seconds_(MonotonicSeconds()) {}

Logger::~Logger() {
  if (owns_stream_ && stream_ != nullptr) std::fclose(stream_);
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!ShouldLog(level)) return;
  WriteLine(log_internal::RenderLine(log_internal::NowUnixSeconds(), level,
                                     event, fields.begin(), fields.size()));
}

void Logger::WriteLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.rate_limit_per_sec > 0.0) {
    const double now = MonotonicSeconds();
    const double burst = options_.burst > 0.0
                             ? options_.burst
                             : std::max(16.0, 2.0 * options_.rate_limit_per_sec);
    tokens_ = std::min(
        burst, tokens_ + (now - last_refill_seconds_) *
                             options_.rate_limit_per_sec);
    last_refill_seconds_ = now;
    if (tokens_ < 1.0) {
      ++dropped_total_;
      ++dropped_pending_;
      return;
    }
    tokens_ -= 1.0;
    if (dropped_pending_ > 0) {
      // One summary record per storm, emitted when writing resumes.
      const std::string summary = log_internal::RenderLine(
          log_internal::NowUnixSeconds(), LogLevel::kWarn, "log.rate_limited",
          std::initializer_list<LogField>{
              LogField::U64("dropped", dropped_pending_)}
              .begin(),
          1);
      std::fwrite(summary.data(), 1, summary.size(), stream_);
      std::fputc('\n', stream_);
      dropped_pending_ = 0;
    }
  }
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fputc('\n', stream_);
  // Flushed per record: the log is a live debugging surface (tests and
  // operators tail it while the daemon runs), and record rates are
  // bounded by the limiter anyway.
  std::fflush(stream_);
}

uint64_t Logger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

void LogEvent(Logger* logger, FlightRecorder* flight, LogLevel level,
              std::string_view event, std::initializer_list<LogField> fields) {
  const bool want_log = logger != nullptr && logger->ShouldLog(level);
  if (!want_log && flight == nullptr) return;
  const std::string line =
      log_internal::RenderLine(log_internal::NowUnixSeconds(), level, event,
                               fields.begin(), fields.size());
  if (flight != nullptr) flight->RecordLine(line);
  if (want_log) logger->WriteLine(line);
}

}  // namespace kanon
