#include "kanon/telemetry/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace kanon {

namespace {

/// Crash-handler state. Plain globals set before any signal can fire;
/// the handler reads them without synchronization (the installer is
/// called once, from main, before serving starts).
FlightRecorder* g_crash_recorder = nullptr;
char g_crash_dump_path[1024] = {0};

/// write(2) that tolerates short writes; best-effort (a failing fd at
/// crash time has no recourse).
void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<size_t>(n);
  }
}

/// Async-signal-safe unsigned decimal formatting (snprintf is not on the
/// POSIX safe list).
size_t FormatUnsigned(unsigned long value, char* out, size_t cap) {
  char tmp[24];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value > 0 && n < sizeof(tmp));
  const size_t len = std::min(n, cap);
  for (size_t i = 0; i < len; ++i) out[i] = tmp[n - 1 - i];
  return len;
}

void CrashHandler(int signum) {
  if (g_crash_recorder != nullptr && g_crash_dump_path[0] != '\0') {
    const int fd =
        ::open(g_crash_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      g_crash_recorder->DumpToFd(fd);
      char line[64];
      size_t len = 0;
      static const char kPrefix[] = "{\"event\":\"crash.signal\",\"signal\":";
      std::memcpy(line, kPrefix, sizeof(kPrefix) - 1);
      len += sizeof(kPrefix) - 1;
      len += FormatUnsigned(static_cast<unsigned long>(signum), line + len,
                            sizeof(line) - len - 3);
      line[len++] = '}';
      line[len++] = '\n';
      WriteAll(fd, line, len);
      ::close(fd);
    }
  }
  // Die with the original signal so the parent sees the true cause
  // (exit status 128 + signum).
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(std::max<size_t>(1, capacity)) {}

void FlightRecorder::RecordLine(std::string_view line) {
  static constexpr std::string_view kOversized =
      "{\"event\":\"flight.oversized\"}";
  if (line.size() > kMaxLineBytes) line = kOversized;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[seq % slots_.size()];
  slot.seq.store(0, std::memory_order_release);  // Invalidate for readers.
  std::memcpy(slot.data, line.data(), line.size());
  slot.len.store(static_cast<uint32_t>(line.size()),
                 std::memory_order_release);
  slot.seq.store(seq + 1, std::memory_order_release);
}

std::vector<std::string> FlightRecorder::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin =
      end > slots_.size() ? end - slots_.size() : 0;
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i % slots_.size()];
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    const uint32_t len = slot.len.load(std::memory_order_acquire);
    std::string line(slot.data, std::min<size_t>(len, kMaxLineBytes));
    // Seqlock validation: a concurrent writer invalidates seq first, so
    // an unchanged seq means the copied bytes are the published ones.
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    out.push_back(std::move(line));
  }
  return out;
}

void FlightRecorder::DumpToFd(int fd) const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > slots_.size() ? end - slots_.size() : 0;
  for (uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i % slots_.size()];
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    char buf[kMaxLineBytes + 1];
    const uint32_t len = std::min<uint32_t>(
        slot.len.load(std::memory_order_acquire), kMaxLineBytes);
    std::memcpy(buf, slot.data, len);
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    buf[len] = '\n';
    WriteAll(fd, buf, len + 1);
  }
}

void FlightRecorder::InstallCrashHandler(FlightRecorder* recorder,
                                         const std::string& path) {
  g_crash_recorder = recorder;
  std::snprintf(g_crash_dump_path, sizeof(g_crash_dump_path), "%s",
                path.c_str());
  struct sigaction action = {};
  action.sa_handler = CrashHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (const int signum :
       {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(signum, &action, nullptr);
  }
}

}  // namespace kanon
