#ifndef KANON_TELEMETRY_TRACE_EXPORT_H_
#define KANON_TELEMETRY_TRACE_EXPORT_H_

#include <string>

#include "kanon/common/status.h"
#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

/// Renders the tracer's spans as Chrome trace-event JSON (the "JSON Array
/// Format" with a traceEvents wrapper), loadable in chrome://tracing and
/// https://ui.perfetto.dev. One trace process ("kanon"), one trace thread
/// per lane; lane 0 is named "coordinator", lanes >= 1 "worker N". Every
/// span becomes a complete ("ph":"X") event carrying the deterministic
/// step-clock interval and the item payload in its args.
std::string ChromeTraceJson(const Tracer& tracer);

/// ChromeTraceJson written to `path` ("-" = stdout).
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// MetricsRegistry::ToJson(true) written to `path` ("-" = stdout).
Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path);

}  // namespace kanon

#endif  // KANON_TELEMETRY_TRACE_EXPORT_H_
