#ifndef KANON_TELEMETRY_METRICS_H_
#define KANON_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "kanon/telemetry/rolling.h"

namespace kanon {

/// A monotonically increasing integer metric, e.g. "engine.merges".
class Counter {
 public:
  explicit Counter(bool deterministic) : deterministic_(deterministic) {}

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Whether the value is part of the determinism contract: identical at
  /// every --threads setting for the same input and configuration.
  bool deterministic() const { return deterministic_; }

 private:
  std::atomic<uint64_t> value_{0};
  const bool deterministic_;
};

/// A last-write-wins floating-point metric, e.g. "run.elapsed_seconds".
class Gauge {
 public:
  explicit Gauge(bool deterministic) : deterministic_(deterministic) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool deterministic() const { return deterministic_; }

 private:
  std::atomic<double> value_{0.0};
  const bool deterministic_;
};

/// A fixed-bucket histogram. Bucket i counts observations <= bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at
/// registration so distributions stay comparable across runs.
class Histogram {
 public:
  Histogram(std::vector<double> bounds, bool deterministic);

  /// NaN and negative samples (a backwards clock, a bad subtraction)
  /// would silently corrupt the distribution; they clamp to 0 instead
  /// and count into the registry's telemetry.bad_samples counter.
  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  bool deterministic() const { return deterministic_; }

 private:
  friend class MetricsRegistry;

  const std::vector<double> bounds_;
  const bool deterministic_;
  /// Wired by the registry; counts clamped NaN/negative observations.
  Counter* bad_samples_ = nullptr;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// A registry of named metrics for one anonymization run. Registration
/// returns stable pointers, so hot paths look a metric up once and then
/// update it lock-free (counters/gauges) or under the histogram's own
/// mutex. Names use a dotted "subsystem.metric" convention; iteration
/// (and therefore JSON output) is in lexicographic name order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. The `deterministic` flag (and histogram bounds) of
  /// the first registration win.
  Counter* GetCounter(const std::string& name, bool deterministic = true);
  Gauge* GetGauge(const std::string& name, bool deterministic = true);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          bool deterministic = true);
  /// Rolling histograms are wall-clock-derived and therefore always
  /// outside the determinism contract: ToJson(false) never emits them.
  /// Geometry (bounds, window, slot count) of the first registration wins.
  RollingHistogram* GetRollingHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        double window_seconds = 60.0,
                                        size_t num_slots = 12);

  /// A constant info metric (the Prometheus build_info convention): a set
  /// of string labels attached to a name, exported as `name{labels} 1`.
  /// Always nondeterministic. Replaces any previous labels for `name`.
  using InfoLabels = std::vector<std::pair<std::string, std::string>>;
  void SetInfo(const std::string& name, InfoLabels labels);

  /// Flat metrics JSON: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// plus, with include_nondeterministic=true, "rolling" and "info"
  /// sections. With include_nondeterministic=false only metrics under the
  /// determinism contract are emitted — that string must be byte-identical
  /// at every thread count, which is what the determinism tests
  /// fingerprint; rolling, info, and telemetry.bad_samples never appear
  /// in it.
  std::string ToJson(bool include_nondeterministic = true) const;

  /// Exporter snapshots (name-sorted). The pointers are stable for the
  /// registry's lifetime, so a scrape iterates without the registry lock.
  std::vector<std::pair<std::string, Counter*>> CountersSnapshot() const;
  std::vector<std::pair<std::string, Gauge*>> GaugesSnapshot() const;
  std::vector<std::pair<std::string, Histogram*>> HistogramsSnapshot() const;
  std::vector<std::pair<std::string, RollingHistogram*>> RollingSnapshot()
      const;
  std::vector<std::pair<std::string, InfoLabels>> InfosSnapshot() const;

 private:
  /// Find-or-create under mu_ (the public GetCounter takes mu_ itself, so
  /// registration paths that already hold it use this directly).
  Counter* CounterLocked(const std::string& name, bool deterministic);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<RollingHistogram>> rolling_;
  std::map<std::string, InfoLabels> infos_;
};

}  // namespace kanon

#endif  // KANON_TELEMETRY_METRICS_H_
