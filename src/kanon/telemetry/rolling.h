#ifndef KANON_TELEMETRY_ROLLING_H_
#define KANON_TELEMETRY_ROLLING_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace kanon {

class Counter;

/// A trailing-window histogram: a ring of fixed-width time slots, each a
/// fixed-bucket histogram, so quantiles are answered over "the last W
/// seconds" rather than since process start — the shape a live scrape
/// needs from a daemon that never ends. Observations land in the slot
/// covering "now"; a slot is zeroed lazily the first time it is reused
/// for a new time interval, which makes Observe O(buckets) worst case and
/// allocation-free always.
///
/// Rolling metrics are wall-clock-derived and therefore always outside
/// the determinism contract: MetricsRegistry::ToJson(false) never emits
/// them (docs/observability.md).
class RollingHistogram {
 public:
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    /// Quantile estimates: the upper bound of the first bucket whose
    /// cumulative count reaches the quantile. Observations past the last
    /// bound clamp to it, so the estimate is conservative from below.
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// `bounds` as for Histogram (ascending upper bounds; one implicit
  /// overflow bucket). The window is `num_slots` slots of
  /// `window_seconds / num_slots` each; observations older than the
  /// window fall out as their slots are recycled.
  RollingHistogram(std::vector<double> bounds, double window_seconds,
                   size_t num_slots);

  /// NaN and negative samples clamp to 0 and count into `bad_samples`
  /// when a counter was attached (the registry wires
  /// telemetry.bad_samples).
  void Observe(double value);
  /// Test seam: like Observe but at an explicit time (seconds on the
  /// histogram's own clock, 0 = construction).
  void ObserveAt(double value, double now_seconds);

  Snapshot Snap() const;
  Snapshot SnapAt(double now_seconds) const;

  const std::vector<double>& bounds() const { return bounds_; }
  double window_seconds() const {
    return slot_width_ * static_cast<double>(slots_.size());
  }

  void set_bad_samples_counter(Counter* counter) { bad_samples_ = counter; }

 private:
  struct Slot {
    int64_t epoch = -1;  // floor(now / slot_width); -1 = never used.
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;
  };

  double NowSeconds() const;
  /// Returns the slot for `epoch`, zeroing it if it last served an older
  /// interval. Caller holds mu_.
  Slot& SlotFor(int64_t epoch);
  static double QuantileFromCounts(const std::vector<uint64_t>& counts,
                                   const std::vector<double>& bounds,
                                   uint64_t total, double q);

  const std::vector<double> bounds_;
  const double slot_width_;
  const std::chrono::steady_clock::time_point start_;
  Counter* bad_samples_ = nullptr;

  mutable std::mutex mu_;
  mutable std::vector<Slot> slots_;
};

}  // namespace kanon

#endif  // KANON_TELEMETRY_ROLLING_H_
