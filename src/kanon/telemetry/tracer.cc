#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// Per-thread lane cache: valid for one tracer id at a time. Re-resolving
// through the tracer's mutex only happens on the first span a thread
// records against a given tracer.
struct LaneCache {
  uint64_t tracer_id = 0;
  uint32_t lane = 0;
  uint32_t depth = 0;
};
thread_local LaneCache t_lane_cache;

struct CurrentTelemetry {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};
thread_local CurrentTelemetry t_current;

}  // namespace

Tracer::Tracer(size_t max_spans)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      max_spans_(max_spans),
      start_(std::chrono::steady_clock::now()) {
  // The constructing thread is the run's coordinating thread: lane 0.
  lane_threads_.push_back(std::this_thread::get_id());
  lanes_.emplace_back();
  t_lane_cache = LaneCache{id_, 0, 0};
}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

uint32_t Tracer::ThisThreadLane() {
  if (t_lane_cache.tracer_id == id_) return t_lane_cache.lane;
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t lane = 0; lane < lane_threads_.size(); ++lane) {
    if (lane_threads_[lane] == self) {
      t_lane_cache = LaneCache{id_, static_cast<uint32_t>(lane), 0};
      return static_cast<uint32_t>(lane);
    }
  }
  const uint32_t lane = static_cast<uint32_t>(lane_threads_.size());
  lane_threads_.push_back(self);
  lanes_.emplace_back();
  t_lane_cache = LaneCache{id_, lane, 0};
  return lane;
}

void Tracer::Record(const SpanEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stored_ >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  lanes_[event.lane].push_back(event);
  ++stored_;
}

size_t Tracer::num_lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_.size();
}

const std::vector<SpanEvent>& Tracer::lane_events(size_t lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[lane];
}

size_t Tracer::total_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stored_;
}

PhaseSpan::PhaseSpan(Tracer* tracer, const char* name, const char* category)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  event_.name = name;
  event_.category = category;
  event_.lane = tracer_->ThisThreadLane();
  event_.depth = t_lane_cache.depth++;
  event_.wall_begin_us = tracer_->NowMicros();
  if (event_.lane == 0) tracer_->AdvanceSteps(1);
  event_.steps_begin = tracer_->steps();
}

PhaseSpan::~PhaseSpan() {
  if (tracer_ == nullptr) return;
  // The cache cannot have moved to another tracer mid-span: a thread
  // records against one tracer at a time (one run owns one coordinating
  // thread, and a pool worker participates in one sweep at a time).
  --t_lane_cache.depth;
  if (event_.lane == 0) tracer_->AdvanceSteps(1);
  event_.steps_end = tracer_->steps();
  event_.wall_end_us = tracer_->NowMicros();
  tracer_->Record(event_);
}

Tracer* CurrentTracer() { return t_current.tracer; }
MetricsRegistry* CurrentMetrics() { return t_current.metrics; }

ScopedTelemetry::ScopedTelemetry(Tracer* tracer, MetricsRegistry* metrics)
    : saved_tracer_(t_current.tracer), saved_metrics_(t_current.metrics) {
  t_current.tracer = tracer;
  t_current.metrics = metrics;
}

ScopedTelemetry::~ScopedTelemetry() {
  t_current.tracer = saved_tracer_;
  t_current.metrics = saved_metrics_;
}

}  // namespace kanon
