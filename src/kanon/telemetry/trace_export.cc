#include "kanon/telemetry/trace_export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace kanon {

namespace {

// Microsecond timestamps with sub-microsecond precision preserved.
std::string FormatMicros(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

Status WriteText(const std::string& text, const std::string& path,
                 const char* what) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return Status::OK();
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(std::string("cannot open ") + what + " output: " +
                           path);
  }
  out << text;
  out.flush();
  if (!out) {
    return Status::IOError(std::string("short write to ") + what +
                           " output: " + path);
  }
  return Status::OK();
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const size_t lanes = tracer.num_lanes();
  // Metadata: name the process and each lane's trace thread.
  out << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"name\": \"process_name\", \"args\": {\"name\": \"kanon\"}}";
  first = false;
  for (size_t lane = 0; lane < lanes; ++lane) {
    out << ",\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << lane
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << (lane == 0 ? std::string("coordinator")
                      : "worker " + std::to_string(lane))
        << "\"}}";
  }
  for (size_t lane = 0; lane < lanes; ++lane) {
    for (const SpanEvent& event : tracer.lane_events(lane)) {
      out << (first ? "  " : ",\n  ");
      first = false;
      out << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << event.lane
          << ", \"name\": \"" << event.name << "\", \"cat\": \""
          << event.category
          << "\", \"ts\": " << FormatMicros(event.wall_begin_us)
          << ", \"dur\": "
          << FormatMicros(event.wall_end_us - event.wall_begin_us)
          << ", \"args\": {\"steps_begin\": " << event.steps_begin
          << ", \"steps_end\": " << event.steps_end
          << ", \"items\": " << event.items << ", \"depth\": " << event.depth
          << "}}";
    }
  }
  out << "\n]";
  if (tracer.dropped_spans() > 0) {
    out << ", \"kanonDroppedSpans\": " << tracer.dropped_spans();
  }
  out << "}\n";
  return out.str();
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteText(ChromeTraceJson(tracer), path, "trace");
}

Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path) {
  return WriteText(metrics.ToJson(/*include_nondeterministic=*/true), path,
                   "metrics");
}

}  // namespace kanon
