#include "kanon/telemetry/rolling.h"

#include <algorithm>
#include <cmath>

#include "kanon/telemetry/metrics.h"

namespace kanon {

RollingHistogram::RollingHistogram(std::vector<double> bounds,
                                   double window_seconds, size_t num_slots)
    : bounds_(std::move(bounds)),
      slot_width_(window_seconds /
                  static_cast<double>(std::max<size_t>(1, num_slots))),
      start_(std::chrono::steady_clock::now()),
      slots_(std::max<size_t>(1, num_slots)) {
  for (Slot& slot : slots_) slot.counts.assign(bounds_.size() + 1, 0);
}

double RollingHistogram::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void RollingHistogram::Observe(double value) { ObserveAt(value, NowSeconds()); }

void RollingHistogram::ObserveAt(double value, double now_seconds) {
  if (std::isnan(value) || value < 0.0) {
    if (bad_samples_ != nullptr) bad_samples_->Add();
    value = 0.0;
  }
  const int64_t epoch =
      static_cast<int64_t>(std::floor(std::max(0.0, now_seconds) /
                                      slot_width_));
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = SlotFor(epoch);
  ++slot.counts[bucket];
  ++slot.count;
  slot.sum += value;
}

RollingHistogram::Slot& RollingHistogram::SlotFor(int64_t epoch) {
  Slot& slot = slots_[static_cast<size_t>(epoch) % slots_.size()];
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    std::fill(slot.counts.begin(), slot.counts.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
  }
  return slot;
}

RollingHistogram::Snapshot RollingHistogram::Snap() const {
  return SnapAt(NowSeconds());
}

RollingHistogram::Snapshot RollingHistogram::SnapAt(double now_seconds) const {
  const int64_t epoch =
      static_cast<int64_t>(std::floor(std::max(0.0, now_seconds) /
                                      slot_width_));
  const int64_t oldest = epoch - static_cast<int64_t>(slots_.size()) + 1;
  Snapshot out;
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& slot : slots_) {
      if (slot.epoch < oldest || slot.epoch > epoch) continue;
      for (size_t i = 0; i < merged.size(); ++i) merged[i] += slot.counts[i];
      out.count += slot.count;
      out.sum += slot.sum;
    }
  }
  out.p50 = QuantileFromCounts(merged, bounds_, out.count, 0.50);
  out.p95 = QuantileFromCounts(merged, bounds_, out.count, 0.95);
  out.p99 = QuantileFromCounts(merged, bounds_, out.count, 0.99);
  return out;
}

double RollingHistogram::QuantileFromCounts(
    const std::vector<uint64_t>& counts, const std::vector<double>& bounds,
    uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // The overflow bucket has no finite upper bound; clamp to the last
      // finite one so the estimate stays a number a dashboard can plot.
      return i < bounds.size() ? bounds[i]
                               : (bounds.empty() ? 0.0 : bounds.back());
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace kanon
