#include "kanon/telemetry/progress.h"

namespace kanon {

void ProgressReporter::Report(const RunProgress& progress) {
  last_stage_ = progress.stage;
  last_steps_ = progress.steps;
  if (last_emit_seconds_ >= 0.0 &&
      progress.elapsed_seconds - last_emit_seconds_ < min_interval_seconds_) {
    return;
  }
  last_emit_seconds_ = progress.elapsed_seconds;
  emitted_ = true;
  std::fprintf(stream_, "\r[%8.2fs] %-32s %12zu steps",
               progress.elapsed_seconds, progress.stage, progress.steps);
  std::fflush(stream_);
}

std::string ProgressReporter::Finish() {
  if (emitted_) {
    std::fputc('\n', stream_);
    std::fflush(stream_);
    emitted_ = false;
  }
  return last_stage_;
}

}  // namespace kanon
