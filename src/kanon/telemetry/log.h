#ifndef KANON_TELEMETRY_LOG_H_
#define KANON_TELEMETRY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "kanon/common/result.h"
#include "kanon/common/status.h"

namespace kanon {

class FlightRecorder;

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);
/// "debug" / "info" / "warn" / "error"; false on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// One key/value field of a structured log record. Keys must be string
/// literals (they are not copied); values are typed so numbers land in
/// the JSON as numbers, not strings.
struct LogField {
  enum class Kind { kStr, kInt, kUint, kDouble, kBool };

  const char* key = "";
  Kind kind = Kind::kStr;
  std::string str;
  int64_t i64 = 0;
  uint64_t u64 = 0;
  double f64 = 0.0;
  bool b = false;

  static LogField Str(const char* key, std::string value);
  static LogField Int(const char* key, int64_t value);
  static LogField U64(const char* key, uint64_t value);
  static LogField Dbl(const char* key, double value);
  static LogField Bool(const char* key, bool value);
};

/// A leveled JSON-lines logger: one record per line, shaped
///
///   {"ts":1754700000.123,"level":"info","event":"job.admitted","job_id":3}
///
/// Disabled logging is simply a null Logger* — the KANON_LOG_EVENT macro
/// (and LogEvent()) check the pointer and the level before any field is
/// rendered, so a silent daemon pays one branch per call site, exactly
/// like the tracer's null sink.
///
/// A token-bucket rate limit (Options::rate_limit_per_sec) bounds the
/// write amplification of an event storm: past the budget, records are
/// dropped and counted, and the next admitted record is preceded by one
/// "log.rate_limited" summary naming how many were lost.
class Logger {
 public:
  struct Options {
    LogLevel min_level = LogLevel::kInfo;
    /// 0 = unlimited. Applies to admitted records across all levels.
    double rate_limit_per_sec = 0.0;
    /// Bucket depth; 0 picks 2x the rate (min 16).
    double burst = 0.0;
  };

  /// `target` is a file path (opened append) or "stderr".
  static Result<std::unique_ptr<Logger>> Open(const std::string& target,
                                              const Options& options);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  bool ShouldLog(LogLevel level) const {
    return level >= options_.min_level;
  }

  /// Renders and writes one record (subject to the rate limit).
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  /// Writes an already-rendered line (no trailing newline), subject to
  /// the rate limit. The seam LogEvent() uses so one render feeds both
  /// the log and the flight recorder.
  void WriteLine(std::string_view line);

  /// Records dropped by the rate limiter so far.
  uint64_t dropped() const;

 private:
  Logger(std::FILE* stream, bool owns_stream, const Options& options);

  const Options options_;
  std::FILE* const stream_;
  const bool owns_stream_;

  mutable std::mutex mu_;
  double tokens_;
  double last_refill_seconds_;
  uint64_t dropped_total_ = 0;
  uint64_t dropped_pending_ = 0;
};

namespace log_internal {
/// Renders one JSON-lines record (no trailing newline). `ts_unix` is
/// seconds since the Unix epoch.
std::string RenderLine(double ts_unix, LogLevel level, std::string_view event,
                       const LogField* fields, size_t num_fields);
double NowUnixSeconds();
}  // namespace log_internal

/// Renders once, then fans out: the flight recorder gets every event
/// (its ring is the post-mortem record and must not depend on the log
/// level), the logger gets those that pass its level and rate limit.
/// Either sink may be null.
void LogEvent(Logger* logger, FlightRecorder* flight, LogLevel level,
              std::string_view event, std::initializer_list<LogField> fields);

/// The call-site form: evaluates the fields only when some sink wants
/// the event, so disabled observability costs two pointer tests.
#define KANON_LOG_EVENT(logger, flight, level, event, ...)               \
  do {                                                                   \
    ::kanon::Logger* kanon_log_logger = (logger);                        \
    ::kanon::FlightRecorder* kanon_log_flight = (flight);                \
    if ((kanon_log_logger != nullptr &&                                  \
         kanon_log_logger->ShouldLog(level)) ||                          \
        kanon_log_flight != nullptr) {                                   \
      ::kanon::LogEvent(kanon_log_logger, kanon_log_flight, (level),     \
                        (event), {__VA_ARGS__});                         \
    }                                                                    \
  } while (0)

}  // namespace kanon

#endif  // KANON_TELEMETRY_LOG_H_
