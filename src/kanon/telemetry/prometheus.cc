#include "kanon/telemetry/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/rolling.h"

namespace kanon {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's
/// dotted convention maps dots (and anything else illegal) to '_'.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    out.push_back(alpha || (digit && i > 0) ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (value == static_cast<long long>(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  // Shortest representation that round-trips: bucket bounds like 0.1 must
  // render as "0.1", not "0.10000000000000001" — a scrape-side label is an
  // identity, and %.17g would make every scrape's le= labels unreadable.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

/// Label values: backslash, double-quote and newline are escaped.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out.append("\\\\");
    } else if (c == '"') {
      out.append("\\\"");
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendHeader(std::string* out, const std::string& family,
                  const char* type, const std::string& original) {
  out->append("# HELP " + family + " kanon " + type + " " + original + "\n");
  out->append("# TYPE " + family + " " + type + "\n");
}

}  // namespace

std::string WritePrometheusText(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);

  for (const auto& [name, counter] : registry.CountersSnapshot()) {
    const std::string family = SanitizeName(name) + "_total";
    AppendHeader(&out, family, "counter", name);
    out.append(family + " " + std::to_string(counter->value()) + "\n");
  }

  for (const auto& [name, gauge] : registry.GaugesSnapshot()) {
    const std::string family = SanitizeName(name);
    AppendHeader(&out, family, "gauge", name);
    out.append(family + " " + FormatValue(gauge->value()) + "\n");
  }

  for (const auto& [name, histogram] : registry.HistogramsSnapshot()) {
    const std::string family = SanitizeName(name);
    AppendHeader(&out, family, "histogram", name);
    const std::vector<double>& bounds = histogram->bounds();
    const std::vector<uint64_t> counts = histogram->bucket_counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out.append(family + "_bucket{le=\"" + FormatValue(bounds[i]) + "\"} " +
                 std::to_string(cumulative) + "\n");
    }
    out.append(family + "_bucket{le=\"+Inf\"} " +
               std::to_string(histogram->count()) + "\n");
    out.append(family + "_sum " + FormatValue(histogram->sum()) + "\n");
    out.append(family + "_count " + std::to_string(histogram->count()) +
               "\n");
  }

  for (const auto& [name, rolling] : registry.RollingSnapshot()) {
    const std::string family = SanitizeName(name);
    const RollingHistogram::Snapshot snap = rolling->Snap();
    char help[64];
    std::snprintf(help, sizeof(help), "rolling window (%gs)",
                  rolling->window_seconds());
    out.append("# HELP " + family + " kanon " + help + " " + name + "\n");
    out.append("# TYPE " + family + " summary\n");
    out.append(family + "{quantile=\"0.5\"} " + FormatValue(snap.p50) + "\n");
    out.append(family + "{quantile=\"0.95\"} " + FormatValue(snap.p95) +
               "\n");
    out.append(family + "{quantile=\"0.99\"} " + FormatValue(snap.p99) +
               "\n");
    out.append(family + "_sum " + FormatValue(snap.sum) + "\n");
    out.append(family + "_count " + std::to_string(snap.count) + "\n");
  }

  for (const auto& [name, labels] : registry.InfosSnapshot()) {
    const std::string family = SanitizeName(name);
    // Info metrics follow the build_info convention: a constant-1 gauge
    // carrying its payload in labels ("info" is not a 0.0.4 type).
    AppendHeader(&out, family, "gauge", name);
    out.append(family);
    if (!labels.empty()) {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : labels) {
        if (!first) out.push_back(',');
        first = false;
        out.append(SanitizeName(key) + "=\"" + EscapeLabelValue(value) +
                   "\"");
      }
      out.push_back('}');
    }
    out.append(" 1\n");
  }

  return out;
}

}  // namespace kanon
