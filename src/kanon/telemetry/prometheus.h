#ifndef KANON_TELEMETRY_PROMETHEUS_H_
#define KANON_TELEMETRY_PROMETHEUS_H_

#include <string>

namespace kanon {

class MetricsRegistry;

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): counters as `<name>_total`, gauges verbatim,
/// histograms with *cumulative* `_bucket{le=...}` series (the registry
/// stores per-bucket counts; Prometheus wants running totals) plus
/// `_sum`/`_count`, rolling histograms as summaries with
/// `quantile="0.5|0.95|0.99"` labels, and info metrics as the
/// conventional `name{labels} 1` constant. Dotted metric names are
/// sanitized (`serve.requests` -> `serve_requests`); every family gets
/// `# HELP` and `# TYPE` lines.
std::string WritePrometheusText(const MetricsRegistry& registry);

}  // namespace kanon

#endif  // KANON_TELEMETRY_PROMETHEUS_H_
