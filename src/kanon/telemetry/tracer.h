#ifndef KANON_TELEMETRY_TRACER_H_
#define KANON_TELEMETRY_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace kanon {

class MetricsRegistry;

/// One finished phase scope. `name` and `category` must be string literals
/// (or otherwise outlive the tracer): spans are recorded on hot paths and
/// never copy their labels.
///
/// Determinism contract (docs/observability.md): on lane 0 — the run's
/// coordinating thread — the sequence of (name, category, depth,
/// steps_begin, steps_end, items) tuples is a pure function of the input
/// and the configuration, identical at every --threads value. Only the
/// wall-clock fields (wall_begin_us, wall_end_us) may differ between runs.
/// Spans on worker lanes (lane >= 1) carry no such guarantee: which pool
/// worker claims which chunks is scheduling-dependent.
struct SpanEvent {
  const char* name = "";
  const char* category = "phase";  // "phase", "sweep", or "worker".
  uint32_t lane = 0;               // 0 = coordinating thread.
  uint32_t depth = 0;              // Nesting depth on the opening thread.
  uint64_t steps_begin = 0;        // Deterministic step clock at open.
  uint64_t steps_end = 0;          // ... and at close.
  uint64_t items = 0;              // Optional payload size (e.g. chunks).
  double wall_begin_us = 0.0;      // Wall clock, microseconds since the
  double wall_end_us = 0.0;        // tracer was constructed. NOT deterministic.
};

/// Collects phase-scoped spans from one anonymization run, with one lane
/// per participating thread. Disabled tracing is simply a null Tracer*:
/// every recording entry point (PhaseSpan, CurrentTracer()) is a no-op —
/// no allocation, no lock, one predictable branch.
///
/// Recording (PhaseSpan open/close, AdvanceSteps) is thread-safe; the
/// read accessors (lanes(), lane_events()) must only be called after the
/// traced run finished.
class Tracer {
 public:
  /// `max_spans` bounds memory: spans past the cap are counted in
  /// dropped_spans() instead of stored.
  explicit Tracer(size_t max_spans = kDefaultMaxSpans);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The deterministic step clock. It advances only on lane 0: one tick
  /// per span open, one per close, plus explicit AdvanceSteps() calls from
  /// engine code at points that are pure functions of the input (e.g. one
  /// tick per parallel chunk issued — chunk geometry never depends on the
  /// thread count). Worker lanes snapshot the clock without advancing it.
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  void AdvanceSteps(uint64_t n) {
    steps_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Microseconds since construction (wall clock; not deterministic).
  double NowMicros() const;

  /// Lane of the calling thread, assigned on first use: the thread that
  /// constructed the tracer is lane 0.
  uint32_t ThisThreadLane();

  /// Appends a finished span to its lane. Thread-safe.
  void Record(const SpanEvent& event);

  /// Number of lanes that recorded at least one span (or were registered).
  size_t num_lanes() const;
  /// Spans of one lane, in close order. Run must be finished.
  const std::vector<SpanEvent>& lane_events(size_t lane) const;
  /// Total spans stored across lanes.
  size_t total_spans() const;
  size_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  uint64_t id() const { return id_; }

 private:
  static constexpr size_t kDefaultMaxSpans = 1u << 20;

  const uint64_t id_;  // Process-unique; keys the thread-local lane cache.
  const size_t max_spans_;
  std::atomic<uint64_t> steps_{0};
  std::atomic<size_t> dropped_{0};
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::vector<std::thread::id> lane_threads_;
  std::vector<std::vector<SpanEvent>> lanes_;
  size_t stored_ = 0;
};

/// RAII phase scope. A null tracer makes every member a no-op, so
/// instrumented code needs no branches of its own:
///
///   PhaseSpan span(CurrentTracer(), "agglomerative/init");
///
/// Opening reads the clocks; closing (the destructor) records the span.
/// On lane 0 the step clock ticks once at open and once at close, which
/// makes the lane-0 step values a deterministic structural clock.
class PhaseSpan {
 public:
  PhaseSpan(Tracer* tracer, const char* name, const char* category = "phase");
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Optional payload recorded with the span (e.g. chunks swept).
  void set_items(uint64_t items) { event_.items = items; }
  /// Suppresses recording (used for zero-work worker participations).
  void Cancel() { tracer_ = nullptr; }

 private:
  Tracer* tracer_;
  SpanEvent event_;
};

/// The telemetry sinks installed for the current run, read through
/// thread-local pointers so instrumented code deep in the engines (and the
/// parallel sweep issuer) needs no plumbed-through arguments. Both are null
/// unless a ScopedTelemetry is live on this thread.
Tracer* CurrentTracer();
MetricsRegistry* CurrentMetrics();

/// Installs tracer/metrics as the calling thread's current telemetry for
/// the scope's lifetime (saving and restoring whatever was installed
/// before). Install on the thread that owns the run; parallel sweeps
/// propagate the tracer to their pool workers by hand.
class ScopedTelemetry {
 public:
  ScopedTelemetry(Tracer* tracer, MetricsRegistry* metrics);
  ~ScopedTelemetry();

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Tracer* saved_tracer_;
  MetricsRegistry* saved_metrics_;
};

}  // namespace kanon

#endif  // KANON_TELEMETRY_TRACER_H_
