#ifndef KANON_TELEMETRY_FLIGHT_RECORDER_H_
#define KANON_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kanon {

/// A fixed-capacity ring of recent structured events (pre-rendered JSON
/// lines): the last seconds of a daemon's life, kept in memory at all
/// times so a fatal signal can dump them for the post-mortem and a live
/// `flight_recorder` query can read them without touching disk.
///
/// The ring is lock-free by construction — writers claim a slot with one
/// fetch_add and publish it seqlock-style — because the dump path runs
/// inside a fatal-signal handler where taking a mutex (possibly held by
/// the crashing thread) would deadlock. DumpToFd() uses only write(2),
/// atomic loads, and stack memory, so it is safe to call from the
/// handler; a line being written concurrently with the crash is skipped
/// rather than emitted torn.
class FlightRecorder {
 public:
  /// Longest stored line; longer records are replaced by a short marker
  /// so every stored line stays valid JSON.
  static constexpr size_t kMaxLineBytes = 704;

  explicit FlightRecorder(size_t capacity = 512);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stores one pre-rendered JSON line (no trailing newline).
  void RecordLine(std::string_view line);

  /// The currently held lines, oldest first. Lines mid-write are skipped.
  std::vector<std::string> Snapshot() const;

  uint64_t total_recorded() const {
    return next_.load(std::memory_order_acquire);
  }
  size_t capacity() const { return slots_.size(); }

  /// Writes every held line + '\n' to `fd`, oldest first. Async-signal-safe:
  /// write(2), atomic loads, no allocation, no locks.
  void DumpToFd(int fd) const;

  /// Installs a handler for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT that dumps
  /// `recorder` to `path` (plus a final crash.signal line), restores the
  /// default disposition, and re-raises — so the process still dies with
  /// the original signal and exit status. One recorder/path per process;
  /// a second call replaces the first.
  static void InstallCrashHandler(FlightRecorder* recorder,
                                  const std::string& path);

 private:
  struct Slot {
    /// 0 = empty; otherwise 1 + the logical sequence number it holds.
    /// Cleared before the payload is written and set (release) after, so
    /// readers can detect and skip torn lines.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> len{0};
    char data[kMaxLineBytes];
  };

  std::atomic<uint64_t> next_{0};
  std::vector<Slot> slots_;
};

}  // namespace kanon

#endif  // KANON_TELEMETRY_FLIGHT_RECORDER_H_
