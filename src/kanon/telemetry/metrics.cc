#include "kanon/telemetry/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace kanon {

namespace {

// Shortest round-trip-ish formatting that is identical for identical
// doubles, with integral values printed without an exponent or trailing
// zeros ("4" not "4.000000"). Used for both gauge values and histogram
// bounds, so deterministic metrics fingerprint byte-identically.
std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == static_cast<long long>(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendQuoted(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds, bool deterministic)
    : bounds_(std::move(bounds)),
      deterministic_(deterministic),
      counts_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  if (std::isnan(value) || value < 0.0) {
    // Durations only: a NaN or negative sample is a caller bug (backwards
    // clock, bad subtraction) that would permanently corrupt count/sum.
    // Clamp and account for it instead of recording garbage.
    if (bad_samples_ != nullptr) bad_samples_->Add();
    value = 0.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  size_t bucket = bounds_.size();  // Overflow bucket by default.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

Counter* MetricsRegistry::CounterLocked(const std::string& name,
                                        bool deterministic) {
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(deterministic);
  return slot.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  return CounterLocked(name, deterministic);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(deterministic);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds), deterministic);
    // Nondeterministic so its (wall-clock-provoked) count never enters a
    // ToJson(false) fingerprint. CounterLocked, not GetCounter: mu_ is held.
    slot->bad_samples_ =
        CounterLocked("telemetry.bad_samples", /*deterministic=*/false);
  }
  return slot.get();
}

RollingHistogram* MetricsRegistry::GetRollingHistogram(
    const std::string& name, std::vector<double> bounds,
    double window_seconds, size_t num_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<RollingHistogram>& slot = rolling_[name];
  if (slot == nullptr) {
    slot = std::make_unique<RollingHistogram>(std::move(bounds),
                                              window_seconds, num_slots);
    slot->set_bad_samples_counter(
        CounterLocked("telemetry.bad_samples", /*deterministic=*/false));
  }
  return slot.get();
}

void MetricsRegistry::SetInfo(const std::string& name, InfoLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  infos_[name] = std::move(labels);
}

std::vector<std::pair<std::string, Counter*>>
MetricsRegistry::CountersSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, Gauge*>> MetricsRegistry::GaugesSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge.get());
  return out;
}

std::vector<std::pair<std::string, Histogram*>>
MetricsRegistry::HistogramsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

std::vector<std::pair<std::string, RollingHistogram*>>
MetricsRegistry::RollingSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, RollingHistogram*>> out;
  out.reserve(rolling_.size());
  for (const auto& [name, rolling] : rolling_) {
    out.emplace_back(name, rolling.get());
  }
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::InfoLabels>>
MetricsRegistry::InfosSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, InfoLabels>> out;
  out.reserve(infos_.size());
  for (const auto& [name, labels] : infos_) out.emplace_back(name, labels);
  return out;
}

std::string MetricsRegistry::ToJson(bool include_nondeterministic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!include_nondeterministic && !counter->deterministic()) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": " << counter->value();
  }
  out << (first ? "}" : "\n  }");
  out << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!include_nondeterministic && !gauge->deterministic()) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": " << FormatDouble(gauge->value());
  }
  out << (first ? "}" : "\n  }");
  out << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!include_nondeterministic && !histogram->deterministic()) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": {\"count\": " << histogram->count()
        << ", \"sum\": " << FormatDouble(histogram->sum())
        << ", \"buckets\": [";
    const std::vector<double>& bounds = histogram->bounds();
    const std::vector<uint64_t> counts = histogram->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < bounds.size()) {
        out << FormatDouble(bounds[i]);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << counts[i] << "}";
    }
    out << "]}";
  }
  out << (first ? "}" : "\n  }");
  if (include_nondeterministic) {
    // Wall-clock-derived sections: never part of the deterministic
    // fingerprint, so they only exist in the full snapshot.
    out << ",\n  \"rolling\": {";
    first = true;
    for (const auto& [name, rolling] : rolling_) {
      const RollingHistogram::Snapshot snap = rolling->Snap();
      out << (first ? "\n    " : ",\n    ");
      first = false;
      AppendQuoted(out, name);
      out << ": {\"window_seconds\": " << FormatDouble(rolling->window_seconds())
          << ", \"count\": " << snap.count
          << ", \"sum\": " << FormatDouble(snap.sum)
          << ", \"p50\": " << FormatDouble(snap.p50)
          << ", \"p95\": " << FormatDouble(snap.p95)
          << ", \"p99\": " << FormatDouble(snap.p99) << "}";
    }
    out << (first ? "}" : "\n  }");
    out << ",\n  \"info\": {";
    first = true;
    for (const auto& [name, labels] : infos_) {
      out << (first ? "\n    " : ",\n    ");
      first = false;
      AppendQuoted(out, name);
      out << ": {";
      bool first_label = true;
      for (const auto& [key, value] : labels) {
        if (!first_label) out << ", ";
        first_label = false;
        AppendQuoted(out, key);
        out << ": ";
        AppendQuoted(out, value);
      }
      out << "}";
    }
    out << (first ? "}" : "\n  }");
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace kanon
