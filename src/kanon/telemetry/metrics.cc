#include "kanon/telemetry/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace kanon {

namespace {

// Shortest round-trip-ish formatting that is identical for identical
// doubles, with integral values printed without an exponent or trailing
// zeros ("4" not "4.000000"). Used for both gauge values and histogram
// bounds, so deterministic metrics fingerprint byte-identically.
std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == static_cast<long long>(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendQuoted(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds, bool deterministic)
    : bounds_(std::move(bounds)),
      deterministic_(deterministic),
      counts_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bucket = bounds_.size();  // Overflow bucket by default.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(deterministic);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(deterministic);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds), deterministic);
  }
  return slot.get();
}

std::string MetricsRegistry::ToJson(bool include_nondeterministic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!include_nondeterministic && !counter->deterministic()) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": " << counter->value();
  }
  out << (first ? "}" : "\n  }");
  out << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!include_nondeterministic && !gauge->deterministic()) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": " << FormatDouble(gauge->value());
  }
  out << (first ? "}" : "\n  }");
  out << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!include_nondeterministic && !histogram->deterministic()) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": {\"count\": " << histogram->count()
        << ", \"sum\": " << FormatDouble(histogram->sum())
        << ", \"buckets\": [";
    const std::vector<double>& bounds = histogram->bounds();
    const std::vector<uint64_t> counts = histogram->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < bounds.size()) {
        out << FormatDouble(bounds[i]);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << counts[i] << "}";
    }
    out << "]}";
  }
  out << (first ? "}" : "\n  }");
  out << "\n}\n";
  return out.str();
}

}  // namespace kanon
