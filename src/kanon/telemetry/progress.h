#ifndef KANON_TELEMETRY_PROGRESS_H_
#define KANON_TELEMETRY_PROGRESS_H_

#include <cstdio>
#include <functional>
#include <string>

#include "kanon/common/run_context.h"

namespace kanon {

/// A throttled stderr progress line fed by the RunContext progress
/// observer. Install with:
///
///   ProgressReporter reporter;
///   ctx.set_progress_observer(reporter.AsObserver());
///
/// Emission is wall-clock throttled (default: at most one line per 200 ms)
/// on top of the observer's own step interval, so tight runs stay quiet
/// and long runs show steady movement. Finish() terminates the line and
/// reports the last stage seen, which is exactly the stage a deadline or
/// budget stop landed in.
class ProgressReporter {
 public:
  explicit ProgressReporter(FILE* stream = stderr,
                            double min_interval_seconds = 0.2)
      : stream_(stream), min_interval_seconds_(min_interval_seconds) {}

  /// The callback to hand to RunContext::set_progress_observer.
  std::function<void(const RunProgress&)> AsObserver() {
    return [this](const RunProgress& progress) { Report(progress); };
  }

  void Report(const RunProgress& progress);

  /// Ends the progress line (if any was printed) and returns the last
  /// stage observed ("" when the observer never fired).
  std::string Finish();

  const std::string& last_stage() const { return last_stage_; }

 private:
  FILE* stream_;
  const double min_interval_seconds_;
  double last_emit_seconds_ = -1.0;
  bool emitted_ = false;
  std::string last_stage_;
  size_t last_steps_ = 0;
};

}  // namespace kanon

#endif  // KANON_TELEMETRY_PROGRESS_H_
