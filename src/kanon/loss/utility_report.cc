#include "kanon/loss/utility_report.h"

#include <algorithm>

#include "kanon/common/check.h"
#include "kanon/common/text.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"
#include "kanon/loss/precomputed_loss.h"
#include "kanon/loss/suppression_measure.h"
#include "kanon/loss/table_metrics.h"

namespace kanon {

std::string UtilityReport::ToString() const {
  std::string out;
  out += "utility report (" + std::to_string(num_rows) + " rows)\n";
  out += "  loss: EM " + FormatDouble(entropy_loss, 3) + " bits/entry, LM " +
         FormatDouble(lm_loss, 3) + ", suppressed-entry fraction " +
         FormatDouble(suppression_loss, 3) + "\n";
  out += "  discernibility (DM): " + std::to_string(discernibility);
  if (classification >= 0.0) {
    out += ", classification (CM): " + FormatDouble(classification, 3);
  }
  out += "\n";
  out += "  groups: " + std::to_string(num_groups) + " (min size " +
         std::to_string(min_group_size) + ", avg " +
         FormatDouble(avg_group_size, 1) + ")\n";
  for (const AttributeStats& a : attributes) {
    out += "  " + a.name + ": avg set size " +
           FormatDouble(a.avg_set_size, 2) + ", exact " +
           FormatDouble(100.0 * a.exact_fraction, 0) + "%, suppressed " +
           FormatDouble(100.0 * a.suppressed_fraction, 0) + "%\n";
  }
  return out;
}

UtilityReport BuildUtilityReport(const Dataset& dataset,
                                 const GeneralizedTable& table) {
  KANON_CHECK(dataset.num_attributes() == table.num_attributes(),
              "dataset/table arity mismatch");
  const GeneralizationScheme& scheme = table.scheme();
  const size_t n = table.num_rows();
  const size_t r = table.num_attributes();

  UtilityReport report;
  report.num_rows = n;

  for (size_t j = 0; j < r; ++j) {
    const Hierarchy& h = scheme.hierarchy(j);
    UtilityReport::AttributeStats stats;
    stats.name = scheme.schema().attribute(j).name();
    size_t exact = 0;
    size_t suppressed = 0;
    double total_size = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const size_t size = h.SizeOf(table.at(i, j));
      total_size += static_cast<double>(size);
      if (size == 1) ++exact;
      if (size == h.domain_size()) ++suppressed;
    }
    if (n > 0) {
      stats.avg_set_size = total_size / static_cast<double>(n);
      stats.exact_fraction = static_cast<double>(exact) / n;
      stats.suppressed_fraction = static_cast<double>(suppressed) / n;
    }
    report.attributes.push_back(std::move(stats));
  }

  report.entropy_loss =
      PrecomputedLoss(table.scheme_ptr(), dataset, EntropyMeasure())
          .TableLoss(table);
  report.lm_loss = PrecomputedLoss(table.scheme_ptr(), dataset, LmMeasure())
                       .TableLoss(table);
  report.suppression_loss =
      PrecomputedLoss(table.scheme_ptr(), dataset, SuppressionMeasure())
          .TableLoss(table);
  report.discernibility = DiscernibilityMetric(table);
  report.classification = dataset.has_class_column()
                              ? ClassificationMetric(dataset, table)
                              : -1.0;

  const std::vector<size_t> sizes = GroupSizes(table);
  report.num_groups = sizes.size();
  report.min_group_size = sizes.empty() ? 0 : sizes.front();
  report.avg_group_size =
      sizes.empty() ? 0.0
                    : static_cast<double>(n) / static_cast<double>(sizes.size());
  return report;
}

}  // namespace kanon
