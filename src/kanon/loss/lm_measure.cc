#include "kanon/loss/lm_measure.h"

namespace kanon {

double LmMeasure::SetCost(const Hierarchy& h,
                          const std::vector<uint32_t>& counts,
                          SetId set) const {
  (void)counts;  // LM depends only on cardinalities.
  if (h.domain_size() <= 1) return 0.0;
  return static_cast<double>(h.SizeOf(set) - 1) /
         static_cast<double>(h.domain_size() - 1);
}

}  // namespace kanon
