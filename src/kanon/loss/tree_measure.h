#ifndef KANON_LOSS_TREE_MEASURE_H_
#define KANON_LOSS_TREE_MEASURE_H_

#include "kanon/loss/measure.h"

namespace kanon {

/// The tree measure of Aggarwal et al. [2,3], adapted to the subset model:
/// the cost of a subset B is its height in the containment order of the
/// permissible collection (the longest chain of permissible subsets from a
/// singleton up to B), normalized by the height of the full domain.
/// Singletons cost 0, full suppression costs 1.
///
/// For a hierarchy-tree collection this coincides with "level of the chosen
/// node / height of the tree", which is the original definition.
class TreeMeasure : public LossMeasure {
 public:
  std::string name() const override { return "TM"; }

  double SetCost(const Hierarchy& h, const std::vector<uint32_t>& counts,
                 SetId set) const override;
};

}  // namespace kanon

#endif  // KANON_LOSS_TREE_MEASURE_H_
