#ifndef KANON_LOSS_MEASURE_H_
#define KANON_LOSS_MEASURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/generalization/hierarchy.h"

namespace kanon {

/// An information-loss measure Π of the form (Section V-A.2)
///
///   Π(D, g(D)) = (1/n) Σ_i c(R̄_i),   c(R̄) = (1/r) Σ_j cost_j(R̄(j)),
///
/// defined by its per-entry cost: the price of publishing the permissible
/// subset `set` for an attribute whose hierarchy is `h` and whose empirical
/// value histogram in D is `counts`.
///
/// Implementations must be scale-free in n (they may only use count
/// *ratios*) and must return 0 for singletons.
class LossMeasure {
 public:
  virtual ~LossMeasure() = default;

  virtual std::string name() const = 0;

  virtual double SetCost(const Hierarchy& h,
                         const std::vector<uint32_t>& counts,
                         SetId set) const = 0;
};

}  // namespace kanon

#endif  // KANON_LOSS_MEASURE_H_
