#ifndef KANON_LOSS_KERNELS_H_
#define KANON_LOSS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "kanon/data/dataset.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// The columnar hot-path substrate: a (dataset, precomputed-loss) pair
/// re-bound as raw per-attribute tables — packed dataset columns, raw
/// leaf/join tables, flat cost rows — so the engines' O(n) inner sweeps are
/// linear scans over contiguous arrays instead of strided cell walks
/// through checked accessors.
///
/// Every sweep reproduces the arithmetic of the scalar loop it replaces
/// bit for bit: per output element the per-attribute terms are added in
/// ascending attribute order and divided (not multiplied by the inverse)
/// exactly like the row-major code did, so tables stay byte-identical.
///
/// Construction primes the dataset's attribute-major mirror, so build one
/// of these on the coordinating thread before fanning out workers.
class LossKernels {
 public:
  LossKernels(const Dataset& dataset, const PrecomputedLoss& loss);

  size_t num_rows() const { return n_; }
  size_t num_attributes() const { return attrs_.size(); }

  /// out[v] = d({R_u, R_v}) for every row v (out holds num_rows() doubles).
  /// out[u] is d({R_u}) — callers skip it at selection time. This is the
  /// forest nearest-neighbor scan and the agglomerative singleton distance
  /// phase (for singletons, d(A ∪ B) IS the pairwise closure cost).
  void PairCostSweep(uint32_t u, double* out) const;

  /// out[v] = c(closure + R_v) for every row v — the (k,1) sweeps' "cost of
  /// absorbing row v into this cluster closure" scan.
  void JoinedCostSweep(const GeneralizedRecord& closure, double* out) const;

  /// covered[v] = 1 iff `closure` is already consistent with R_v (the join
  /// with R_v changes nothing in any attribute), else 0.
  void CoverageSweep(const GeneralizedRecord& closure,
                     uint8_t* covered) const;

  /// Single-row joined cost c(closure + R_row) through the raw tables;
  /// identical arithmetic to the sweep.
  double JoinedCost(const GeneralizedRecord& closure, uint32_t row) const;

  /// d(A ∪ B) of two generalized records, attribute-wise through the raw
  /// join tables and the flat cost rows.
  double UnionCost(const GeneralizedRecord& a,
                   const GeneralizedRecord& b) const;

 private:
  struct AttrTables {
    const ValueCode* col;   // Packed dataset column, n entries.
    const SetId* leaf;      // value -> singleton id.
    const SetId* join;      // num_sets x num_sets, row-major.
    const double* costs;    // SetId -> per-entry cost.
    size_t num_sets;
  };

  std::vector<AttrTables> attrs_;
  size_t n_;
  double r_as_double_;  // Divisor; division order matches the scalar loops.
};

}  // namespace kanon

#endif  // KANON_LOSS_KERNELS_H_
