#include "kanon/loss/entropy_measure.h"

#include <cmath>

#include "kanon/common/check.h"

namespace kanon {

double EntropyMeasure::SetCost(const Hierarchy& h,
                               const std::vector<uint32_t>& counts,
                               SetId set) const {
  KANON_CHECK(counts.size() == h.domain_size(),
              "counts must have one entry per domain value");
  uint64_t total = 0;
  for (ValueCode v : h.set(set).Values()) {
    total += counts[v];
  }
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (ValueCode v : h.set(set).Values()) {
    if (counts[v] == 0) continue;
    const double p = static_cast<double>(counts[v]) /
                     static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace kanon
