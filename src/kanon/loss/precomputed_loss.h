#ifndef KANON_LOSS_PRECOMPUTED_LOSS_H_
#define KANON_LOSS_PRECOMPUTED_LOSS_H_

#include <memory>
#include <string>
#include <vector>

#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/measure.h"

namespace kanon {

/// A LossMeasure bound to a (scheme, dataset) pair with every per-entry cost
/// precomputed, so that the generalization cost c(R̄) of a record and the
/// information loss Π(D, g(D)) of a table are table lookups. This is the
/// object the anonymization algorithms evaluate millions of times.
///
/// The per-entry costs live in ONE contiguous buffer with per-attribute
/// offsets (not a vector of per-attribute vectors), so the hot loops walk a
/// flat array: attr_costs(j) hands kernels the raw row for attribute j.
class PrecomputedLoss {
 public:
  /// Precomputes cost[attr][set] = measure.SetCost(...) for every attribute
  /// and permissible subset. The measure is only used during construction.
  /// Each attribute's cost table fills across `num_threads` threads (<= 0:
  /// hardware concurrency); the tables are identical at every thread count.
  PrecomputedLoss(std::shared_ptr<const GeneralizationScheme> scheme,
                  const Dataset& dataset, const LossMeasure& measure,
                  int num_threads = 1);

  const GeneralizationScheme& scheme() const { return *scheme_; }
  std::shared_ptr<const GeneralizationScheme> scheme_ptr() const {
    return scheme_;
  }
  const std::string& measure_name() const { return measure_name_; }

  /// Per-entry cost of publishing subset `set` for attribute `attr`.
  double EntryCost(size_t attr, SetId set) const {
    KANON_DCHECK(attr + 1 < offsets_.size() &&
                 offsets_[attr] + set < offsets_[attr + 1]);
    return costs_[offsets_[attr] + set];
  }

  /// Raw cost row of attribute `attr`, indexed by SetId — what the batched
  /// kernels read instead of going through EntryCost per cell.
  const double* attr_costs(size_t attr) const {
    KANON_DCHECK(attr + 1 < offsets_.size());
    return costs_.data() + offsets_[attr];
  }

  /// 1 / r, the normalization every record-cost kernel applies.
  double inv_num_attributes() const { return inv_num_attributes_; }

  /// c(R̄) = (1/r) Σ_j cost_j(R̄(j)) — the generalization cost of a record.
  double RecordCost(const GeneralizedRecord& record) const {
    KANON_DCHECK(record.size() + 1 == offsets_.size());
    double total = 0.0;
    for (size_t j = 0; j < record.size(); ++j) {
      total += costs_[offsets_[j] + record[j]];
    }
    return total * inv_num_attributes_;
  }

  /// Batched RecordCost: out[i] = RecordCost(records[i]), identical
  /// arithmetic, one call. The agglomerative shrink/rescan paths and the
  /// leave-one-out closure joins price whole candidate sets through this.
  void RecordCostMany(const std::vector<GeneralizedRecord>& records,
                      std::vector<double>* out) const;

  /// Π(D, g(D)) = (1/n) Σ_i c(R̄_i) — the information loss of a table.
  double TableLoss(const GeneralizedTable& table) const;

  /// d(S): the generalization cost of the closure of a set of dataset rows
  /// (eq. (7)). Requires `rows` non-empty.
  double ClosureCost(const Dataset& dataset,
                     const std::vector<uint32_t>& rows) const;

  /// A copy whose attribute-j cost row is scaled by w_j·r/Σw, so that
  /// RecordCost computes the weight-normalized average Σ_j w_j·cost_j / Σw
  /// through the unchanged (1/r) kernels. The substrate of the
  /// weighted-attribute cluster policy (algo/policy_weighted.h): every
  /// pipeline prices clusters on the reweighted copy without knowing
  /// weights exist. Uniform power-of-two weights (1.0 included) give scale
  /// 1.0 exactly (bit-identical costs); doubling all weights leaves every
  /// scale bit-identical.
  /// Requires exactly one finite weight >= 0 per attribute with Σw > 0
  /// (checked, not a Status: callers validate user input first).
  PrecomputedLoss WithAttributeWeights(const std::vector<double>& weights) const;

 private:
  std::shared_ptr<const GeneralizationScheme> scheme_;
  std::string measure_name_;
  std::vector<double> costs_;     // Flat: attribute j's row starts at
  std::vector<size_t> offsets_;   // offsets_[j]; offsets_ has r+1 entries.
  double inv_num_attributes_;
};

}  // namespace kanon

#endif  // KANON_LOSS_PRECOMPUTED_LOSS_H_
