#ifndef KANON_LOSS_ENTROPY_MEASURE_H_
#define KANON_LOSS_ENTROPY_MEASURE_H_

#include "kanon/loss/measure.h"

namespace kanon {

/// The entropy measure Π_E of Definition 4.3 (from Gionis & Tassa, ESA'07):
/// the cost of publishing subset B for attribute j is the conditional
/// entropy H(X_j | B) = −Σ_{b∈B} Pr(b|B)·log2 Pr(b|B), where X_j is the
/// value of attribute j in a random record of D.
///
/// Values of B that do not occur in D contribute nothing; a subset whose
/// values never occur costs 0 (it reveals as much as the data contains).
class EntropyMeasure : public LossMeasure {
 public:
  std::string name() const override { return "EM"; }

  double SetCost(const Hierarchy& h, const std::vector<uint32_t>& counts,
                 SetId set) const override;
};

}  // namespace kanon

#endif  // KANON_LOSS_ENTROPY_MEASURE_H_
