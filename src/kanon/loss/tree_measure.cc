#include "kanon/loss/tree_measure.h"

#include <algorithm>

namespace kanon {

namespace {

// Longest chain of permissible subsets from a singleton up to each set.
// Set ids are sorted by cardinality, so a single forward pass suffices.
std::vector<int> Heights(const Hierarchy& h) {
  const size_t num = h.num_sets();
  std::vector<int> height(num, 0);
  for (size_t i = 0; i < num; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (h.SizeOf(static_cast<SetId>(j)) <
              h.SizeOf(static_cast<SetId>(i)) &&
          h.set(static_cast<SetId>(j))
              .IsSubsetOf(h.set(static_cast<SetId>(i)))) {
        height[i] = std::max(height[i], height[j] + 1);
      }
    }
  }
  return height;
}

}  // namespace

double TreeMeasure::SetCost(const Hierarchy& h,
                            const std::vector<uint32_t>& counts,
                            SetId set) const {
  (void)counts;  // The tree measure depends only on the hierarchy shape.
  const std::vector<int> height = Heights(h);
  const int full = height[h.FullSetId()];
  if (full == 0) return 0.0;  // Single-value domain: nothing to lose.
  return static_cast<double>(height[set]) / static_cast<double>(full);
}

}  // namespace kanon
