#ifndef KANON_LOSS_LM_MEASURE_H_
#define KANON_LOSS_LM_MEASURE_H_

#include "kanon/loss/measure.h"

namespace kanon {

/// The LM (Loss Metric) measure of Iyengar / Nergiz–Clifton (eq. (4)):
/// publishing subset B for an attribute with domain A costs
/// (|B| − 1) / (|A| − 1) — 0 for no generalization, 1 for suppression.
/// Attributes with a single value always cost 0.
class LmMeasure : public LossMeasure {
 public:
  std::string name() const override { return "LM"; }

  double SetCost(const Hierarchy& h, const std::vector<uint32_t>& counts,
                 SetId set) const override;
};

}  // namespace kanon

#endif  // KANON_LOSS_LM_MEASURE_H_
