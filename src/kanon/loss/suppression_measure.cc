#include "kanon/loss/suppression_measure.h"

namespace kanon {

double SuppressionMeasure::SetCost(const Hierarchy& h,
                                   const std::vector<uint32_t>& counts,
                                   SetId set) const {
  (void)counts;
  return h.SizeOf(set) > 1 ? 1.0 : 0.0;
}

}  // namespace kanon
