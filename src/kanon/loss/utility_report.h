#ifndef KANON_LOSS_UTILITY_REPORT_H_
#define KANON_LOSS_UTILITY_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// Everything a data owner wants to know about the utility of a published
/// generalization, in one pass: per-attribute generalization statistics,
/// the information loss under every built-in measure, and the group
/// structure.
struct UtilityReport {
  struct AttributeStats {
    std::string name;
    /// Average cardinality of the published subsets for this attribute.
    double avg_set_size = 0.0;
    /// Fraction of entries published exactly (singleton subsets).
    double exact_fraction = 0.0;
    /// Fraction of entries fully suppressed (the whole domain).
    double suppressed_fraction = 0.0;
  };

  size_t num_rows = 0;
  std::vector<AttributeStats> attributes;

  double entropy_loss = 0.0;      // Π_E, eq. (3).
  double lm_loss = 0.0;           // Π_LM, eq. (4).
  double suppression_loss = 0.0;  // Fraction of generalized entries.
  uint64_t discernibility = 0;    // DM.
  /// CM; negative when the dataset has no class column.
  double classification = -1.0;

  size_t num_groups = 0;       // Groups of identical generalized records.
  size_t min_group_size = 0;
  double avg_group_size = 0.0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Builds the report. `dataset` supplies the empirical distributions for
/// the entropy measure and the optional class column for CM.
UtilityReport BuildUtilityReport(const Dataset& dataset,
                                 const GeneralizedTable& table);

}  // namespace kanon

#endif  // KANON_LOSS_UTILITY_REPORT_H_
