#ifndef KANON_LOSS_TABLE_METRICS_H_
#define KANON_LOSS_TABLE_METRICS_H_

#include <cstdint>
#include <vector>

#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// Partitions the rows of a generalized table into groups of identical
/// generalized records (the anonymity groups of a k-anonymized table).
std::vector<std::vector<uint32_t>> GroupIdenticalRecords(
    const GeneralizedTable& table);

/// The discernibility metric DM of Bayardo & Agrawal: Σ_G |G|² over the
/// groups of identical generalized records. Lower is better; a table of n
/// distinct records scores n, a fully suppressed one scores n².
uint64_t DiscernibilityMetric(const GeneralizedTable& table);

/// The classification metric CM of Iyengar: the fraction of rows whose
/// class label differs from the majority class of their anonymity group.
/// Requires `dataset.has_class_column()` and equal row counts.
double ClassificationMetric(const Dataset& dataset,
                            const GeneralizedTable& table);

/// Sizes of the anonymity groups (sorted ascending) — handy for stats.
std::vector<size_t> GroupSizes(const GeneralizedTable& table);

}  // namespace kanon

#endif  // KANON_LOSS_TABLE_METRICS_H_
