#include "kanon/loss/table_metrics.h"

#include <algorithm>
#include <map>

#include "kanon/common/check.h"

namespace kanon {

std::vector<std::vector<uint32_t>> GroupIdenticalRecords(
    const GeneralizedTable& table) {
  std::map<GeneralizedRecord, std::vector<uint32_t>> groups;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    groups[table.record(i)].push_back(static_cast<uint32_t>(i));
  }
  std::vector<std::vector<uint32_t>> out;
  out.reserve(groups.size());
  for (auto& [record, rows] : groups) {
    out.push_back(std::move(rows));
  }
  return out;
}

uint64_t DiscernibilityMetric(const GeneralizedTable& table) {
  uint64_t total = 0;
  for (const auto& group : GroupIdenticalRecords(table)) {
    total += static_cast<uint64_t>(group.size()) * group.size();
  }
  return total;
}

double ClassificationMetric(const Dataset& dataset,
                            const GeneralizedTable& table) {
  KANON_CHECK(dataset.has_class_column(),
              "ClassificationMetric requires a class column");
  KANON_CHECK(dataset.num_rows() == table.num_rows(), "row count mismatch");
  if (dataset.num_rows() == 0) return 0.0;

  uint64_t penalties = 0;
  const size_t num_classes = dataset.class_domain().size();
  for (const auto& group : GroupIdenticalRecords(table)) {
    std::vector<uint32_t> class_counts(num_classes, 0);
    for (uint32_t row : group) {
      ++class_counts[dataset.class_of(row)];
    }
    const uint32_t majority =
        *std::max_element(class_counts.begin(), class_counts.end());
    penalties += group.size() - majority;
  }
  return static_cast<double>(penalties) /
         static_cast<double>(dataset.num_rows());
}

std::vector<size_t> GroupSizes(const GeneralizedTable& table) {
  std::vector<size_t> sizes;
  for (const auto& group : GroupIdenticalRecords(table)) {
    sizes.push_back(group.size());
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

}  // namespace kanon
