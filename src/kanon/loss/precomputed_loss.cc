#include "kanon/loss/precomputed_loss.h"

#include "kanon/common/check.h"
#include "kanon/common/parallel.h"

namespace kanon {

PrecomputedLoss::PrecomputedLoss(
    std::shared_ptr<const GeneralizationScheme> scheme, const Dataset& dataset,
    const LossMeasure& measure, int num_threads)
    : scheme_(std::move(scheme)), measure_name_(measure.name()) {
  KANON_CHECK(scheme_ != nullptr, "scheme must not be null");
  KANON_CHECK(dataset.num_attributes() == scheme_->num_attributes(),
              "dataset arity mismatch");
  const size_t r = scheme_->num_attributes();
  costs_.resize(r);
  for (size_t j = 0; j < r; ++j) {
    const Hierarchy& h = scheme_->hierarchy(j);
    const std::vector<uint32_t> counts = dataset.ValueCounts(j);
    costs_[j].resize(h.num_sets());
    // SetCost is a pure function of (hierarchy, counts, set): the table
    // fills set-wise across the worker threads, one disjoint slot each.
    ParallelFor(
        h.num_sets(), num_threads, nullptr, "loss/precompute",
        [&](size_t s) {
          costs_[j][s] = measure.SetCost(h, counts, static_cast<SetId>(s));
        },
        /*done=*/nullptr, /*serial_below=*/1024);
  }
  inv_num_attributes_ = 1.0 / static_cast<double>(r);
}

double PrecomputedLoss::TableLoss(const GeneralizedTable& table) const {
  KANON_CHECK(table.num_attributes() == scheme_->num_attributes(),
              "table arity mismatch");
  if (table.num_rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    double row_cost = 0.0;
    for (size_t j = 0; j < table.num_attributes(); ++j) {
      row_cost += costs_[j][table.at(i, j)];
    }
    total += row_cost;
  }
  return total * inv_num_attributes_ / static_cast<double>(table.num_rows());
}

double PrecomputedLoss::ClosureCost(const Dataset& dataset,
                                    const std::vector<uint32_t>& rows) const {
  return RecordCost(scheme_->ClosureOfRows(dataset, rows));
}

}  // namespace kanon
