#include "kanon/loss/precomputed_loss.h"

#include "kanon/common/check.h"
#include "kanon/common/parallel.h"

namespace kanon {

PrecomputedLoss::PrecomputedLoss(
    std::shared_ptr<const GeneralizationScheme> scheme, const Dataset& dataset,
    const LossMeasure& measure, int num_threads)
    : scheme_(std::move(scheme)), measure_name_(measure.name()) {
  KANON_CHECK(scheme_ != nullptr, "scheme must not be null");
  KANON_CHECK(dataset.num_attributes() == scheme_->num_attributes(),
              "dataset arity mismatch");
  const size_t r = scheme_->num_attributes();
  offsets_.resize(r + 1);
  offsets_[0] = 0;
  for (size_t j = 0; j < r; ++j) {
    offsets_[j + 1] = offsets_[j] + scheme_->hierarchy(j).num_sets();
  }
  costs_.resize(offsets_[r]);
  for (size_t j = 0; j < r; ++j) {
    const Hierarchy& h = scheme_->hierarchy(j);
    const std::vector<uint32_t> counts = dataset.ValueCounts(j);
    double* row = costs_.data() + offsets_[j];
    // SetCost is a pure function of (hierarchy, counts, set): the table
    // fills set-wise across the worker threads, one disjoint slot each.
    ParallelFor(
        h.num_sets(), num_threads, nullptr, "loss/precompute",
        [&](size_t s) {
          row[s] = measure.SetCost(h, counts, static_cast<SetId>(s));
        },
        /*done=*/nullptr, /*serial_below=*/1024);
  }
  inv_num_attributes_ = 1.0 / static_cast<double>(r);
}

void PrecomputedLoss::RecordCostMany(
    const std::vector<GeneralizedRecord>& records,
    std::vector<double>* out) const {
  out->resize(records.size());
  // Per-attribute row pointers hoisted once: the per-record stores into
  // `out` (a double*, which could alias costs_ as far as the compiler
  // knows) then never force a reload of the table pointers, and the inner
  // loop is one load-add per attribute. Same additions in the same order
  // as RecordCost.
  const size_t r = offsets_.size() - 1;
  const double inv_r = inv_num_attributes_;
  std::vector<const double*> rows(r);
  for (size_t j = 0; j < r; ++j) {
    rows[j] = costs_.data() + offsets_[j];
  }
  double* dst = out->data();
  for (size_t i = 0; i < records.size(); ++i) {
    const SetId* rec = records[i].data();
    KANON_DCHECK(records[i].size() == r);
    double total = 0.0;
    for (size_t j = 0; j < r; ++j) {
      total += rows[j][rec[j]];
    }
    dst[i] = total * inv_r;
  }
}

double PrecomputedLoss::TableLoss(const GeneralizedTable& table) const {
  KANON_CHECK(table.num_attributes() == scheme_->num_attributes(),
              "table arity mismatch");
  if (table.num_rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    double row_cost = 0.0;
    for (size_t j = 0; j < table.num_attributes(); ++j) {
      row_cost += costs_[offsets_[j] + table.at(i, j)];
    }
    total += row_cost;
  }
  return total * inv_num_attributes_ / static_cast<double>(table.num_rows());
}

double PrecomputedLoss::ClosureCost(const Dataset& dataset,
                                    const std::vector<uint32_t>& rows) const {
  return RecordCost(scheme_->ClosureOfRows(dataset, rows));
}

}  // namespace kanon
