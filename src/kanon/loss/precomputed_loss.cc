#include "kanon/loss/precomputed_loss.h"

#include <cmath>

#include "kanon/common/check.h"
#include "kanon/common/parallel.h"

namespace kanon {

PrecomputedLoss::PrecomputedLoss(
    std::shared_ptr<const GeneralizationScheme> scheme, const Dataset& dataset,
    const LossMeasure& measure, int num_threads)
    : scheme_(std::move(scheme)), measure_name_(measure.name()) {
  KANON_CHECK(scheme_ != nullptr, "scheme must not be null");
  KANON_CHECK(dataset.num_attributes() == scheme_->num_attributes(),
              "dataset arity mismatch");
  const size_t r = scheme_->num_attributes();
  offsets_.resize(r + 1);
  offsets_[0] = 0;
  for (size_t j = 0; j < r; ++j) {
    offsets_[j + 1] = offsets_[j] + scheme_->hierarchy(j).num_sets();
  }
  costs_.resize(offsets_[r]);
  for (size_t j = 0; j < r; ++j) {
    const Hierarchy& h = scheme_->hierarchy(j);
    const std::vector<uint32_t> counts = dataset.ValueCounts(j);
    double* row = costs_.data() + offsets_[j];
    // SetCost is a pure function of (hierarchy, counts, set): the table
    // fills set-wise across the worker threads, one disjoint slot each.
    ParallelFor(
        h.num_sets(), num_threads, nullptr, "loss/precompute",
        [&](size_t s) {
          row[s] = measure.SetCost(h, counts, static_cast<SetId>(s));
        },
        /*done=*/nullptr, /*serial_below=*/1024);
  }
  inv_num_attributes_ = 1.0 / static_cast<double>(r);
}

void PrecomputedLoss::RecordCostMany(
    const std::vector<GeneralizedRecord>& records,
    std::vector<double>* out) const {
  out->resize(records.size());
  // Raw base pointers hoisted once: the per-record stores into `out` (a
  // double*, which could alias costs_ as far as the compiler knows) never
  // force a reload of the table pointers, and the call allocates nothing.
  // Records are priced four at a time with independent accumulators — the
  // four load-add chains interleave in the pipeline instead of serializing
  // on one accumulator's add latency. Each record's own additions stay in
  // ascending-j order exactly as in RecordCost, so every result is
  // bit-identical to the scalar path.
  const size_t r = offsets_.size() - 1;
  const double inv_r = inv_num_attributes_;
  const double* const costs = costs_.data();
  const size_t* const offsets = offsets_.data();
  const size_t count = records.size();
  double* dst = out->data();
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const SetId* rec0 = records[i].data();
    const SetId* rec1 = records[i + 1].data();
    const SetId* rec2 = records[i + 2].data();
    const SetId* rec3 = records[i + 3].data();
    KANON_DCHECK(records[i].size() == r && records[i + 1].size() == r &&
                 records[i + 2].size() == r && records[i + 3].size() == r);
    double t0 = 0.0;
    double t1 = 0.0;
    double t2 = 0.0;
    double t3 = 0.0;
    for (size_t j = 0; j < r; ++j) {
      const double* const row = costs + offsets[j];
      t0 += row[rec0[j]];
      t1 += row[rec1[j]];
      t2 += row[rec2[j]];
      t3 += row[rec3[j]];
    }
    dst[i] = t0 * inv_r;
    dst[i + 1] = t1 * inv_r;
    dst[i + 2] = t2 * inv_r;
    dst[i + 3] = t3 * inv_r;
  }
  for (; i < count; ++i) {
    const SetId* rec = records[i].data();
    KANON_DCHECK(records[i].size() == r);
    double total = 0.0;
    for (size_t j = 0; j < r; ++j) {
      total += costs[offsets[j] + rec[j]];
    }
    dst[i] = total * inv_r;
  }
}

double PrecomputedLoss::TableLoss(const GeneralizedTable& table) const {
  KANON_CHECK(table.num_attributes() == scheme_->num_attributes(),
              "table arity mismatch");
  if (table.num_rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    double row_cost = 0.0;
    for (size_t j = 0; j < table.num_attributes(); ++j) {
      row_cost += costs_[offsets_[j] + table.at(i, j)];
    }
    total += row_cost;
  }
  return total * inv_num_attributes_ / static_cast<double>(table.num_rows());
}

double PrecomputedLoss::ClosureCost(const Dataset& dataset,
                                    const std::vector<uint32_t>& rows) const {
  return RecordCost(scheme_->ClosureOfRows(dataset, rows));
}

PrecomputedLoss PrecomputedLoss::WithAttributeWeights(
    const std::vector<double>& weights) const {
  const size_t r = offsets_.size() - 1;
  KANON_CHECK(weights.size() == r, "one weight per attribute");
  double sum = 0.0;
  for (double w : weights) {
    KANON_CHECK(std::isfinite(w) && w >= 0.0,
                "attribute weights must be finite and non-negative");
    sum += w;
  }
  KANON_CHECK(sum > 0.0, "attribute weights must not all be zero");
  PrecomputedLoss reweighted = *this;
  reweighted.measure_name_ = measure_name_ + "+attr-weights";
  const double r_over_sum = static_cast<double>(r) / sum;
  for (size_t j = 0; j < r; ++j) {
    // scale_j = w_j·r/Σw. For a uniform power-of-two weight (1.0 included)
    // the sum r·w, the quotient r/(r·w) = 1/w and the product w·(1/w) are
    // all exact, so the scale is exactly 1.0 and the copy prices records
    // bit-identically to *this. Doubling every weight doubles both w_j and
    // Σw exactly, leaving every scale bit-identical.
    const double scale = weights[j] * r_over_sum;
    double* row = reweighted.costs_.data() + offsets_[j];
    for (size_t s = offsets_[j]; s < offsets_[j + 1]; ++s) {
      row[s - offsets_[j]] *= scale;
    }
  }
  return reweighted;
}

}  // namespace kanon
