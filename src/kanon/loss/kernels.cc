#include "kanon/loss/kernels.h"

#include <algorithm>

#include "kanon/common/check.h"

namespace kanon {

LossKernels::LossKernels(const Dataset& dataset, const PrecomputedLoss& loss)
    : n_(dataset.num_rows()),
      r_as_double_(static_cast<double>(dataset.num_attributes())) {
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t r = dataset.num_attributes();
  KANON_CHECK(r == scheme.num_attributes(), "dataset/loss arity mismatch");
  attrs_.resize(r);
  for (size_t j = 0; j < r; ++j) {
    const Hierarchy& h = scheme.hierarchy(j);
    attrs_[j] = AttrTables{
        dataset.column(j),  // Primes the attribute-major mirror (first j).
        h.leaf_table(),
        h.join_table(),
        loss.attr_costs(j),
        h.num_sets(),
    };
  }
}

void LossKernels::PairCostSweep(uint32_t u, double* out) const {
  std::fill(out, out + n_, 0.0);
  for (const AttrTables& a : attrs_) {
    // Row of the join table anchored at u's singleton: one packed column
    // scan per attribute, gathering join-then-cost.
    const SetId* join_row =
        a.join + static_cast<size_t>(a.leaf[a.col[u]]) * a.num_sets;
    for (size_t v = 0; v < n_; ++v) {
      out[v] += a.costs[join_row[a.leaf[a.col[v]]]];
    }
  }
  for (size_t v = 0; v < n_; ++v) {
    out[v] /= r_as_double_;
  }
}

void LossKernels::JoinedCostSweep(const GeneralizedRecord& closure,
                                  double* out) const {
  KANON_DCHECK(closure.size() == attrs_.size());
  std::fill(out, out + n_, 0.0);
  for (size_t j = 0; j < attrs_.size(); ++j) {
    const AttrTables& a = attrs_[j];
    const SetId* join_row =
        a.join + static_cast<size_t>(closure[j]) * a.num_sets;
    for (size_t v = 0; v < n_; ++v) {
      out[v] += a.costs[join_row[a.leaf[a.col[v]]]];
    }
  }
  for (size_t v = 0; v < n_; ++v) {
    out[v] /= r_as_double_;
  }
}

void LossKernels::CoverageSweep(const GeneralizedRecord& closure,
                                uint8_t* covered) const {
  KANON_DCHECK(closure.size() == attrs_.size());
  std::fill(covered, covered + n_, uint8_t{1});
  for (size_t j = 0; j < attrs_.size(); ++j) {
    const AttrTables& a = attrs_[j];
    const SetId cj = closure[j];
    const SetId* join_row = a.join + static_cast<size_t>(cj) * a.num_sets;
    // R_v ∈ closure[j] iff joining changes nothing (lattice containment).
    for (size_t v = 0; v < n_; ++v) {
      covered[v] &= static_cast<uint8_t>(join_row[a.leaf[a.col[v]]] == cj);
    }
  }
}

double LossKernels::JoinedCost(const GeneralizedRecord& closure,
                               uint32_t row) const {
  KANON_DCHECK(closure.size() == attrs_.size());
  double total = 0.0;
  for (size_t j = 0; j < attrs_.size(); ++j) {
    const AttrTables& a = attrs_[j];
    total += a.costs[a.join[static_cast<size_t>(closure[j]) * a.num_sets +
                            a.leaf[a.col[row]]]];
  }
  return total / r_as_double_;
}

double LossKernels::UnionCost(const GeneralizedRecord& a,
                              const GeneralizedRecord& b) const {
  KANON_DCHECK(a.size() == attrs_.size() && b.size() == attrs_.size());
  double total = 0.0;
  for (size_t j = 0; j < attrs_.size(); ++j) {
    const AttrTables& t = attrs_[j];
    total += t.costs[t.join[static_cast<size_t>(a[j]) * t.num_sets + b[j]]];
  }
  return total / r_as_double_;
}

}  // namespace kanon
