#ifndef KANON_LOSS_SUPPRESSION_MEASURE_H_
#define KANON_LOSS_SUPPRESSION_MEASURE_H_

#include "kanon/loss/measure.h"

namespace kanon {

/// The measure of Meyerson & Williams [16]: a table entry costs 1 when it
/// is generalized at all (in their model, suppressed) and 0 when it is
/// published exactly. Π then equals the fraction of generalized entries.
///
/// In the suppression-only model this is exactly their objective; with
/// richer hierarchies it counts every non-singleton entry as a
/// suppression, which upper-bounds their cost.
class SuppressionMeasure : public LossMeasure {
 public:
  std::string name() const override { return "SUP"; }

  double SetCost(const Hierarchy& h, const std::vector<uint32_t>& counts,
                 SetId set) const override;
};

}  // namespace kanon

#endif  // KANON_LOSS_SUPPRESSION_MEASURE_H_
