#include "kanon/graph/matchable_edges.h"

#include <algorithm>

#include "kanon/graph/strongly_connected.h"

namespace kanon {

Result<MatchableEdgeSets> ComputeMatchableEdges(const BipartiteGraph& graph) {
  if (graph.num_left() != graph.num_right()) {
    return Status::InvalidArgument(
        "matchable edges require a balanced bipartite graph");
  }
  const size_t n = graph.num_left();
  MatchableEdgeSets out;
  out.matches.resize(n);

  const Matching matching = HopcroftKarp(graph);
  if (matching.size != n) {
    out.has_perfect_matching = false;
    return out;
  }
  out.has_perfect_matching = true;

  // Directed graph on 2n vertices: left u is vertex u, right v is n + v.
  // Unmatched edges point left→right; matched edges point right→left.
  std::vector<std::vector<uint32_t>> directed(2 * n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : graph.Neighbors(u)) {
      if (matching.match_left[u] == v) {
        directed[n + v].push_back(u);
      } else {
        directed[u].push_back(n + v);
      }
    }
  }
  const std::vector<uint32_t> component =
      StronglyConnectedComponents(directed);

  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : graph.Neighbors(u)) {
      if (matching.match_left[u] == v ||
          component[u] == component[n + v]) {
        out.matches[u].push_back(v);
      }
    }
    std::sort(out.matches[u].begin(), out.matches[u].end());
  }
  return out;
}

Result<MatchableEdgeSets> ComputeMatchableEdgesNaive(
    const BipartiteGraph& graph) {
  if (graph.num_left() != graph.num_right()) {
    return Status::InvalidArgument(
        "matchable edges require a balanced bipartite graph");
  }
  const size_t n = graph.num_left();
  MatchableEdgeSets out;
  out.matches.resize(n);
  out.has_perfect_matching = HopcroftKarp(graph).size == n;
  if (!out.has_perfect_matching) {
    return out;
  }
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : graph.Neighbors(u)) {
      if (EdgeInSomePerfectMatchingNaive(graph, u, v)) {
        out.matches[u].push_back(v);
      }
    }
    std::sort(out.matches[u].begin(), out.matches[u].end());
  }
  return out;
}

}  // namespace kanon
