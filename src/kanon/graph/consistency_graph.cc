#include "kanon/graph/consistency_graph.h"

#include "kanon/common/check.h"

namespace kanon {

BipartiteGraph BuildConsistencyGraph(const Dataset& dataset,
                                     const GeneralizedTable& table) {
  KANON_CHECK(dataset.num_attributes() == table.num_attributes(),
              "dataset/table arity mismatch");
  BipartiteGraph graph(dataset.num_rows(), table.num_rows());
  for (uint32_t i = 0; i < dataset.num_rows(); ++i) {
    for (uint32_t t = 0; t < table.num_rows(); ++t) {
      if (table.ConsistentPair(dataset, i, t)) {
        graph.AddEdge(i, t);
      }
    }
  }
  return graph;
}

}  // namespace kanon
