#ifndef KANON_GRAPH_BIPARTITE_GRAPH_H_
#define KANON_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "kanon/common/check.h"

namespace kanon {

/// Sentinel for "unmatched" in matching vectors.
inline constexpr uint32_t kUnmatched = UINT32_MAX;

/// A bipartite graph with `num_left` + `num_right` vertices, stored as
/// left-side adjacency lists. In this library the left side holds the
/// original records of D and the right side the generalized records of
/// g(D); edges connect consistent pairs (the graph V_{D,g(D)} of Section IV).
class BipartiteGraph {
 public:
  BipartiteGraph(size_t num_left, size_t num_right)
      : num_right_(num_right), adj_(num_left) {}

  size_t num_left() const { return adj_.size(); }
  size_t num_right() const { return num_right_; }
  size_t num_edges() const { return num_edges_; }

  void AddEdge(uint32_t left, uint32_t right) {
    KANON_DCHECK(left < adj_.size() && right < num_right_);
    adj_[left].push_back(right);
    ++num_edges_;
  }

  const std::vector<uint32_t>& Neighbors(uint32_t left) const {
    KANON_DCHECK(left < adj_.size());
    return adj_[left];
  }

  bool HasEdge(uint32_t left, uint32_t right) const;

  /// Degree of a right-side vertex (O(m) scan; prefer RightDegrees for all).
  std::vector<uint32_t> RightDegrees() const;

 private:
  size_t num_right_;
  size_t num_edges_ = 0;
  std::vector<std::vector<uint32_t>> adj_;
};

}  // namespace kanon

#endif  // KANON_GRAPH_BIPARTITE_GRAPH_H_
