#ifndef KANON_GRAPH_MATCHABLE_EDGES_H_
#define KANON_GRAPH_MATCHABLE_EDGES_H_

#include <cstdint>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/graph/bipartite_graph.h"
#include "kanon/graph/hopcroft_karp.h"

namespace kanon {

/// For every left vertex, the right vertices among its neighbors that are
/// *matches* in the sense of Definition 4.6: edges (u,v) that can be
/// completed to a perfect matching of the whole graph.
struct MatchableEdgeSets {
  /// matches[u] = sorted right neighbors v such that (u,v) lies in some
  /// perfect matching. Empty everywhere when the graph has no perfect
  /// matching at all.
  std::vector<std::vector<uint32_t>> matches;
  bool has_perfect_matching = false;
};

/// Computes all matchable ("allowed") edges in O(V + E) after one maximum
/// matching, via the classical characterization: fix a perfect matching M,
/// orient matched edges right→left and unmatched edges left→right; then a
/// non-matching edge lies in some perfect matching iff its endpoints are in
/// the same strongly connected component.
///
/// Requires a balanced graph (num_left == num_right); returns an error
/// otherwise. This accelerates the paper's Algorithm 6 and the global
/// (1,k)-anonymity verifier from O(√V·E) *per edge* to O(V+E) total.
Result<MatchableEdgeSets> ComputeMatchableEdges(const BipartiteGraph& graph);

/// Reference implementation testing every edge with a fresh Hopcroft–Karp
/// run on the reduced graph (the procedure described in Section V-C of the
/// paper). O(√V·E) per edge, O(√V·E²) total. Used for cross-validation and
/// for the runtime comparison bench.
Result<MatchableEdgeSets> ComputeMatchableEdgesNaive(
    const BipartiteGraph& graph);

}  // namespace kanon

#endif  // KANON_GRAPH_MATCHABLE_EDGES_H_
