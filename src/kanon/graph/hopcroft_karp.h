#ifndef KANON_GRAPH_HOPCROFT_KARP_H_
#define KANON_GRAPH_HOPCROFT_KARP_H_

#include <cstdint>
#include <vector>

#include "kanon/graph/bipartite_graph.h"

namespace kanon {

/// Result of a maximum-matching computation.
struct Matching {
  /// match_left[u] = right vertex matched to u, or kUnmatched.
  std::vector<uint32_t> match_left;
  /// match_right[v] = left vertex matched to v, or kUnmatched.
  std::vector<uint32_t> match_right;
  size_t size = 0;

  bool IsPerfect(const BipartiteGraph& graph) const {
    return graph.num_left() == graph.num_right() && size == graph.num_left();
  }
};

/// Maximum bipartite matching via Hopcroft–Karp, O(√V · E).
/// Used by the paper's Algorithm 6 and the global (1,k) verifier.
Matching HopcroftKarp(const BipartiteGraph& graph);

/// Maximum matching in the graph with `skip_left` and `skip_right` deleted.
/// This is the paper's primitive for testing whether an edge can be
/// completed to a perfect matching: edge (u,v) is a *match* iff the graph
/// minus {u, v} has a matching of size n − 1.
Matching HopcroftKarpExcluding(const BipartiteGraph& graph,
                               uint32_t skip_left, uint32_t skip_right);

/// True iff edge (u,v) belongs to some perfect matching, decided the
/// paper's way (one Hopcroft–Karp run on the reduced graph). Requires a
/// balanced graph. O(√V · E) per call — see matchable_edges.h for the
/// O(V + E) all-edges algorithm.
bool EdgeInSomePerfectMatchingNaive(const BipartiteGraph& graph, uint32_t u,
                                    uint32_t v);

}  // namespace kanon

#endif  // KANON_GRAPH_HOPCROFT_KARP_H_
