#include "kanon/graph/bipartite_graph.h"

#include <algorithm>

namespace kanon {

bool BipartiteGraph::HasEdge(uint32_t left, uint32_t right) const {
  KANON_DCHECK(left < adj_.size());
  const std::vector<uint32_t>& nbrs = adj_[left];
  return std::find(nbrs.begin(), nbrs.end(), right) != nbrs.end();
}

std::vector<uint32_t> BipartiteGraph::RightDegrees() const {
  std::vector<uint32_t> degrees(num_right_, 0);
  for (const auto& nbrs : adj_) {
    for (uint32_t v : nbrs) {
      ++degrees[v];
    }
  }
  return degrees;
}

}  // namespace kanon
