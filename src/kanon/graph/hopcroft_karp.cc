#include "kanon/graph/hopcroft_karp.h"

#include <deque>
#include <limits>

namespace kanon {

namespace {

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

// Internal state for one Hopcroft–Karp execution. `skip_left`/`skip_right`
// (when not kUnmatched) are treated as deleted vertices.
class Solver {
 public:
  Solver(const BipartiteGraph& graph, uint32_t skip_left, uint32_t skip_right)
      : graph_(graph),
        skip_left_(skip_left),
        skip_right_(skip_right),
        match_left_(graph.num_left(), kUnmatched),
        match_right_(graph.num_right(), kUnmatched),
        dist_(graph.num_left(), kInf) {}

  Matching Run() {
    size_t matched = 0;
    while (Bfs()) {
      for (uint32_t u = 0; u < graph_.num_left(); ++u) {
        if (u != skip_left_ && match_left_[u] == kUnmatched && Dfs(u)) {
          ++matched;
        }
      }
    }
    Matching result;
    result.match_left = std::move(match_left_);
    result.match_right = std::move(match_right_);
    result.size = matched;
    return result;
  }

 private:
  // Layers free left vertices by alternating-path distance. Returns true if
  // some free right vertex is reachable.
  bool Bfs() {
    std::deque<uint32_t> queue;
    for (uint32_t u = 0; u < graph_.num_left(); ++u) {
      if (u != skip_left_ && match_left_[u] == kUnmatched) {
        dist_[u] = 0;
        queue.push_back(u);
      } else {
        dist_[u] = kInf;
      }
    }
    bool reachable = false;
    while (!queue.empty()) {
      const uint32_t u = queue.front();
      queue.pop_front();
      for (uint32_t v : graph_.Neighbors(u)) {
        if (v == skip_right_) continue;
        const uint32_t w = match_right_[v];
        if (w == kUnmatched) {
          reachable = true;
        } else if (dist_[w] == kInf) {
          dist_[w] = dist_[u] + 1;
          queue.push_back(w);
        }
      }
    }
    return reachable;
  }

  bool Dfs(uint32_t u) {
    for (uint32_t v : graph_.Neighbors(u)) {
      if (v == skip_right_) continue;
      const uint32_t w = match_right_[v];
      if (w == kUnmatched || (dist_[w] == dist_[u] + 1 && Dfs(w))) {
        match_left_[u] = v;
        match_right_[v] = u;
        return true;
      }
    }
    dist_[u] = kInf;
    return false;
  }

  const BipartiteGraph& graph_;
  const uint32_t skip_left_;
  const uint32_t skip_right_;
  std::vector<uint32_t> match_left_;
  std::vector<uint32_t> match_right_;
  std::vector<uint32_t> dist_;
};

}  // namespace

Matching HopcroftKarp(const BipartiteGraph& graph) {
  return Solver(graph, kUnmatched, kUnmatched).Run();
}

Matching HopcroftKarpExcluding(const BipartiteGraph& graph,
                               uint32_t skip_left, uint32_t skip_right) {
  return Solver(graph, skip_left, skip_right).Run();
}

bool EdgeInSomePerfectMatchingNaive(const BipartiteGraph& graph, uint32_t u,
                                    uint32_t v) {
  KANON_CHECK(graph.num_left() == graph.num_right(),
              "perfect matchings require a balanced graph");
  KANON_CHECK(graph.HasEdge(u, v), "edge (u,v) must exist");
  const Matching reduced = HopcroftKarpExcluding(graph, u, v);
  return reduced.size == graph.num_left() - 1;
}

}  // namespace kanon
