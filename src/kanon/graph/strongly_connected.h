#ifndef KANON_GRAPH_STRONGLY_CONNECTED_H_
#define KANON_GRAPH_STRONGLY_CONNECTED_H_

#include <cstdint>
#include <vector>

namespace kanon {

/// Strongly connected components of a directed graph given as adjacency
/// lists. Returns one component id per vertex (0-based; ids are assigned in
/// reverse topological order of the condensation). Iterative Tarjan, O(V+E).
std::vector<uint32_t> StronglyConnectedComponents(
    const std::vector<std::vector<uint32_t>>& adjacency);

}  // namespace kanon

#endif  // KANON_GRAPH_STRONGLY_CONNECTED_H_
