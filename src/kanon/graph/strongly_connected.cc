#include "kanon/graph/strongly_connected.h"

#include <cstddef>
#include <limits>

namespace kanon {

std::vector<uint32_t> StronglyConnectedComponents(
    const std::vector<std::vector<uint32_t>>& adjacency) {
  const uint32_t n = static_cast<uint32_t>(adjacency.size());
  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  std::vector<uint32_t> component(n, 0);
  uint32_t next_index = 0;
  uint32_t num_components = 0;

  // Explicit DFS frames: (vertex, next child position).
  struct Frame {
    uint32_t vertex;
    size_t child;
  };
  std::vector<Frame> frames;

  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    frames.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const uint32_t u = frame.vertex;
      if (frame.child < adjacency[u].size()) {
        const uint32_t v = adjacency[u][frame.child++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v] && index[v] < lowlink[u]) {
          lowlink[u] = index[v];
        }
      } else {
        if (lowlink[u] == index[u]) {
          for (;;) {
            const uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = num_components;
            if (w == u) break;
          }
          ++num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const uint32_t parent = frames.back().vertex;
          if (lowlink[u] < lowlink[parent]) {
            lowlink[parent] = lowlink[u];
          }
        }
      }
    }
  }
  return component;
}

}  // namespace kanon
