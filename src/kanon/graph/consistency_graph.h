#ifndef KANON_GRAPH_CONSISTENCY_GRAPH_H_
#define KANON_GRAPH_CONSISTENCY_GRAPH_H_

#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/graph/bipartite_graph.h"

namespace kanon {

/// Builds the bipartite graph V_{D,g(D)} of Section IV: left vertices are
/// the original records of `dataset`, right vertices the generalized
/// records of `table`, with an edge for every consistent pair
/// (Definition 3.3). O(n²·r).
BipartiteGraph BuildConsistencyGraph(const Dataset& dataset,
                                     const GeneralizedTable& table);

}  // namespace kanon

#endif  // KANON_GRAPH_CONSISTENCY_GRAPH_H_
