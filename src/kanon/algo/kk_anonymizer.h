#ifndef KANON_ALGO_KK_ANONYMIZER_H_
#define KANON_ALGO_KK_ANONYMIZER_H_

#include "kanon/algo/core/engine_counters.h"
#include "kanon/algo/policy.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Algorithm 3: (k,1)-anonymization by nearest neighbors. Each record is
/// generalized to the closure of itself and the k−1 records minimizing the
/// pairwise closure cost d({R_i, R_j}). Approximates the optimal
/// (k,1)-anonymization within a factor of k−1 (Proposition 5.1). O(k·n²·r).
/// When `ctx` stops the run, records not yet processed are emitted fully
/// suppressed — every suppressed record covers all n ≥ k originals, so
/// (k,1)-anonymity is preserved.
///
/// All functions here take `num_threads` (<= 0 resolves to the hardware
/// concurrency) for the row-wise O(n²·r) scans; results are byte-identical
/// at every thread count (see docs/parallelism.md). The optional `counters`
/// (not owned) accumulates engine telemetry — closure interning hit rates,
/// upgrade steps, sweep chunks — also deterministic at every thread count.
Result<GeneralizedTable> K1NearestNeighbors(const Dataset& dataset,
                                            const PrecomputedLoss& loss,
                                            size_t k,
                                            RunContext* ctx = nullptr,
                                            int num_threads = 1,
                                            EngineCounters* counters = nullptr);

/// Algorithm 4: (k,1)-anonymization by greedy expansion. Each record grows
/// a cluster of size k by repeatedly adding the record whose inclusion
/// increases the closure cost the least. No approximation guarantee, but
/// consistently better than Algorithm 3 in the paper's experiments.
/// O(k·n²·r) worst case.
Result<GeneralizedTable> K1GreedyExpansion(const Dataset& dataset,
                                           const PrecomputedLoss& loss,
                                           size_t k,
                                           RunContext* ctx = nullptr,
                                           int num_threads = 1,
                                           EngineCounters* counters = nullptr);

/// Algorithm 5: the (1,k)-anonymizer. Further generalizes records of
/// `table` until every record of `dataset` is consistent with at least k of
/// them: a record R_i with only ℓ < k consistent generalized records picks
/// the k−ℓ inconsistent records R̄_j minimizing c(R_i + R̄_j) − c(R̄_j) and
/// replaces them with R_i + R̄_j. Applied to a (k,1)-anonymization this
/// yields a (k,k)-anonymization. O(k·n²·r).
/// When `ctx` stops the run mid-repair, (1,k) is restored wholesale by fully
/// suppressing the k cheapest-to-suppress records of `table` (every original
/// is then consistent with those k rows; (k,1) is preserved because records
/// only coarsen).
Result<GeneralizedTable> Make1KAnonymous(const Dataset& dataset,
                                         const PrecomputedLoss& loss, size_t k,
                                         GeneralizedTable table,
                                         RunContext* ctx = nullptr,
                                         int num_threads = 1,
                                         EngineCounters* counters = nullptr);

/// Which (k,1) algorithm seeds the (k,k) pipeline.
enum class K1Algorithm {
  kNearestNeighbors,  // Algorithm 3.
  kGreedyExpansion,   // Algorithm 4.
};

/// The paper's (k,k)-anonymizer: a (k,1) algorithm coupled with
/// Algorithm 5. The coupling of Algorithm 4 with Algorithm 5 is the
/// recommended configuration.
Result<GeneralizedTable> KKAnonymize(const Dataset& dataset,
                                     const PrecomputedLoss& loss, size_t k,
                                     K1Algorithm k1_algorithm,
                                     RunContext* ctx = nullptr,
                                     int num_threads = 1,
                                     EngineCounters* counters = nullptr);

/// Policy-parameterized variants (docs/policy_engine.md). The (k,1)/(k,k)
/// pipelines make their per-pair decisions on raw closure costs, so they
/// consume only the policy's cost hooks — `PairCost` ranks the Algorithm 3
/// candidates, `MergeDelta` transforms the Algorithm 4 expansion deltas and
/// the Algorithm 5 upgrade prices, and `Ripe` is the cluster/consistency
/// stopping predicate. Every built-in distance policy keeps those hooks at
/// their identity defaults, so all five instantiations behave identically;
/// the hooks exist so a policy can reshape the merge rule without touching
/// this pipeline. Defined in kk_anonymizer.cc and explicitly instantiated
/// per (pipeline × distance) — one line there per new policy that needs
/// novel cost hooks.
template <typename Policy>
Result<GeneralizedTable> K1NearestNeighborsWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx = nullptr, int num_threads = 1,
    EngineCounters* counters = nullptr);

template <typename Policy>
Result<GeneralizedTable> K1GreedyExpansionWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx = nullptr, int num_threads = 1,
    EngineCounters* counters = nullptr);

template <typename Policy>
Result<GeneralizedTable> Make1KAnonymousWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    GeneralizedTable table, const Policy& policy, RunContext* ctx = nullptr,
    int num_threads = 1, EngineCounters* counters = nullptr);

template <typename Policy>
Result<GeneralizedTable> KKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    K1Algorithm k1_algorithm, const Policy& policy, RunContext* ctx = nullptr,
    int num_threads = 1, EngineCounters* counters = nullptr);

}  // namespace kanon

#endif  // KANON_ALGO_KK_ANONYMIZER_H_
