#ifndef KANON_ALGO_CORE_UNION_FIND_H_
#define KANON_ALGO_CORE_UNION_FIND_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kanon/common/check.h"

namespace kanon {

/// Union-find with path halving and union by size — the record-level
/// component bookkeeping of the forest baseline, and the natural seam for
/// future partition/shard merging.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns the new root.
  uint32_t Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    KANON_CHECK(a != b, "union of the same component");
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

  size_t SizeOf(uint32_t x) { return size_[Find(x)]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace kanon

#endif  // KANON_ALGO_CORE_UNION_FIND_H_
