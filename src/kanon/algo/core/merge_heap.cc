#include "kanon/algo/core/merge_heap.h"

#include <algorithm>

namespace kanon {

void OfferToTwoBest(CandidatePair* c, uint32_t y, double d) {
  if (y == kNoCluster || y == c->c1 || y == c->c2) return;
  if (c->c1 == kNoCluster) {
    // Empty accumulator: y becomes the first-best outright (the second slot
    // stays unset — there is nothing to displace into it).
    c->c1 = y;
    c->d1 = d;
    return;
  }
  if (d < c->d1 || (d == c->d1 && y < c->c1)) {
    c->c2 = c->c1;
    c->d2 = c->d1;
    c->c1 = y;
    c->d1 = d;
  } else if (c->c2 == kNoCluster || d < c->d2 ||
             (d == c->d2 && y < c->c2)) {
    c->c2 = y;
    c->d2 = d;
  }
}

void MergeHeap::Offer(uint32_t x, uint32_t y, double d) {
  CandidatePair& c = cands_[x];
  if (y == c.c1 || y == c.c2) return;
  if (d < c.d1 || (d == c.d1 && y < c.c1)) {
    // The displaced c1 was the exact minimum over the other alive clusters,
    // so it is a correct second bound.
    c.c2 = c.c1;
    c.d2 = c.d1;
    c.second_valid = true;
    c.c1 = y;
    c.d1 = d;
    PushEntry(d, x, y);
  } else if (d < c.d2 || (d == c.d2 && y < c.c2)) {
    // Tightening the second bound keeps invariant B when it held (y is
    // accounted for explicitly, everyone else was >= old d2 > d).
    c.c2 = y;
    c.d2 = d;
  }
}

bool MergeHeap::Repair(uint32_t x, uint32_t added, double d_x_added) {
  CandidatePair& c = cands_[x];
  if (c.c1 == kNoCluster || clusters_->Alive(c.c1)) {
    return false;  // Nearest intact (a dead c2 stays as a bound).
  }
  if (added != kNoCluster && d_x_added <= c.d1) {
    // Everyone alive was at distance >= d1 before the merge, so the new
    // cluster is an exact new minimum. The second bound keeps holding.
    c.c1 = added;
    c.d1 = d_x_added;
    PushEntry(d_x_added, x, added);
    return false;
  }
  if (clusters_->Alive(c.c2) && c.second_valid) {
    // Invariant B: nothing alive beats d2, so c2 is the exact minimum.
    c.c1 = c.c2;
    c.d1 = c.d2;
    c.c2 = kNoCluster;
    c.d2 = kInfDist;
    c.second_valid = false;
    PushEntry(c.d1, x, c.c1);
    return false;
  }
  return true;
}

void MergeHeap::MaybeRebuild() {
  const bool stale_heavy =
      aggressive_rebuild_
          ? stale_ > 0
          : heap_.size() >= kRebuildMinSize && stale_ > heap_.size();
  if (!stale_heavy) return;
  heap_ = {};
  std::fill(entry_refs_.begin(), entry_refs_.end(), 0);
  stale_ = 0;
  for (uint32_t x : clusters_->active()) {
    if (!clusters_->Alive(x)) continue;
    const CandidatePair& c = cands_[x];
    if (c.c1 != kNoCluster && clusters_->Alive(c.c1)) {
      PushEntry(c.d1, x, c.c1);
    }
  }
  ++rebuilds_;
  if (counters_ != nullptr) ++counters_->heap_rebuilds;
}

MergeCandidate MergeHeap::PopTop() {
  const MergeCandidate entry = heap_.top();
  heap_.pop();
  --entry_refs_[entry.a];
  --entry_refs_[entry.b];
  if (!clusters_->Alive(entry.a)) --stale_;
  if (!clusters_->Alive(entry.b)) --stale_;
  return entry;
}

}  // namespace kanon
