#ifndef KANON_ALGO_CORE_ENGINE_COUNTERS_H_
#define KANON_ALGO_CORE_ENGINE_COUNTERS_H_

#include <cstddef>

namespace kanon {

/// Observability counters shared by every anonymization engine. Each
/// pipeline fills the counters it exercises; the rest stay zero. All values
/// are deterministic at every thread count: chunk geometry is a pure
/// function of the item count, and the closure-store hit total depends only
/// on the multiset of interned closures, never on their order.
struct EngineCounters {
  /// Cluster merges performed (agglomerative engines, forest unions).
  size_t merges = 0;
  /// Full nearest-neighbor rescans (the expensive O(active·r) repair path).
  size_t rescans = 0;
  /// Stale-heavy merge-heap rebuilds.
  size_t heap_rebuilds = 0;
  /// ClosureStore interns that found an existing closure (memoized cost).
  size_t closure_hits = 0;
  /// ClosureStore interns that created a new entry (cost computed once).
  size_t closure_misses = 0;
  /// Record-upgrade steps ((k,1) repair, Algorithm 6 global upgrades).
  size_t upgrade_steps = 0;
  /// Chunk units of parallel work issued by the engine's sweeps. A pure
  /// function of the sweep sizes, so identical at every --threads value.
  size_t parallel_chunks = 0;

  /// Fraction of interns served from the closure cache (0 when unused).
  double closure_hit_rate() const {
    const size_t total = closure_hits + closure_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(closure_hits) /
                            static_cast<double>(total);
  }
};

}  // namespace kanon

#endif  // KANON_ALGO_CORE_ENGINE_COUNTERS_H_
