#ifndef KANON_ALGO_CORE_MERGE_HEAP_H_
#define KANON_ALGO_CORE_MERGE_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "kanon/algo/core/cluster_set.h"
#include "kanon/algo/core/engine_counters.h"

namespace kanon {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Nearest-neighbor bookkeeping for one cluster x. Cluster contents are
/// immutable (merges create fresh clusters), so pair distances never change
/// and the engine can maintain, with O(1) repairs in the common case:
///
///   invariant A: c1 is alive and d1 = min over alive y≠x of dist(x, y)
///                (exact), whenever c1 != kNoCluster;
///   invariant B: when second_valid, every alive y ∉ {c1} has
///                dist(x, y) >= d2 (c2 itself may meanwhile be dead; d2
///                then still bounds everyone else).
///
/// A cluster that loses c1 promotes c2 when invariant B allows it, adopts
/// the freshly merged cluster when that is provably at least as close, and
/// only falls back to a full rescan otherwise. This keeps the engine exact
/// while avoiding the O(n³) blow-up of naive repair in the "one growing
/// cluster" regime that distance functions (10) and (11) induce.
struct CandidatePair {
  uint32_t c1 = kNoCluster;
  double d1 = kInfDist;
  uint32_t c2 = kNoCluster;
  double d2 = kInfDist;
  bool second_valid = true;
};

/// Offers candidate (y, d) to a two-best accumulator with the exact
/// comparisons of an ascending-id serial scan: strict improvement wins, ties
/// go to the smaller id. Used both inside chunk-local scans and to merge
/// chunk results in chunk order, so the combined two-best is byte-identical
/// to the serial scan at every thread count.
///
/// The unset slots are handled explicitly: an empty accumulator adopts any
/// candidate as its first-best, and a missing second-best adopts any
/// non-first candidate. (Historically those cases fell through the tie-break
/// comparisons only because kNoCluster compares greater than every real id
/// and the unset distances are +inf — correct by accident, and broken by any
/// future change to the sentinel. See the MergeHeap regression tests.)
void OfferToTwoBest(CandidatePair* c, uint32_t y, double d);

/// One scored merge candidate: dist(a, b) with the argument order the
/// asymmetric distances care about.
struct MergeCandidate {
  double dist;
  uint32_t a;
  uint32_t b;
};

/// The lazy merge heap shared by the agglomerative engines: per-cluster
/// two-best candidates (invariants A/B above), the stale-entry accounting,
/// and the threshold rebuild that keeps adversarial merge orders from
/// piling up dead entries. Pop order and results are byte-identical to a
/// heap without rebuilds; only occupancy changes.
class MergeHeap {
 public:
  /// `clusters` supplies aliveness and the active list; not owned.
  /// `aggressive_rebuild` is the testing hook that checks for a rebuild on
  /// every stale entry instead of waiting for the half-stale threshold.
  /// `counters` (optional, not owned) receives heap_rebuilds.
  MergeHeap(const ClusterSet* clusters, bool aggressive_rebuild,
            EngineCounters* counters)
      : clusters_(clusters),
        aggressive_rebuild_(aggressive_rebuild),
        counters_(counters) {}

  MergeHeap(const MergeHeap&) = delete;
  MergeHeap& operator=(const MergeHeap&) = delete;

  /// Grows the candidate/refcount arrays to cover cluster ids < n.
  void EnsureSize(size_t n) {
    if (cands_.size() < n) {
      cands_.resize(std::max(n, cands_.size() * 2 + 1));
      entry_refs_.resize(cands_.size(), 0);
    }
  }

  /// Candidate slot of cluster x. Chunk workers of the all-pairs scan write
  /// disjoint slots directly; everything else goes through Offer/Repair.
  CandidatePair& candidate(uint32_t x) {
    KANON_DCHECK(x < cands_.size());
    return cands_[x];
  }
  const CandidatePair& candidate(uint32_t x) const {
    KANON_DCHECK(x < cands_.size());
    return cands_[x];
  }

  void ResetCandidate(uint32_t x) {
    cands_[x] = CandidatePair();
    entry_refs_[x] = 0;
  }

  /// Pushes x's current first-best as a heap entry (no-op when unset).
  /// The tail of a full rescan.
  void PushCandidate(uint32_t x) {
    if (cands_[x].c1 != kNoCluster) {
      PushEntry(cands_[x].d1, x, cands_[x].c1);
    }
  }

  /// Offers alive candidate (y, d) to x's two-best, pushing a heap entry on
  /// a first-best improvement.
  void Offer(uint32_t x, uint32_t y, double d);

  /// Fixes x after the deaths of the just-merged pair. `added` (kNoCluster
  /// for a ripe merge) is the freshly created cluster and `d_x_added` its
  /// distance from x. Returns true when x needs a full rescan.
  bool Repair(uint32_t x, uint32_t added, double d_x_added);

  /// Every in-heap entry referencing a deactivated cluster just went stale;
  /// the engine reports each death so the rebuild threshold stays exact.
  void NoteDeactivated(uint32_t c) { stale_ += entry_refs_[c]; }

  /// Dead-pair entries are only discarded lazily on pop, so adversarial
  /// merge orders (one growing cluster re-offered to everyone each round)
  /// can pile them up without bound. Once the stale-reference counter says
  /// at least half the heap is provably dead, rebuild it from the exact
  /// per-cluster candidates: every alive cluster re-contributes its one
  /// invariant-A entry. Purely an occupancy change — pop order and results
  /// are untouched.
  void MaybeRebuild();

  bool empty() const { return heap_.empty(); }

  /// Pops the top entry, maintaining the stale accounting. The caller skips
  /// entries whose endpoints died (lazy deletion); invariant A guarantees
  /// the first fully-alive pop is a globally closest pair.
  MergeCandidate PopTop();

  size_t rebuilds() const { return rebuilds_; }

 private:
  struct EntryGreater {
    bool operator()(const MergeCandidate& x, const MergeCandidate& y) const {
      if (x.dist != y.dist) return x.dist > y.dist;
      if (x.a != y.a) return x.a > y.a;
      return x.b > y.b;
    }
  };

  // Every heap mutation goes through PushEntry/PopTop so the stale-entry
  // accounting stays exact: entry_refs_[c] counts in-heap entries
  // referencing c, stale_ counts in-heap references to dead clusters (each
  // stale entry contributes one or two, so stale_ is between the
  // stale-entry count and twice it).
  void PushEntry(double dist, uint32_t a, uint32_t b) {
    heap_.push(MergeCandidate{dist, a, b});
    ++entry_refs_[a];
    ++entry_refs_[b];
  }

  // The stale-entry heap rebuild waits for at least this many entries, so
  // small runs never churn.
  static constexpr size_t kRebuildMinSize = 64;

  const ClusterSet* const clusters_;
  const bool aggressive_rebuild_;
  EngineCounters* const counters_;

  std::vector<CandidatePair> cands_;
  std::priority_queue<MergeCandidate, std::vector<MergeCandidate>,
                      EntryGreater>
      heap_;
  std::vector<uint32_t> entry_refs_;  // In-heap entries per cluster id.
  size_t stale_ = 0;                  // In-heap references to dead clusters.
  size_t rebuilds_ = 0;
};

}  // namespace kanon

#endif  // KANON_ALGO_CORE_MERGE_HEAP_H_
