#include "kanon/algo/core/closure_store.h"

#include <utility>

namespace kanon {

ClosureStore::Id ClosureStore::Intern(const GeneralizedRecord& record) {
  const auto it = index_.find(record);
  if (it != index_.end()) {
    ++hits_;
    return it->second;
  }
  const Id id = static_cast<Id>(records_.size());
  KANON_CHECK(id != kInvalidId, "closure store exhausted its id space");
  // Price before publishing: a failed RecordCost (DCHECK) must not leave a
  // half-installed entry behind.
  const double cost = loss_.RecordCost(record);
  const auto inserted = index_.emplace(record, id);
  records_.push_back(&inserted.first->first);
  costs_.push_back(cost);
  return id;
}

ClosureStore::Id ClosureStore::InternJoin(Id a, Id b) {
  return Intern(loss_.scheme().JoinRecords(record(a), record(b)));
}

ClosureStore::Id ClosureStore::InternClosureOfRows(
    const Dataset& dataset, const std::vector<uint32_t>& rows) {
  return Intern(loss_.scheme().ClosureOfRows(dataset, rows));
}

std::vector<ClosureStore::Id> ClosureStore::InternTable(
    const GeneralizedTable& table) {
  std::vector<Id> ids;
  ids.reserve(table.num_rows());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    ids.push_back(Intern(table.record(t)));
  }
  return ids;
}

}  // namespace kanon
