#ifndef KANON_ALGO_CORE_CLOSURE_STORE_H_
#define KANON_ALGO_CORE_CLOSURE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kanon/algo/core/engine_counters.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Hash-consed store of GeneralizedRecord closures with memoized
/// generalization cost. Every engine that materializes closures routes them
/// through one store per run: identical closures are kept (and priced via
/// PrecomputedLoss::RecordCost) exactly once, and the id is a dense handle
/// that is cheaper to copy and compare than the record itself.
///
/// Intern() is atomic — it either returns an existing id or fully installs
/// the new closure before returning — so a run wound down by a RunContext
/// stop between interns always leaves the store consistent:
/// hits() + misses() == total Intern() calls and size() == misses().
/// Not thread-safe; engines intern from their coordinating thread only
/// (parallel sweeps compute raw closures and intern after the barrier).
class ClosureStore {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalidId = UINT32_MAX;

  /// The loss binds the store to one (scheme, dataset) pair; it must
  /// outlive the store.
  explicit ClosureStore(const PrecomputedLoss& loss) : loss_(loss) {}

  ClosureStore(const ClosureStore&) = delete;
  ClosureStore& operator=(const ClosureStore&) = delete;

  /// Returns the id of `record`, installing (and pricing) it on first sight.
  Id Intern(const GeneralizedRecord& record);

  /// Convenience: interns the attribute-wise join of two stored closures.
  Id InternJoin(Id a, Id b);

  /// Convenience: interns the closure of a set of dataset rows.
  Id InternClosureOfRows(const Dataset& dataset,
                         const std::vector<uint32_t>& rows);

  /// Interns every row of a generalized table; the result has one id per
  /// row. This is the dedup-accounting hook the table-producing pipelines
  /// ((k,k), global, full-domain) use to surface closure reuse.
  std::vector<Id> InternTable(const GeneralizedTable& table);

  const GeneralizedRecord& record(Id id) const {
    KANON_DCHECK(id < records_.size());
    return *records_[id];
  }

  /// Memoized c(R̄) of a stored closure.
  double cost(Id id) const {
    KANON_DCHECK(id < costs_.size());
    return costs_[id];
  }

  const PrecomputedLoss& loss() const { return loss_; }

  /// Distinct closures stored (== misses()).
  size_t size() const { return records_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return records_.size(); }

  /// Copies the store's cache statistics into shared engine counters.
  void ExportCounters(EngineCounters* counters) const {
    if (counters == nullptr) return;
    counters->closure_hits += hits();
    counters->closure_misses += misses();
  }

 private:
  struct RecordHash {
    size_t operator()(const GeneralizedRecord& record) const {
      // FNV-1a over the set ids; closures are short (one id per attribute).
      size_t h = 1469598103934665603ull;
      for (SetId id : record) {
        h ^= static_cast<size_t>(id);
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  const PrecomputedLoss& loss_;
  // Node-based map: rehashing never moves the keys, so records_ may hold
  // stable pointers into it instead of duplicating every closure.
  std::unordered_map<GeneralizedRecord, Id, RecordHash> index_;
  std::vector<const GeneralizedRecord*> records_;
  std::vector<double> costs_;
  size_t hits_ = 0;
};

}  // namespace kanon

#endif  // KANON_ALGO_CORE_CLOSURE_STORE_H_
