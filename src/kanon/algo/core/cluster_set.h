#ifndef KANON_ALGO_CORE_CLUSTER_SET_H_
#define KANON_ALGO_CORE_CLUSTER_SET_H_

#include <cstdint>
#include <vector>

#include "kanon/algo/core/closure_store.h"

namespace kanon {

/// Sentinel cluster id shared by the core components ("no cluster here").
inline constexpr uint32_t kNoCluster = UINT32_MAX;

/// One cluster of an agglomerative engine. Contents are immutable between
/// merges (merges create fresh clusters), except for the wind-down passes
/// that shrink or absorb into a cluster in place.
struct ClusterData {
  std::vector<uint32_t> members;  // Dataset rows, ascending.
  ClosureStore::Id closure = ClosureStore::kInvalidId;
  double cost = 0.0;  // d(S) = c(closure of S), mirrored from the store.
  bool alive = false;
};

/// Alive/dead cluster bookkeeping shared by the clustering engines: the
/// cluster slab, the active-id list (ascending creation order, compacted
/// lazily), and the drain step both graceful wind-downs build on. Closure
/// ids refer to an external ClosureStore; ClusterSet itself never touches
/// records, which keeps it usable before closures exist (degraded stops).
class ClusterSet {
 public:
  ClusterSet() = default;

  void Reserve(size_t n) { clusters_.reserve(n); }

  /// Adds a cluster, dead and outside the active list; Activate() arms it.
  /// Ids are dense and creation-ordered — the tie-breaking currency of the
  /// deterministic scans.
  uint32_t Add(ClusterData data) {
    clusters_.push_back(std::move(data));
    return static_cast<uint32_t>(clusters_.size() - 1);
  }

  ClusterData& cluster(uint32_t id) {
    KANON_DCHECK(id < clusters_.size());
    return clusters_[id];
  }
  const ClusterData& cluster(uint32_t id) const {
    KANON_DCHECK(id < clusters_.size());
    return clusters_[id];
  }

  /// Total clusters ever created (dead ones included).
  size_t size() const { return clusters_.size(); }

  bool Alive(uint32_t id) const {
    return id != kNoCluster && clusters_[id].alive;
  }

  void Activate(uint32_t id) {
    KANON_DCHECK(!clusters_[id].alive);
    clusters_[id].alive = true;
    ++num_active_;
    active_.push_back(id);
  }

  void Deactivate(uint32_t id) {
    KANON_DCHECK(clusters_[id].alive);
    clusters_[id].alive = false;
    --num_active_;
    ++num_dead_in_active_;
  }

  /// Active-id list, ascending; may contain dead entries until compaction.
  const std::vector<uint32_t>& active() const { return active_; }
  size_t num_active() const { return num_active_; }

  /// Drops dead entries from the active list once they are the majority.
  void MaybeCompactActive();

  /// Wind-down drain: gathers the members of every still-alive cluster,
  /// deactivating each, and returns the rows sorted ascending. Both the
  /// degraded and the regular leftover passes start here.
  std::vector<uint32_t> DrainAliveMembers();

 private:
  std::vector<ClusterData> clusters_;
  std::vector<uint32_t> active_;
  size_t num_active_ = 0;
  size_t num_dead_in_active_ = 0;
};

}  // namespace kanon

#endif  // KANON_ALGO_CORE_CLUSTER_SET_H_
