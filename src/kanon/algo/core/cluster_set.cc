#include "kanon/algo/core/cluster_set.h"

#include <algorithm>

namespace kanon {

void ClusterSet::MaybeCompactActive() {
  if (num_dead_in_active_ * 2 < active_.size()) return;
  std::vector<uint32_t> compacted;
  compacted.reserve(num_active_);
  for (uint32_t id : active_) {
    if (clusters_[id].alive) compacted.push_back(id);
  }
  active_ = std::move(compacted);
  num_dead_in_active_ = 0;
}

std::vector<uint32_t> ClusterSet::DrainAliveMembers() {
  std::vector<uint32_t> rows;
  for (uint32_t id : active_) {
    if (!clusters_[id].alive) continue;
    rows.insert(rows.end(), clusters_[id].members.begin(),
                clusters_[id].members.end());
    Deactivate(id);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace kanon
