#include "kanon/algo/brute_force.h"

#include <algorithm>
#include <limits>

#include "kanon/algo/core/closure_store.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

Status ValidateArgs(const Dataset& dataset, const PrecomputedLoss& loss,
                    size_t k, size_t max_n) {
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > dataset.num_rows()) {
    return Status::InvalidArgument("k exceeds the number of records");
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  if (dataset.num_rows() > max_n) {
    return Status::InvalidArgument(
        "brute force is limited to " + std::to_string(max_n) +
        " records; got " + std::to_string(dataset.num_rows()));
  }
  return Status::OK();
}

// Advances `pick` to the next strictly increasing (|pick|)-combination of
// {0..m-1}; returns false when exhausted.
bool NextCombination(std::vector<size_t>* pick, size_t m) {
  const size_t len = pick->size();
  size_t pos = len;
  while (pos > 0) {
    --pos;
    if ((*pick)[pos] < m - (len - pos)) {
      ++(*pick)[pos];
      for (size_t q = pos + 1; q < len; ++q) {
        (*pick)[q] = (*pick)[q - 1] + 1;
      }
      return true;
    }
  }
  return false;
}

// Enumerates partitions of {0..n-1} into parts the policy's Ripe hook
// accepts (size >= k for every built-in), tracking the cheapest under the
// policy's PairCost ranking. Rows are assigned in order; each row either
// joins an existing part or opens a new one (canonical form prevents
// duplicate partitions). Part costs go through an interned ClosureStore:
// the same part recurs in many partitions, so each distinct part is closed
// and priced exactly once.
template <typename Policy>
class PartitionSearch {
  KANON_ASSERT_CLUSTER_POLICY(Policy);

 public:
  PartitionSearch(const Dataset& dataset, const PrecomputedLoss& loss,
                  size_t k, const Policy& policy, EngineCounters* counters)
      : dataset_(dataset),
        k_(k),
        n_(dataset.num_rows()),
        policy_(policy),
        counters_(counters),
        store_(loss) {}

  Clustering Run() {
    PhaseSpan span(CurrentTracer(), "brute-force/search");
    span.set_items(n_);
    best_loss_ = std::numeric_limits<double>::infinity();
    parts_.clear();
    Recurse(0);
    store_.ExportCounters(counters_);
    Clustering out;
    out.clusters = best_parts_;
    return out;
  }

 private:
  void Recurse(uint32_t row) {
    if (row == n_) {
      for (const auto& part : parts_) {
        if (!policy_.Ripe(part.size(), k_)) return;
      }
      // Partitions are ranked by the policy's PairCost over the total loss
      // (identity for every built-in policy).
      const double total = policy_.PairCost(CurrentLoss());
      if (total < best_loss_) {
        best_loss_ = total;
        best_parts_ = parts_;
      }
      return;
    }
    // Prune: remaining rows must be able to fill all unripe parts. Ripe is
    // contractually true at size >= k, so an unripe part is short of k.
    size_t deficit = 0;
    for (const auto& part : parts_) {
      if (!policy_.Ripe(part.size(), k_)) deficit += k_ - part.size();
    }
    if (deficit > n_ - row) return;

    // Index-based: the recursive call appends/removes parts, which may
    // reallocate parts_ and would invalidate references.
    const size_t num_parts = parts_.size();
    for (size_t p = 0; p < num_parts; ++p) {
      parts_[p].push_back(row);
      Recurse(row + 1);
      parts_[p].pop_back();
    }
    parts_.push_back({row});
    Recurse(row + 1);
    parts_.pop_back();
  }

  double CurrentLoss() {
    double total = 0.0;
    for (const auto& part : parts_) {
      total += static_cast<double>(part.size()) *
               store_.cost(store_.InternClosureOfRows(dataset_, part));
    }
    return total / static_cast<double>(n_);
  }

  const Dataset& dataset_;
  const size_t k_;
  const uint32_t n_;
  const Policy policy_;
  EngineCounters* const counters_;
  ClosureStore store_;

  std::vector<std::vector<uint32_t>> parts_;
  std::vector<std::vector<uint32_t>> best_parts_;
  double best_loss_ = 0.0;
};

}  // namespace

template <typename Policy>
Result<Clustering> OptimalKAnonymityBruteForceWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k, /*max_n=*/12));
  return PartitionSearch<Policy>(dataset, loss, k, policy, counters).Run();
}

template <typename Policy>
Result<GeneralizedTable> OptimalK1BruteForceWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k, /*max_n=*/16));
  PhaseSpan span(CurrentTracer(), "brute-force/search");
  const GeneralizationScheme& scheme = loss.scheme();
  const uint32_t n = static_cast<uint32_t>(dataset.num_rows());

  // Different companion subsets often close to the same record; interning
  // prices each distinct closure once across the whole enumeration.
  ClosureStore store(loss);
  GeneralizedTable table(loss.scheme_ptr());
  for (uint32_t i = 0; i < n; ++i) {
    // Enumerate (k-1)-subsets of {0..n-1} \ {i} via combination stepping.
    std::vector<uint32_t> others;
    for (uint32_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    const size_t m = others.size();
    std::vector<size_t> pick(k - 1);
    for (size_t t = 0; t + 1 < k; ++t) pick[t] = t;

    double best_cost = std::numeric_limits<double>::infinity();
    GeneralizedRecord best_closure = scheme.Identity(dataset.row_view(i));
    if (k == 1) {
      table.AppendRecord(best_closure);
      continue;
    }
    do {
      std::vector<uint32_t> cluster = {i};
      for (size_t t : pick) cluster.push_back(others[t]);
      const ClosureStore::Id closure =
          store.InternClosureOfRows(dataset, cluster);
      // Companion subsets are ranked by the policy's PairCost over the
      // closure cost (identity for every built-in policy).
      const double cost = policy.PairCost(store.cost(closure));
      if (cost < best_cost) {
        best_cost = cost;
        best_closure = store.record(closure);
      }
    } while (NextCombination(&pick, m));
    table.AppendRecord(best_closure);
  }
  store.ExportCounters(counters);
  return table;
}

// The public oracles pin the default-config policy — the exhaustive
// searches never carried a distance parameter, and the hooks they consume
// (PairCost, Ripe) are identical across every built-in policy.
Result<Clustering> OptimalKAnonymityBruteForce(const Dataset& dataset,
                                               const PrecomputedLoss& loss,
                                               size_t k,
                                               EngineCounters* counters) {
  return OptimalKAnonymityBruteForceWithPolicy(dataset, loss, k,
                                               LogWeightedPolicy{}, counters);
}

Result<GeneralizedTable> OptimalK1BruteForce(const Dataset& dataset,
                                             const PrecomputedLoss& loss,
                                             size_t k,
                                             EngineCounters* counters) {
  return OptimalK1BruteForceWithPolicy(dataset, loss, k, LogWeightedPolicy{},
                                       counters);
}

// The (pipeline × distance) instantiation matrix (docs/policy_engine.md).
#define KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE(POLICY)                      \
  template Result<Clustering> OptimalKAnonymityBruteForceWithPolicy(        \
      const Dataset&, const PrecomputedLoss&, size_t, const POLICY&,        \
      EngineCounters*);                                                     \
  template Result<GeneralizedTable> OptimalK1BruteForceWithPolicy(          \
      const Dataset&, const PrecomputedLoss&, size_t, const POLICY&,        \
      EngineCounters*)

KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE(WeightedPolicy);
KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE(PlainPolicy);
KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE(LogWeightedPolicy);
KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE(RatioPolicy);
KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE(NergizCliftonPolicy);

#undef KANON_INSTANTIATE_BRUTE_FORCE_PIPELINE

double ClusteringLoss(const Dataset& dataset, const PrecomputedLoss& loss,
                      const Clustering& clustering) {
  KANON_CHECK(clustering.IsPartitionOf(dataset.num_rows()),
              "clustering must partition the dataset rows");
  if (dataset.num_rows() == 0) return 0.0;
  double total = 0.0;
  for (const auto& cluster : clustering.clusters) {
    total += static_cast<double>(cluster.size()) *
             loss.ClosureCost(dataset, cluster);
  }
  return total / static_cast<double>(dataset.num_rows());
}

}  // namespace kanon
