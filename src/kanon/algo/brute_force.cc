#include "kanon/algo/brute_force.h"

#include <algorithm>
#include <limits>

#include "kanon/algo/core/closure_store.h"
#include "kanon/common/check.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

Status ValidateArgs(const Dataset& dataset, const PrecomputedLoss& loss,
                    size_t k, size_t max_n) {
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > dataset.num_rows()) {
    return Status::InvalidArgument("k exceeds the number of records");
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  if (dataset.num_rows() > max_n) {
    return Status::InvalidArgument(
        "brute force is limited to " + std::to_string(max_n) +
        " records; got " + std::to_string(dataset.num_rows()));
  }
  return Status::OK();
}

// Advances `pick` to the next strictly increasing (|pick|)-combination of
// {0..m-1}; returns false when exhausted.
bool NextCombination(std::vector<size_t>* pick, size_t m) {
  const size_t len = pick->size();
  size_t pos = len;
  while (pos > 0) {
    --pos;
    if ((*pick)[pos] < m - (len - pos)) {
      ++(*pick)[pos];
      for (size_t q = pos + 1; q < len; ++q) {
        (*pick)[q] = (*pick)[q - 1] + 1;
      }
      return true;
    }
  }
  return false;
}

// Enumerates partitions of {0..n-1} into parts of size >= k, tracking the
// cheapest. Rows are assigned in order; each row either joins an existing
// part or opens a new one (canonical form prevents duplicate partitions).
// Part costs go through an interned ClosureStore: the same part recurs in
// many partitions, so each distinct part is closed and priced exactly once.
class PartitionSearch {
 public:
  PartitionSearch(const Dataset& dataset, const PrecomputedLoss& loss,
                  size_t k, EngineCounters* counters)
      : dataset_(dataset),
        k_(k),
        n_(dataset.num_rows()),
        counters_(counters),
        store_(loss) {}

  Clustering Run() {
    PhaseSpan span(CurrentTracer(), "brute-force/search");
    span.set_items(n_);
    best_loss_ = std::numeric_limits<double>::infinity();
    parts_.clear();
    Recurse(0);
    store_.ExportCounters(counters_);
    Clustering out;
    out.clusters = best_parts_;
    return out;
  }

 private:
  void Recurse(uint32_t row) {
    if (row == n_) {
      for (const auto& part : parts_) {
        if (part.size() < k_) return;
      }
      const double total = CurrentLoss();
      if (total < best_loss_) {
        best_loss_ = total;
        best_parts_ = parts_;
      }
      return;
    }
    // Prune: remaining rows must be able to fill all undersized parts.
    size_t deficit = 0;
    for (const auto& part : parts_) {
      if (part.size() < k_) deficit += k_ - part.size();
    }
    if (deficit > n_ - row) return;

    // Index-based: the recursive call appends/removes parts, which may
    // reallocate parts_ and would invalidate references.
    const size_t num_parts = parts_.size();
    for (size_t p = 0; p < num_parts; ++p) {
      parts_[p].push_back(row);
      Recurse(row + 1);
      parts_[p].pop_back();
    }
    parts_.push_back({row});
    Recurse(row + 1);
    parts_.pop_back();
  }

  double CurrentLoss() {
    double total = 0.0;
    for (const auto& part : parts_) {
      total += static_cast<double>(part.size()) *
               store_.cost(store_.InternClosureOfRows(dataset_, part));
    }
    return total / static_cast<double>(n_);
  }

  const Dataset& dataset_;
  const size_t k_;
  const uint32_t n_;
  EngineCounters* const counters_;
  ClosureStore store_;

  std::vector<std::vector<uint32_t>> parts_;
  std::vector<std::vector<uint32_t>> best_parts_;
  double best_loss_ = 0.0;
};

}  // namespace

Result<Clustering> OptimalKAnonymityBruteForce(const Dataset& dataset,
                                               const PrecomputedLoss& loss,
                                               size_t k,
                                               EngineCounters* counters) {
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k, /*max_n=*/12));
  return PartitionSearch(dataset, loss, k, counters).Run();
}

Result<GeneralizedTable> OptimalK1BruteForce(const Dataset& dataset,
                                             const PrecomputedLoss& loss,
                                             size_t k,
                                             EngineCounters* counters) {
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k, /*max_n=*/16));
  PhaseSpan span(CurrentTracer(), "brute-force/search");
  const GeneralizationScheme& scheme = loss.scheme();
  const uint32_t n = static_cast<uint32_t>(dataset.num_rows());

  // Different companion subsets often close to the same record; interning
  // prices each distinct closure once across the whole enumeration.
  ClosureStore store(loss);
  GeneralizedTable table(loss.scheme_ptr());
  for (uint32_t i = 0; i < n; ++i) {
    // Enumerate (k-1)-subsets of {0..n-1} \ {i} via combination stepping.
    std::vector<uint32_t> others;
    for (uint32_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    const size_t m = others.size();
    std::vector<size_t> pick(k - 1);
    for (size_t t = 0; t + 1 < k; ++t) pick[t] = t;

    double best_cost = std::numeric_limits<double>::infinity();
    GeneralizedRecord best_closure = scheme.Identity(dataset.row_view(i));
    if (k == 1) {
      table.AppendRecord(best_closure);
      continue;
    }
    do {
      std::vector<uint32_t> cluster = {i};
      for (size_t t : pick) cluster.push_back(others[t]);
      const ClosureStore::Id closure =
          store.InternClosureOfRows(dataset, cluster);
      const double cost = store.cost(closure);
      if (cost < best_cost) {
        best_cost = cost;
        best_closure = store.record(closure);
      }
    } while (NextCombination(&pick, m));
    table.AppendRecord(best_closure);
  }
  store.ExportCounters(counters);
  return table;
}

double ClusteringLoss(const Dataset& dataset, const PrecomputedLoss& loss,
                      const Clustering& clustering) {
  KANON_CHECK(clustering.IsPartitionOf(dataset.num_rows()),
              "clustering must partition the dataset rows");
  if (dataset.num_rows() == 0) return 0.0;
  double total = 0.0;
  for (const auto& cluster : clustering.clusters) {
    total += static_cast<double>(cluster.size()) *
             loss.ClosureCost(dataset, cluster);
  }
  return total / static_cast<double>(dataset.num_rows());
}

}  // namespace kanon
