#include "kanon/algo/diverse_anonymizer.h"

#include <algorithm>
#include <limits>

#include "kanon/algo/agglomerative_engine.h"
#include "kanon/algo/core/closure_store.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

// Counts distinct class values among `rows` with a flat seen-bitmap over
// the (small) class domain; `seen` is caller-owned scratch, reused across
// calls to keep the repair loop allocation-free.
size_t DistinctClasses(const Dataset& dataset,
                       const std::vector<uint32_t>& rows,
                       std::vector<uint8_t>* seen) {
  seen->assign(dataset.class_domain().size(), 0);
  size_t distinct = 0;
  for (uint32_t row : rows) {
    uint8_t& flag = (*seen)[dataset.class_of(row)];
    distinct += 1 - flag;
    flag = 1;
  }
  return distinct;
}

}  // namespace

template <typename Policy>
Result<Clustering> LDiverseClusterWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k, size_t l,
    const AgglomerativeOptions& options, const Policy& policy) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  if (!dataset.has_class_column()) {
    return Status::InvalidArgument(
        "ℓ-diverse anonymization requires a class column");
  }
  if (l < 1) {
    return Status::InvalidArgument("l must be at least 1");
  }
  // Feasibility: the dataset itself must carry ℓ distinct classes.
  std::vector<uint8_t> seen;
  std::vector<uint32_t> all_rows(dataset.num_rows());
  for (uint32_t i = 0; i < dataset.num_rows(); ++i) all_rows[i] = i;
  const size_t total_classes = DistinctClasses(dataset, all_rows, &seen);
  if (total_classes < l) {
    return Status::FailedPrecondition(
        "dataset carries only " + std::to_string(total_classes) +
        " distinct class values; cannot be " + std::to_string(l) +
        "-diverse");
  }

  KANON_ASSIGN_OR_RETURN(
      Clustering clustering,
      AgglomerativeClusterWithPolicy(dataset, loss, k, options, policy));

  // Repair pass: merge non-diverse clusters into the cheapest partner.
  // Each merge removes one cluster, so this terminates; a single cluster
  // holding the whole dataset is ℓ-diverse by the feasibility check.
  // Candidate-union costs go through an interned ClosureStore: different
  // unions often close to the same generalized record, which is then
  // priced once across the whole repair.
  PhaseSpan repair_span(CurrentTracer(), "diverse/repair");
  ClosureStore store(loss);
  for (;;) {
    size_t violator = SIZE_MAX;
    for (size_t c = 0; c < clustering.clusters.size(); ++c) {
      if (DistinctClasses(dataset, clustering.clusters[c], &seen) < l) {
        violator = c;
        break;
      }
    }
    if (violator == SIZE_MAX) break;
    KANON_CHECK(clustering.clusters.size() > 1,
                "feasibility check guarantees a diverse final cluster");

    // Cheapest partner, ranked by the policy's PairCost over the closure
    // cost of the union (identity for every built-in policy).
    size_t best = SIZE_MAX;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < clustering.clusters.size(); ++c) {
      if (c == violator) continue;
      std::vector<uint32_t> merged = clustering.clusters[violator];
      merged.insert(merged.end(), clustering.clusters[c].begin(),
                    clustering.clusters[c].end());
      const double cost =
          policy.PairCost(store.cost(store.InternClosureOfRows(dataset, merged)));
      if (cost < best_cost) {
        best_cost = cost;
        best = c;
      }
    }
    std::vector<uint32_t>& target = clustering.clusters[best];
    const std::vector<uint32_t>& source = clustering.clusters[violator];
    target.insert(target.end(), source.begin(), source.end());
    std::sort(target.begin(), target.end());
    clustering.clusters.erase(clustering.clusters.begin() +
                              static_cast<ptrdiff_t>(violator));
  }
  store.ExportCounters(options.counters);
  return clustering;
}

// The public entries dispatch options.distance to a policy exactly once;
// the clustering stage and the repair ranking then run on inlined hooks.
Result<Clustering> LDiverseCluster(const Dataset& dataset,
                                   const PrecomputedLoss& loss, size_t k,
                                   size_t l,
                                   const AgglomerativeOptions& options) {
  return DispatchDistancePolicy(
      options.distance, options.params, [&](const auto& policy) {
        return LDiverseClusterWithPolicy(dataset, loss, k, l, options, policy);
      });
}

Result<GeneralizedTable> LDiverseKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k, size_t l,
    const AgglomerativeOptions& options) {
  KANON_ASSIGN_OR_RETURN(Clustering clustering,
                         LDiverseCluster(dataset, loss, k, l, options));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

// The (pipeline × distance) instantiation matrix (docs/policy_engine.md).
#define KANON_INSTANTIATE_DIVERSE_PIPELINE(POLICY)                          \
  template Result<Clustering> LDiverseClusterWithPolicy(                    \
      const Dataset&, const PrecomputedLoss&, size_t, size_t,               \
      const AgglomerativeOptions&, const POLICY&)

KANON_INSTANTIATE_DIVERSE_PIPELINE(WeightedPolicy);
KANON_INSTANTIATE_DIVERSE_PIPELINE(PlainPolicy);
KANON_INSTANTIATE_DIVERSE_PIPELINE(LogWeightedPolicy);
KANON_INSTANTIATE_DIVERSE_PIPELINE(RatioPolicy);
KANON_INSTANTIATE_DIVERSE_PIPELINE(NergizCliftonPolicy);

#undef KANON_INSTANTIATE_DIVERSE_PIPELINE

}  // namespace kanon
