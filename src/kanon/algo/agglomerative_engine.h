#ifndef KANON_ALGO_AGGLOMERATIVE_ENGINE_H_
#define KANON_ALGO_AGGLOMERATIVE_ENGINE_H_

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/core/closure_store.h"
#include "kanon/algo/core/cluster_set.h"
#include "kanon/algo/core/merge_heap.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"
#include "kanon/common/parallel.h"
#include "kanon/loss/kernels.h"
#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/tracer.h"

// The templated agglomerative engine (docs/policy_engine.md): Algorithm 1/2
// on the shared clustering core, with every per-pair decision supplied by a
// ClusterPolicy as an inlinable hook instead of the runtime EvalDistance
// switch. The five built-in policies are explicitly instantiated in
// agglomerative.cc (and extern-declared below); a new policy instantiates
// the engine from its own translation unit without touching any pipeline
// file — that is the extensibility contract this header exists for.

namespace kanon {

namespace internal {

// Sweeps whose per-item work is only O(r) (a handful of join-table lookups)
// run inline below this size; the heavy O(n·r)-per-item scans always fan
// out. Purely an overhead knob — results are identical either way.
inline constexpr size_t kAgglomerativeCheapSweepSerialBelow = 2048;

// The basic and modified variants of Algorithm 1, rewritten on the shared
// clustering core: ClusterSet owns the alive/dead bookkeeping, ClosureStore
// hash-conses every cluster closure (and memoizes its cost), and MergeHeap
// carries the two-best candidates with the stale-entry heap maintenance.
// `Policy` supplies the distance, the (a)symmetry of the merge rule, and
// the ripeness predicate; all hooks inline into the sweeps.
template <typename Policy>
class AgglomerativeEngine {
  KANON_ASSERT_CLUSTER_POLICY(Policy);

 public:
  AgglomerativeEngine(const Dataset& dataset, const PrecomputedLoss& loss,
                      size_t k, const AgglomerativeOptions& options,
                      const Policy& policy)
      : dataset_(dataset),
        loss_(loss),
        scheme_(loss.scheme()),
        k_(k),
        options_(options),
        policy_(policy),
        ctx_(options.run_context),
        num_attrs_(dataset.num_attributes()),
        tracer_(CurrentTracer()),
        merge_cost_(CurrentMetrics() == nullptr
                        ? nullptr
                        : CurrentMetrics()->GetHistogram(
                              "merge.cost", {0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                                             0.6, 0.7, 0.8, 0.9, 1.0})),
        kernels_(dataset, loss),
        store_(loss),
        heap_(&clusters_, options.aggressive_heap_rebuild, options.counters) {}

  Result<Clustering> Run() {
    {
      PhaseSpan span(tracer_, "agglomerative/init");
      KANON_RETURN_NOT_OK(InitSingletons());
    }
    {
      PhaseSpan span(tracer_, "agglomerative/heap-drain");
      KANON_RETURN_NOT_OK(MainLoop());
    }
    PhaseSpan span(tracer_, "agglomerative/finalize");
    if (Stopped()) {
      FinalizeDegraded();
    } else {
      DistributeLeftover();
    }
    if (options_.heap_rebuilds_out != nullptr) {
      *options_.heap_rebuilds_out = heap_.rebuilds();
    }
    store_.ExportCounters(options_.counters);
    Clustering out;
    for (uint32_t id : final_) {
      out.clusters.push_back(std::move(clusters_.cluster(id).members));
    }
    return out;
  }

 private:
  // One cooperative checkpoint per engine iteration.
  bool CheckPoint(const char* stage) {
    return ctx_ != nullptr && ctx_->CheckPoint(stage);
  }

  bool Stopped() const { return ctx_ != nullptr && ctx_->stopped(); }

  void CountChunks(size_t n) {
    if (options_.counters != nullptr) {
      options_.counters->parallel_chunks += ParallelChunkCount(n);
    }
  }

  // d(A ∪ B) computed attribute-wise through the raw join tables and the
  // flat cost rows; O(r), same additions in the same order as the checked
  // accessor loop it replaced.
  double UnionCost(const ClusterData& a, const ClusterData& b) const {
    return kernels_.UnionCost(store_.record(a.closure),
                              store_.record(b.closure));
  }

  double DistFromUnionCost(uint32_t a, uint32_t b, double d_union) const {
    const ClusterData& ca = clusters_.cluster(a);
    const ClusterData& cb = clusters_.cluster(b);
    return policy_.Distance(ca.members.size(), cb.members.size(),
                            ca.members.size() + cb.members.size(), ca.cost,
                            cb.cost, d_union);
  }

  double Dist(uint32_t a, uint32_t b) const {
    return DistFromUnionCost(
        a, b, UnionCost(clusters_.cluster(a), clusters_.cluster(b)));
  }

  // Interns a closure and mirrors its memoized cost into the cluster.
  void SetClosure(ClusterData* c, const GeneralizedRecord& closure) {
    c->closure = store_.Intern(closure);
    c->cost = store_.cost(c->closure);
  }

  // Exact two-best of x over every active cluster, O(active · r), spread
  // over the worker threads: chunk-local two-bests merged in chunk order
  // reproduce the serial ascending scan exactly.
  CandidatePair ComputeTwoBest(uint32_t x) const {
    const size_t m = clusters_.active().size();
    std::vector<CandidatePair> parts(ParallelChunkCount(m));
    ParallelChunks(
        m, options_.num_threads, nullptr, "agglomerative/rescan",
        [&](size_t chunk, size_t begin, size_t end) {
          CandidatePair local;
          for (size_t t = begin; t < end; ++t) {
            const uint32_t y = clusters_.active()[t];
            if (y == x || !clusters_.Alive(y)) continue;
            OfferToTwoBest(&local, y, Dist(x, y));
          }
          parts[chunk] = local;
        },
        kAgglomerativeCheapSweepSerialBelow);
    CandidatePair c;
    for (const CandidatePair& p : parts) {
      OfferToTwoBest(&c, p.c1, p.d1);
      OfferToTwoBest(&c, p.c2, p.d2);
    }
    c.second_valid = true;
    return c;
  }

  // Recomputes x's two-best over every active cluster.
  void FullRescan(uint32_t x) {
    PhaseSpan span(tracer_, "agglomerative/rescan");
    if (options_.counters != nullptr) ++options_.counters->rescans;
    CountChunks(clusters_.active().size());
    heap_.candidate(x) = ComputeTwoBest(x);
    heap_.PushCandidate(x);
  }

  // Exhaustively checks that `dist` is the minimum over all alive pairs.
  void VerifyGlobalMinimum(double dist) const {
    for (uint32_t a : clusters_.active()) {
      if (!clusters_.Alive(a)) continue;
      for (uint32_t b : clusters_.active()) {
        if (a == b || !clusters_.Alive(b)) continue;
        KANON_CHECK(Dist(a, b) >= dist - 1e-12,
                    "engine merged a non-minimal pair");
      }
    }
  }

  Status InitSingletons() {
    const size_t n = dataset_.num_rows();
    clusters_.Reserve(2 * n);
    for (uint32_t i = 0; i < n; ++i) {
      ClusterData single;
      single.members = {i};
      clusters_.Activate(clusters_.Add(std::move(single)));
    }
    // Singleton closures, O(n·r); items are disjoint slots. The raw
    // closures land in a scratch array and intern serially after the
    // barrier — ClosureStore is single-threaded by design, and the serial
    // pass prices each distinct closure exactly once.
    std::vector<GeneralizedRecord> raw(n);
    CountChunks(n);
    const SweepStatus closures = ParallelFor(
        n, options_.num_threads, ctx_, "agglomerative/init",
        [&](size_t i) {
          raw[i] = scheme_.Identity(dataset_.row_view(i));
        },
        /*done=*/nullptr, kAgglomerativeCheapSweepSerialBelow);
    // A stop here leaves the closures unset; the degraded wind-down pools
    // records by membership only, so that is safe.
    if (!closures.completed) return Status::OK();
    {
      PhaseSpan intern_span(tracer_, "agglomerative/closure-intern");
      intern_span.set_items(n);
      for (uint32_t i = 0; i < n; ++i) {
        SetClosure(&clusters_.cluster(i), raw[i]);
      }
    }
    raw.clear();
    raw.shrink_to_fit();

    heap_.EnsureSize(n);
    // The all-pairs two-best scan is the O(n²·r) part of setup; it honors
    // the same controls as the merge loop so tight deadlines bail early.
    // Heap pushes happen after the sweep, on one thread, in index order.
    //
    // Every cluster is still a singleton here, so d(A ∪ B) is the pairwise
    // closure cost and one columnar PairCostSweep per row replaces n
    // closure joins. The two-best is then selected by offering distances
    // in ascending y — exactly the order ComputeTwoBest scans the active
    // set during init — so the chosen candidates are identical.
    CountChunks(n);
    std::vector<Status> errors(ParallelChunkCount(n));
    const SweepStatus scan = ParallelChunks(
        n, options_.num_threads, ctx_, "agglomerative/init",
        [&](size_t chunk, size_t begin, size_t end) {
          std::vector<double> pair(n);
          for (size_t i = begin; i < end; ++i) {
            if (failpoint::AnyArmed()) {
              Status s = failpoint::Check("agglomerative.closure");
              if (!s.ok()) {
                errors[chunk] = std::move(s);
                return;
              }
            }
            kernels_.PairCostSweep(static_cast<uint32_t>(i), pair.data());
            const double cost_i = clusters_.cluster(i).cost;
            CandidatePair c;
            for (size_t y = 0; y < n; ++y) {
              if (y == i) continue;
              const double d = policy_.Distance(
                  1, 1, 2, cost_i, clusters_.cluster(y).cost, pair[y]);
              OfferToTwoBest(&c, static_cast<uint32_t>(y), d);
            }
            c.second_valid = true;
            heap_.candidate(static_cast<uint32_t>(i)) = c;
          }
        });
    for (Status& s : errors) {
      if (!s.ok()) return std::move(s);
    }
    if (!scan.completed) return Status::OK();
    for (uint32_t i = 0; i < n; ++i) {
      heap_.PushCandidate(i);
    }
    return Status::OK();
  }

  void Deactivate(uint32_t c) {
    clusters_.Deactivate(c);
    heap_.NoteDeactivated(c);
  }

  uint32_t NewCluster(ClusterData data) {
    const uint32_t id = clusters_.Add(std::move(data));
    heap_.EnsureSize(id + 1);
    heap_.ResetCandidate(id);
    return id;
  }

  uint32_t Merge(uint32_t a, uint32_t b) {
    ClusterData merged;
    merged.members = clusters_.cluster(a).members;
    merged.members.insert(merged.members.end(),
                          clusters_.cluster(b).members.begin(),
                          clusters_.cluster(b).members.end());
    std::sort(merged.members.begin(), merged.members.end());
    merged.closure =
        store_.InternJoin(clusters_.cluster(a).closure,
                          clusters_.cluster(b).closure);
    merged.cost = store_.cost(merged.closure);
    Deactivate(a);
    Deactivate(b);
    if (options_.counters != nullptr) ++options_.counters->merges;
    return NewCluster(std::move(merged));
  }

  // One pass over the active set after a merge. When `added` is not
  // kNoCluster it is the freshly created cluster: its two-best is built, it
  // is offered to everyone, and it joins the active set. Clusters whose
  // candidates were wiped out are rescanned at the end (rare). The pure
  // O(active·r) distance computations run on the worker threads; the
  // order-sensitive Offer/Repair bookkeeping replays them serially in
  // active order, so the outcome matches the single-threaded pass exactly.
  void RepairAndMaybeAdd(uint32_t added) {
    PhaseSpan span(tracer_, "agglomerative/repair");
    // The policy decides at compile time whether the merge rule is
    // direction-sensitive; symmetric policies never price the reverse pair.
    constexpr bool asymmetric = Policy::kAsymmetric;
    const std::vector<uint32_t>& active = clusters_.active();
    const size_t m = active.size();
    std::vector<double> d_added_x;
    std::vector<double> d_x_added;
    if (added != kNoCluster) {
      d_added_x.assign(m, kInfDist);
      d_x_added.assign(m, kInfDist);
      CountChunks(m);
      ParallelChunks(
          m, options_.num_threads, nullptr, "agglomerative/repair",
          [&](size_t /*chunk*/, size_t begin, size_t end) {
            for (size_t t = begin; t < end; ++t) {
              const uint32_t x = active[t];
              if (!clusters_.Alive(x)) continue;
              const double d_union = UnionCost(clusters_.cluster(added),
                                               clusters_.cluster(x));
              d_added_x[t] = DistFromUnionCost(added, x, d_union);
              d_x_added[t] = asymmetric
                                 ? DistFromUnionCost(x, added, d_union)
                                 : d_added_x[t];
            }
          },
          kAgglomerativeCheapSweepSerialBelow);
    }
    std::vector<uint32_t> needs_rescan;
    for (size_t t = 0; t < m; ++t) {
      const uint32_t x = active[t];
      if (!clusters_.Alive(x)) continue;
      if (added != kNoCluster) {
        heap_.Offer(added, x, d_added_x[t]);
      }
      if (heap_.Repair(x, added,
                       added != kNoCluster ? d_x_added[t] : kInfDist)) {
        needs_rescan.push_back(x);
      } else if (added != kNoCluster) {
        heap_.Offer(x, added, d_x_added[t]);
      }
    }
    if (added != kNoCluster) {
      clusters_.Activate(added);
    }
    clusters_.MaybeCompactActive();
    for (uint32_t x : needs_rescan) {
      if (clusters_.Alive(x)) FullRescan(x);
    }
  }

  // Algorithm 2: shrinks a ripe cluster to exactly k records; ejected
  // records are returned (they re-enter the pool as singletons). Each pass
  // gets every leave-one-out closure from one prefix/suffix join sweep —
  // O(len·r) per ejection instead of O(len²·r).
  std::vector<uint32_t> ShrinkToK(uint32_t id) {
    PhaseSpan span(tracer_, "agglomerative/shrink");
    std::vector<uint32_t> ejected;
    ClusterData& c = clusters_.cluster(id);
    while (c.members.size() > k_) {
      const size_t len = c.members.size();
      std::vector<GeneralizedRecord> loo =
          LeaveOneOutClosures(dataset_, scheme_, c.members);
      loss_.RecordCostMany(loo, &shrink_costs_);
      size_t eject_pos = 0;
      double best_di = -kInfDist;
      for (size_t pos = 0; pos < len; ++pos) {
        // d(Ŝ ∖ {R̂_pos}); dist(Ŝ, Ŝ ∖ {R̂_pos}) has union Ŝ itself.
        const double d_minus = shrink_costs_[pos];
        const double di =
            policy_.Distance(len, len - 1, len, c.cost, d_minus, c.cost);
        if (di > best_di) {
          best_di = di;
          eject_pos = pos;
        }
      }
      ejected.push_back(c.members[eject_pos]);
      c.members.erase(c.members.begin() +
                      static_cast<ptrdiff_t>(eject_pos));
      SetClosure(&c, loo[eject_pos]);
    }
    return ejected;
  }

  uint32_t NewSingleton(uint32_t row) {
    ClusterData single;
    single.members = {row};
    const uint32_t id = NewCluster(std::move(single));
    SetClosure(&clusters_.cluster(id),
               scheme_.Identity(dataset_.row_view(row)));
    return id;
  }

  Status MainLoop() {
    if (Stopped()) return Status::OK();  // Init was interrupted.
    while (clusters_.num_active() > 1) {
      if (CheckPoint("agglomerative/merge")) return Status::OK();
      KANON_FAILPOINT("agglomerative.closure");
      heap_.MaybeRebuild();
      KANON_CHECK(!heap_.empty(), "active clusters must have heap entries");
      const MergeCandidate entry = heap_.PopTop();
      // Distances are immutable per pair, so an entry is valid iff both
      // endpoints are alive; invariant A guarantees the first valid pop is
      // a globally closest pair.
      if (!clusters_.Alive(entry.a) || !clusters_.Alive(entry.b)) continue;
      if (options_.check_exact_merges) {
        VerifyGlobalMinimum(entry.dist);
      }
      if (merge_cost_ != nullptr) merge_cost_->Observe(entry.dist);
      const uint32_t merged = Merge(entry.a, entry.b);
      if (policy_.Ripe(clusters_.cluster(merged).members.size(), k_)) {
        if (options_.modified &&
            clusters_.cluster(merged).members.size() > k_) {
          const std::vector<uint32_t> ejected = ShrinkToK(merged);
          final_.push_back(merged);
          RepairAndMaybeAdd(kNoCluster);
          for (uint32_t row : ejected) {
            RepairAndMaybeAdd(NewSingleton(row));
          }
        } else {
          final_.push_back(merged);
          RepairAndMaybeAdd(kNoCluster);
        }
      } else {
        RepairAndMaybeAdd(merged);
      }
    }
    return Status::OK();
  }

  // Every record of `leftover` joins the final cluster minimizing
  // dist({R}, S) — line 10 of Algorithm 1, shared with the degraded
  // wind-down's straggler path.
  void AttachToNearestFinal(const std::vector<uint32_t>& leftover) {
    for (uint32_t row : leftover) {
      ClusterData single;
      single.members = {row};
      SetClosure(&single, scheme_.Identity(dataset_.row_view(row)));
      size_t best_pos = 0;
      double best_dist = kInfDist;
      for (size_t pos = 0; pos < final_.size(); ++pos) {
        const ClusterData& target = clusters_.cluster(final_[pos]);
        const double d_union = UnionCost(single, target);
        const double d = policy_.Distance(
            1, target.members.size(), target.members.size() + 1, single.cost,
            target.cost, d_union);
        if (d < best_dist) {
          best_dist = d;
          best_pos = pos;
        }
      }
      ClusterData& target = clusters_.cluster(final_[best_pos]);
      target.members.push_back(row);
      std::sort(target.members.begin(), target.members.end());
      target.closure = store_.InternJoin(target.closure, single.closure);
      target.cost = store_.cost(target.closure);
    }
  }

  // Graceful wind-down after an interruption (deadline, cancel, budget):
  // records still in undersized clusters are pooled into one catch-all
  // cluster when they number at least k, and otherwise attached to their
  // nearest finished cluster — so the result is k-anonymous either way.
  void FinalizeDegraded() {
    std::vector<uint32_t> leftover = clusters_.DrainAliveMembers();
    if (leftover.empty()) return;  // Interrupted after the last ripening.
    if (ctx_ != nullptr) {
      ctx_->NoteDegraded("agglomerative/merge");
      ctx_->AddRecordsSuppressed(leftover.size());
    }
    if (final_.empty() || leftover.size() >= k_) {
      // One catch-all cluster. When no cluster ripened yet the pool is the
      // whole dataset, and k <= n makes it valid.
      ClusterData pool;
      pool.members = std::move(leftover);
      const uint32_t id = NewCluster(std::move(pool));
      ClusterData& c = clusters_.cluster(id);
      c.closure = store_.InternClosureOfRows(dataset_, c.members);
      c.cost = store_.cost(c.closure);
      final_.push_back(id);
      return;
    }
    // Fewer than k stragglers: nearest-final attachment, as in the normal
    // leftover pass (one cheap scan per record).
    AttachToNearestFinal(leftover);
  }

  void DistributeLeftover() {
    std::vector<uint32_t> leftover = clusters_.DrainAliveMembers();
    if (leftover.empty()) return;
    KANON_CHECK(!final_.empty(),
                "no ripe cluster to absorb leftover records (k > n?)");
    AttachToNearestFinal(leftover);
  }

  const Dataset& dataset_;
  const PrecomputedLoss& loss_;
  const GeneralizationScheme& scheme_;
  const size_t k_;
  const AgglomerativeOptions& options_;
  const Policy policy_;
  RunContext* const ctx_;
  const size_t num_attrs_;
  // Telemetry sinks of the enclosing run (null when telemetry is off);
  // resolved once at construction, on the run's coordinating thread.
  Tracer* const tracer_;
  Histogram* const merge_cost_;

  // Raw columnar tables for the hot sweeps; constructing it primes the
  // dataset's attribute-major mirror on this (coordinating) thread.
  LossKernels kernels_;
  ClosureStore store_;
  ClusterSet clusters_;
  MergeHeap heap_;
  std::vector<uint32_t> final_;
  std::vector<double> shrink_costs_;  // ShrinkToK scratch, reused per pass.
};

}  // namespace internal

template <typename Policy>
Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const AgglomerativeOptions& options, const Policy& policy) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  const size_t n = dataset.num_rows();
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > n) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds the number of records " +
                                   std::to_string(n));
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  if (k == 1) {
    // Identity clustering: nothing to anonymize.
    Clustering out;
    out.clusters.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      out.clusters.push_back({i});
    }
    return out;
  }
  return internal::AgglomerativeEngine<Policy>(dataset, loss, k, options,
                                               policy)
      .Run();
}

template <typename Policy>
Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const AgglomerativeOptions& options, const Policy& policy) {
  KANON_ASSIGN_OR_RETURN(
      Clustering clustering,
      AgglomerativeClusterWithPolicy(dataset, loss, k, options, policy));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

// The five built-in policies are instantiated once, in agglomerative.cc;
// client code linking against the library never re-instantiates them.
extern template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const WeightedPolicy&);
extern template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const PlainPolicy&);
extern template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const LogWeightedPolicy&);
extern template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const RatioPolicy&);
extern template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const NergizCliftonPolicy&);
extern template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const WeightedPolicy&);
extern template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const PlainPolicy&);
extern template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const LogWeightedPolicy&);
extern template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const RatioPolicy&);
extern template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const NergizCliftonPolicy&);

}  // namespace kanon

#endif  // KANON_ALGO_AGGLOMERATIVE_ENGINE_H_
