#include "kanon/algo/clustering.h"

#include <algorithm>

#include "kanon/common/check.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

size_t Clustering::num_rows() const {
  size_t total = 0;
  for (const auto& cluster : clusters) {
    total += cluster.size();
  }
  return total;
}

size_t Clustering::min_cluster_size() const {
  size_t smallest = SIZE_MAX;
  for (const auto& cluster : clusters) {
    smallest = std::min(smallest, cluster.size());
  }
  return clusters.empty() ? 0 : smallest;
}

bool Clustering::IsPartitionOf(size_t n) const {
  std::vector<bool> seen(n, false);
  size_t count = 0;
  for (const auto& cluster : clusters) {
    for (uint32_t row : cluster) {
      if (row >= n || seen[row]) return false;
      seen[row] = true;
      ++count;
    }
  }
  return count == n;
}

GeneralizedTable TableFromClustering(
    std::shared_ptr<const GeneralizationScheme> scheme, const Dataset& dataset,
    const Clustering& clustering) {
  KANON_CHECK(scheme != nullptr, "scheme must not be null");
  KANON_CHECK(clustering.IsPartitionOf(dataset.num_rows()),
              "clustering must partition the dataset rows");
  PhaseSpan span(CurrentTracer(), "table-from-clustering");
  GeneralizedTable table =
      GeneralizedTable::Identity(scheme, dataset);
  for (const auto& cluster : clustering.clusters) {
    const GeneralizedRecord closure = scheme->ClosureOfRows(dataset, cluster);
    for (uint32_t row : cluster) {
      table.SetRecord(row, closure);
    }
  }
  return table;
}

}  // namespace kanon
