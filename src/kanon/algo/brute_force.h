#ifndef KANON_ALGO_BRUTE_FORCE_H_
#define KANON_ALGO_BRUTE_FORCE_H_

#include "kanon/algo/clustering.h"
#include "kanon/algo/core/engine_counters.h"
#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Exhaustively optimal k-anonymization in the clustering model: the
/// partition into parts of size ≥ k minimizing Π(D, g(D)). Exponential in
/// n — a test oracle for tiny inputs (n ≤ ~10). Part closures are interned
/// in a ClosureStore, so the cost of a part recurring across partitions is
/// computed once; the optional `counters` (not owned) reports the hit rate.
Result<Clustering> OptimalKAnonymityBruteForce(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    EngineCounters* counters = nullptr);

/// Exhaustively optimal (k,1)-anonymization (Section V-B.1): for every
/// record, the best (k−1)-subset of companions. O(n·C(n−1,k−1)) — a test
/// oracle for tiny inputs. Returns the optimal table. Combination closures
/// are interned as in OptimalKAnonymityBruteForce.
Result<GeneralizedTable> OptimalK1BruteForce(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    EngineCounters* counters = nullptr);

/// Policy-parameterized variants (docs/policy_engine.md): the policy's
/// PairCost hook ranks partition totals / companion-subset costs and Ripe
/// accepts parts; every built-in distance policy keeps both at the
/// identity defaults. Defined in brute_force.cc and explicitly instantiated
/// per (pipeline × distance).
template <typename Policy>
Result<Clustering> OptimalKAnonymityBruteForceWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, EngineCounters* counters = nullptr);

template <typename Policy>
Result<GeneralizedTable> OptimalK1BruteForceWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, EngineCounters* counters = nullptr);

/// The information loss of a clustering under `loss`:
/// Π = (1/n) Σ_S |S|·d(S) (eq. (7)).
double ClusteringLoss(const Dataset& dataset, const PrecomputedLoss& loss,
                      const Clustering& clustering);

}  // namespace kanon

#endif  // KANON_ALGO_BRUTE_FORCE_H_
