#ifndef KANON_ALGO_DISTANCE_H_
#define KANON_ALGO_DISTANCE_H_

#include <cstddef>
#include <string>

namespace kanon {

/// The cluster distance functions of Section V-A.2. All are defined in
/// terms of the generalization costs d(A), d(B), d(A∪B) and the cluster
/// sizes; the paper's equation numbers are noted per enumerator.
enum class DistanceFunction {
  /// (8): |A∪B|·d(A∪B) − |A|·d(A) − |B|·d(B). Favors balanced growth.
  kWeighted,
  /// (9): d(A∪B) − d(A) − d(B). May be negative; unbalanced growth.
  kPlain,
  /// (10): (d(A∪B) − d(A) − d(B)) / log2|A∪B|. Favors growing one cluster.
  kLogWeighted,
  /// (11): d(A∪B) / (d(A) + d(B) + ε). Relative cost increase.
  kRatio,
  /// Nergiz & Clifton's asymmetric variant: d(A∪B) − d(B).
  kNergizClifton,
};

/// All distance functions, in a stable order (for sweeps and benches).
inline constexpr DistanceFunction kAllDistanceFunctions[] = {
    DistanceFunction::kWeighted, DistanceFunction::kPlain,
    DistanceFunction::kLogWeighted, DistanceFunction::kRatio,
    DistanceFunction::kNergizClifton};

/// Short name, e.g. "dist1(8)".
std::string DistanceFunctionName(DistanceFunction f);

/// Parameters shared by the distance functions.
struct DistanceParams {
  /// The additive constant ε of eq. (11); the paper uses 0.1.
  double epsilon = 0.1;
};

/// Evaluates dist(A, B) given the ingredients. `size_union` is |A∪B| —
/// equal to size_a + size_b for disjoint clusters, but passed explicitly so
/// the modified agglomerative algorithm can evaluate dist(Ŝ, Ŝ∖{R}) on
/// overlapping arguments as the paper specifies.
///
/// This out-of-line switch is the *scalar reference implementation*: the
/// engines themselves run on the inlined Distance hook of their ClusterPolicy
/// (algo/policy.h, dispatched once per pipeline entry — never per pair), and
/// the policy conformance tests plus the dispatch-vs-policy micro-benchmark
/// pin each policy's hook to this function bit for bit. See
/// docs/policy_engine.md.
double EvalDistance(DistanceFunction f, const DistanceParams& params,
                    size_t size_a, size_t size_b, size_t size_union,
                    double d_a, double d_b, double d_union);

}  // namespace kanon

#endif  // KANON_ALGO_DISTANCE_H_
