#ifndef KANON_ALGO_DIVERSE_ANONYMIZER_H_
#define KANON_ALGO_DIVERSE_ANONYMIZER_H_

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/clustering.h"
#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// k-anonymization with distinct ℓ-diversity (Section II points to
/// Machanavajjhala et al.; the paper notes that ℓ-diversity "fits also in
/// our framework" and leaves it to future work — this is that extension
/// for the clustering-based pipeline).
///
/// Runs the agglomerative k-anonymizer and then repairs diversity: any
/// cluster whose rows carry fewer than ℓ distinct class values is merged
/// with the cluster whose union closure is cheapest, until every cluster
/// is ℓ-diverse. The result is k-anonymous AND distinct ℓ-diverse.
///
/// Requires dataset.has_class_column(), 1 ≤ ℓ ≤ #classes, and that the
/// dataset as a whole carries at least ℓ distinct class values (otherwise
/// no generalization can be ℓ-diverse and an error is returned).
Result<Clustering> LDiverseCluster(const Dataset& dataset,
                                   const PrecomputedLoss& loss, size_t k,
                                   size_t l,
                                   const AgglomerativeOptions& options);

/// Convenience: cluster and translate to a generalized table.
Result<GeneralizedTable> LDiverseKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k, size_t l,
    const AgglomerativeOptions& options);

/// Policy-parameterized variant (docs/policy_engine.md): the clustering
/// stage runs on the policy's inlined Distance hook and the repair pass
/// ranks merge partners through PairCost. `options.distance` is ignored —
/// the policy IS the distance. Defined in diverse_anonymizer.cc and
/// explicitly instantiated per (pipeline × distance).
template <typename Policy>
Result<Clustering> LDiverseClusterWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k, size_t l,
    const AgglomerativeOptions& options, const Policy& policy);

}  // namespace kanon

#endif  // KANON_ALGO_DIVERSE_ANONYMIZER_H_
