#include "kanon/algo/distance.h"

#include <cmath>
#include <limits>

#include "kanon/common/check.h"

namespace kanon {

std::string DistanceFunctionName(DistanceFunction f) {
  switch (f) {
    case DistanceFunction::kWeighted:
      return "dist1(8)";
    case DistanceFunction::kPlain:
      return "dist2(9)";
    case DistanceFunction::kLogWeighted:
      return "dist3(10)";
    case DistanceFunction::kRatio:
      return "dist4(11)";
    case DistanceFunction::kNergizClifton:
      return "distNC";
  }
  return "unknown";
}

double EvalDistance(DistanceFunction f, const DistanceParams& params,
                    size_t size_a, size_t size_b, size_t size_union,
                    double d_a, double d_b, double d_union) {
  KANON_DCHECK(size_a > 0 && size_b > 0 && size_union > 1);
  switch (f) {
    case DistanceFunction::kWeighted:
      return static_cast<double>(size_union) * d_union -
             static_cast<double>(size_a) * d_a -
             static_cast<double>(size_b) * d_b;
    case DistanceFunction::kPlain:
      return d_union - d_a - d_b;
    case DistanceFunction::kLogWeighted:
      return (d_union - d_a - d_b) /
             std::log2(static_cast<double>(size_union));
    case DistanceFunction::kRatio: {
      // Two zero-cost closures (e.g. identical singleton records) with
      // epsilon = 0 would divide by zero and poison the merge heap with
      // inf/NaN. A zero-cost union is a perfect merge (distance 0); a
      // costly union over zero-cost parts is maximally unattractive.
      const double denom = d_a + d_b + params.epsilon;
      if (denom <= 0.0) {
        return d_union <= 0.0 ? 0.0
                              : std::numeric_limits<double>::infinity();
      }
      return d_union / denom;
    }
    case DistanceFunction::kNergizClifton:
      return d_union - d_b;
  }
  KANON_CHECK(false, "unreachable distance function");
  return 0.0;
}

}  // namespace kanon
