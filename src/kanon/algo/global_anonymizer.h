#ifndef KANON_ALGO_GLOBAL_ANONYMIZER_H_
#define KANON_ALGO_GLOBAL_ANONYMIZER_H_

#include <cstdint>

#include "kanon/algo/core/engine_counters.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Statistics of a global-anonymization run (Section V-C).
struct GlobalAnonymizerStats {
  /// Records whose initial match count was below k.
  size_t deficient_records = 0;
  /// Total generalization steps performed (the paper observes that almost
  /// always one step per deficient record suffices).
  size_t upgrade_steps = 0;
  /// Largest number of steps needed by a single record.
  size_t max_steps_per_record = 0;
};

struct GlobalAnonymizationResult {
  GeneralizedTable table;
  GlobalAnonymizerStats stats;
};

/// Algorithm 6: transforms a (k,k)-anonymization into a global
/// (1,k)-anonymization. For every record R_i with fewer than k matches
/// (edges of V_{D,g(D)} completable to a perfect matching), the non-match
/// neighbor R̄_{j_h} minimizing c(R_{j_h} + R̄_i) − c(R̄_i) is chosen and
/// R̄_i is generalized to also cover the original record R_{j_h}; this
/// upgrades R̄_{j_h} to a match of R_i (swap the two pairs in the identity
/// matching), and is repeated until R_i has at least k matches.
///
/// Requires `table` to be row-aligned with `dataset` with R̄_i generalizing
/// R_i (as the algorithms of Section V-B produce), and to satisfy
/// (k,k)-anonymity. Matches are recomputed with the matching+SCC algorithm,
/// so the overall cost is O(#steps · (n·r + m)) instead of the paper's
/// O(√n·m²).
/// When `ctx` stops the run mid-upgrade, every record is generalized to the
/// common closure of the whole table — one identical group of n ≥ k rows,
/// which is globally (1,k)-anonymous outright.
/// The optional `counters` (not owned) accumulates engine telemetry: upgrade
/// steps and the closure-interning statistics of the final table.
Result<GlobalAnonymizationResult> MakeGlobal1KAnonymous(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    GeneralizedTable table, RunContext* ctx = nullptr,
    EngineCounters* counters = nullptr);

/// Policy-parameterized variant (docs/policy_engine.md): the policy's
/// MergeDelta hook transforms the upgrade prices of Algorithm 6 and Ripe is
/// the match-count stopping predicate; every built-in distance policy keeps
/// both at the identity defaults. Defined in global_anonymizer.cc and
/// explicitly instantiated per (pipeline × distance).
template <typename Policy>
Result<GlobalAnonymizationResult> MakeGlobal1KAnonymousWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    GeneralizedTable table, const Policy& policy, RunContext* ctx = nullptr,
    EngineCounters* counters = nullptr);

}  // namespace kanon

#endif  // KANON_ALGO_GLOBAL_ANONYMIZER_H_
