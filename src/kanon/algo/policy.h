#ifndef KANON_ALGO_POLICY_H_
#define KANON_ALGO_POLICY_H_

#include <cmath>
#include <concepts>
#include <cstddef>
#include <limits>

#include "kanon/algo/distance.h"
#include "kanon/common/check.h"

namespace kanon {

/// The compile-time cluster-policy engine (docs/policy_engine.md).
///
/// A ClusterPolicy bundles the per-pair decisions of the clustering
/// pipelines as inlinable compile-time hooks, replacing the runtime
/// `EvalDistance` switch that used to sit inside the O(n²) merge loops:
///
///  - `Distance(size_a, size_b, size_union, d_a, d_b, d_union)` — the
///    cluster distance of Section V-A.2 (eqs. 8–11 / Nergiz–Clifton),
///    evaluated by the agglomerative engines per candidate pair.
///  - `kAsymmetric` — whether dist(A, B) ≠ dist(B, A); the merge rule
///    evaluates both directions only when set (Nergiz–Clifton).
///  - `PairCost(d)` — the scalar order key the cost-driven pipelines
///    (forest edges, (k,1) candidates, repair partners, full-domain
///    trials) rank candidates by, given a closure/union cost d.
///  - `MergeDelta(delta)` — transform of an already-accumulated merge or
///    upgrade price (greedy expansion, (1,k) repair, Algorithm 6).
///  - `Ripe(size, k)` — the stopping predicate: when a cluster/component/
///    match set leaves the working pool.
///  - `kName` — diagnostic label.
///
/// Engines are templated on the policy and explicitly instantiated per
/// (pipeline × distance); the runtime `DistanceFunction` enum is translated
/// to a policy exactly once at pipeline entry via DispatchDistancePolicy.
/// EvalDistance (algo/distance.h) remains as the scalar reference
/// implementation that conformance tests and benches compare against.
template <typename P>
concept ClusterPolicy = requires(const P p, size_t s, double d) {
  { P::kName } -> std::convertible_to<const char*>;
  { P::kAsymmetric } -> std::convertible_to<bool>;
  { p.Distance(s, s, s, d, d, d) } -> std::same_as<double>;
  { p.PairCost(d) } -> std::same_as<double>;
  { p.MergeDelta(d) } -> std::same_as<double>;
  { p.Ripe(s, s) } -> std::same_as<bool>;
};

/// One readable diagnostic instead of a template backtrace: engines and the
/// dispatcher expand this where a policy type is consumed, so a malformed
/// policy fails on this message (tests/policy_negcomp.cc keeps it honest).
#define KANON_ASSERT_CLUSTER_POLICY(P)                                        \
  static_assert(::kanon::ClusterPolicy<P>,                                    \
                "policy does not satisfy the ClusterPolicy concept: it must " \
                "provide kName, kAsymmetric, Distance(size_a, size_b, "       \
                "size_union, d_a, d_b, d_union) -> double, PairCost(d) -> "   \
                "double, MergeDelta(delta) -> double and Ripe(size, k) -> "   \
                "bool; see docs/policy_engine.md")

/// Shared hook defaults. The cost hooks are identities and the stopping
/// predicate is the plain size-k test — exactly the behavior every pipeline
/// had before the policy engine, so a policy that only overrides Distance
/// changes nothing outside the agglomerative merge rule.
struct PolicyDefaults {
  static constexpr bool kAsymmetric = false;
  double PairCost(double d_union) const { return d_union; }
  double MergeDelta(double delta) const { return delta; }
  bool Ripe(size_t cluster_size, size_t k) const { return cluster_size >= k; }
};

/// Eq. (8): |A∪B|·d(A∪B) − |A|·d(A) − |B|·d(B). Favors balanced growth.
struct WeightedPolicy : PolicyDefaults {
  static constexpr const char* kName = "dist1(8)";
  double Distance(size_t size_a, size_t size_b, size_t size_union, double d_a,
                  double d_b, double d_union) const {
    KANON_DCHECK(size_a > 0 && size_b > 0 && size_union > 1);
    return static_cast<double>(size_union) * d_union -
           static_cast<double>(size_a) * d_a -
           static_cast<double>(size_b) * d_b;
  }
};

/// Eq. (9): d(A∪B) − d(A) − d(B). May be negative; unbalanced growth.
struct PlainPolicy : PolicyDefaults {
  static constexpr const char* kName = "dist2(9)";
  double Distance([[maybe_unused]] size_t size_a, [[maybe_unused]] size_t size_b,
                  [[maybe_unused]] size_t size_union, double d_a, double d_b,
                  double d_union) const {
    KANON_DCHECK(size_a > 0 && size_b > 0 && size_union > 1);
    return d_union - d_a - d_b;
  }
};

/// Eq. (10): (d(A∪B) − d(A) − d(B)) / log2|A∪B|. Favors growing one cluster.
struct LogWeightedPolicy : PolicyDefaults {
  static constexpr const char* kName = "dist3(10)";
  double Distance([[maybe_unused]] size_t size_a, [[maybe_unused]] size_t size_b,
                  size_t size_union, double d_a, double d_b,
                  double d_union) const {
    KANON_DCHECK(size_a > 0 && size_b > 0 && size_union > 1);
    return (d_union - d_a - d_b) / std::log2(static_cast<double>(size_union));
  }
};

/// Eq. (11): d(A∪B) / (d(A) + d(B) + ε). Relative cost increase. The only
/// built-in policy with state: it carries the ε of DistanceParams.
struct RatioPolicy : PolicyDefaults {
  static constexpr const char* kName = "dist4(11)";
  DistanceParams params;
  double Distance([[maybe_unused]] size_t size_a, [[maybe_unused]] size_t size_b,
                  [[maybe_unused]] size_t size_union, double d_a, double d_b,
                  double d_union) const {
    KANON_DCHECK(size_a > 0 && size_b > 0 && size_union > 1);
    // Two zero-cost closures (e.g. identical singleton records) with
    // epsilon = 0 would divide by zero and poison the merge heap with
    // inf/NaN. A zero-cost union is a perfect merge (distance 0); a
    // costly union over zero-cost parts is maximally unattractive.
    const double denom = d_a + d_b + params.epsilon;
    if (denom <= 0.0) {
      return d_union <= 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    }
    return d_union / denom;
  }
};

/// Nergiz & Clifton's asymmetric variant: dist(A, B) = d(A∪B) − d(B).
struct NergizCliftonPolicy : PolicyDefaults {
  static constexpr const char* kName = "distNC";
  static constexpr bool kAsymmetric = true;
  double Distance([[maybe_unused]] size_t size_a, [[maybe_unused]] size_t size_b,
                  [[maybe_unused]] size_t size_union,
                  [[maybe_unused]] double d_a, double d_b,
                  double d_union) const {
    KANON_DCHECK(size_a > 0 && size_b > 0 && size_union > 1);
    return d_union - d_b;
  }
};

KANON_ASSERT_CLUSTER_POLICY(WeightedPolicy);
KANON_ASSERT_CLUSTER_POLICY(PlainPolicy);
KANON_ASSERT_CLUSTER_POLICY(LogWeightedPolicy);
KANON_ASSERT_CLUSTER_POLICY(RatioPolicy);
KANON_ASSERT_CLUSTER_POLICY(NergizCliftonPolicy);

/// The one runtime-to-compile-time boundary of the policy engine: translates
/// a DistanceFunction (+ params) to its policy and invokes `fn` with it.
/// Every pipeline entry calls this exactly once; no per-pair code dispatches
/// on the enum afterwards.
template <typename Fn>
auto DispatchDistancePolicy(DistanceFunction f, const DistanceParams& params,
                            Fn&& fn) {
  switch (f) {
    case DistanceFunction::kWeighted:
      return fn(WeightedPolicy{});
    case DistanceFunction::kPlain:
      return fn(PlainPolicy{});
    case DistanceFunction::kLogWeighted:
      return fn(LogWeightedPolicy{});
    case DistanceFunction::kRatio:
      return fn(RatioPolicy{{}, params});
    case DistanceFunction::kNergizClifton:
      return fn(NergizCliftonPolicy{});
  }
  KANON_CHECK(false, "unreachable distance function");
  return fn(LogWeightedPolicy{});
}

}  // namespace kanon

#endif  // KANON_ALGO_POLICY_H_
