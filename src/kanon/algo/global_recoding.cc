#include "kanon/algo/global_recoding.h"

#include <algorithm>
#include <limits>

#include "kanon/algo/core/closure_store.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"
#include "kanon/common/parallel.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

// The chain of permissible supersets of {value}, smallest first. Laminar
// collections make this chain unique (sets containing a point are nested).
std::vector<SetId> ChainOf(const Hierarchy& h, ValueCode value) {
  std::vector<SetId> chain;
  for (SetId s = 0; s < h.num_sets(); ++s) {
    if (h.Contains(s, value)) {
      chain.push_back(s);
    }
  }
  // Ids are sorted by cardinality; within a laminar chain cardinality is
  // strictly increasing, so the id order is the chain order.
  return chain;
}

// levels[j][level][value] -> SetId.
std::vector<std::vector<std::vector<SetId>>> BuildLevelTables(
    const GeneralizationScheme& scheme) {
  const size_t r = scheme.num_attributes();
  std::vector<std::vector<std::vector<SetId>>> tables(r);
  for (size_t j = 0; j < r; ++j) {
    const Hierarchy& h = scheme.hierarchy(j);
    size_t max_len = 1;
    std::vector<std::vector<SetId>> chains(h.domain_size());
    for (size_t v = 0; v < h.domain_size(); ++v) {
      chains[v] = ChainOf(h, static_cast<ValueCode>(v));
      max_len = std::max(max_len, chains[v].size());
    }
    tables[j].resize(max_len, std::vector<SetId>(h.domain_size()));
    for (size_t level = 0; level < max_len; ++level) {
      for (size_t v = 0; v < h.domain_size(); ++v) {
        const size_t idx = std::min(level, chains[v].size() - 1);
        tables[j][level][v] = chains[v][idx];
      }
    }
  }
  return tables;
}

// Applies a level vector to the whole dataset.
GeneralizedTable ApplyLevels(
    const Dataset& dataset,
    std::shared_ptr<const GeneralizationScheme> scheme,
    const std::vector<std::vector<std::vector<SetId>>>& tables,
    const std::vector<uint32_t>& levels) {
  GeneralizedTable table(scheme);
  const size_t r = dataset.num_attributes();
  // Hoist the selected level row per attribute; each record is then one
  // table lookup per cell over a zero-copy row view.
  std::vector<const SetId*> level_row(r);
  for (size_t j = 0; j < r; ++j) {
    level_row[j] = tables[j][levels[j]].data();
  }
  GeneralizedRecord record(r);
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    const RowView row = dataset.row_view(i);
    for (size_t j = 0; j < r; ++j) {
      record[j] = level_row[j][row[j]];
    }
    table.AppendRecord(record);
  }
  return table;
}

// Group-size check through the interned closure ids: one hash lookup per
// row (duplicate rows are cache hits) instead of lexicographic map compares.
// The store persists across ascent rounds, so ids stay dense and rows seen
// in earlier rounds are already priced. The group-size test is the policy's
// Ripe hook — the same size-k predicate every built-in policy supplies.
template <typename Policy>
bool TableIsKAnonymous(ClosureStore* store, const GeneralizedTable& table,
                       size_t k, const Policy& policy) {
  const std::vector<ClosureStore::Id> ids = store->InternTable(table);
  std::vector<size_t> counts(store->size(), 0);
  for (ClosureStore::Id id : ids) ++counts[id];
  for (ClosureStore::Id id : ids) {
    if (!policy.Ripe(counts[id], k)) return false;
  }
  return true;
}

}  // namespace

size_t NumGeneralizationLevels(const Hierarchy& hierarchy) {
  size_t max_len = 1;
  for (size_t v = 0; v < hierarchy.domain_size(); ++v) {
    max_len =
        std::max(max_len, ChainOf(hierarchy, static_cast<ValueCode>(v)).size());
  }
  return max_len;
}

SetId LevelAncestor(const Hierarchy& hierarchy, ValueCode value,
                    uint32_t level) {
  const std::vector<SetId> chain = ChainOf(hierarchy, value);
  return chain[std::min<size_t>(level, chain.size() - 1)];
}

template <typename Policy>
Result<GlobalRecodingResult> GlobalRecodingKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx, int num_threads,
    EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  const size_t n = dataset.num_rows();
  const size_t r = dataset.num_attributes();
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > n) {
    return Status::InvalidArgument("k exceeds the number of records");
  }
  const GeneralizationScheme& scheme = loss.scheme();
  if (r != scheme.num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  for (size_t j = 0; j < r; ++j) {
    if (!scheme.hierarchy(j).IsLaminar()) {
      return Status::FailedPrecondition(
          "global recoding requires laminar hierarchies (attribute '" +
          scheme.schema().attribute(j).name() + "' is not)");
    }
  }

  const auto tables = BuildLevelTables(scheme);
  std::vector<uint32_t> levels(r, 0);

  ClosureStore store(loss);
  GeneralizedTable current = ApplyLevels(dataset, loss.scheme_ptr(), tables,
                                         levels);
  PhaseSpan ascent_span(CurrentTracer(), "full-domain/ascent");
  while (!TableIsKAnonymous(&store, current, k, policy)) {
    if (ctx != nullptr && ctx->CheckPoint("full-domain/ascent")) {
      // Degradation: jump every attribute to its top level. All records
      // become identical — k-anonymous for every k <= n.
      for (size_t j = 0; j < r; ++j) {
        levels[j] = static_cast<uint32_t>(tables[j].size() - 1);
      }
      ctx->NoteDegraded("full-domain/ascent");
      ctx->AddRecordsSuppressed(n);
      current = ApplyLevels(dataset, loss.scheme_ptr(), tables, levels);
      store.ExportCounters(counters);
      return GlobalRecodingResult{std::move(current), std::move(levels)};
    }
    KANON_FAILPOINT("full_domain.step");
    // Raise the attribute whose bump loses the least information. Each
    // trial applies one candidate level vector to the whole table — the
    // O(r·n·r) inner cost of the ascent — so the trials run as a parallel
    // argmin; maxed-out attributes opt out with +infinity. Smallest index
    // wins ties, exactly like the serial strict-< scan this replaces.
    if (counters != nullptr) {
      counters->parallel_chunks += ParallelChunkCount(r);
    }
    const ArgminResult best = ParallelArgmin(
        r, num_threads, nullptr, "full-domain/ascent", [&](size_t j) {
          if (levels[j] + 1 >= tables[j].size()) {
            return std::numeric_limits<double>::infinity();
          }
          std::vector<uint32_t> trial = levels;
          ++trial[j];
          // Candidate bumps are ranked by the policy's PairCost hook over
          // the trial's table loss (identity for every built-in policy).
          return policy.PairCost(loss.TableLoss(
              ApplyLevels(dataset, loss.scheme_ptr(), tables, trial)));
        });
    KANON_CHECK(best.valid &&
                    best.value < std::numeric_limits<double>::infinity(),
                "all attributes fully suppressed must be k-anonymous");
    ++levels[best.index];
    if (counters != nullptr) ++counters->upgrade_steps;
    current = ApplyLevels(dataset, loss.scheme_ptr(), tables, levels);
  }
  store.ExportCounters(counters);
  return GlobalRecodingResult{std::move(current), std::move(levels)};
}

// The public entry pins the default-config policy — the full-domain ascent
// never carried a distance parameter, and the hooks it consumes (PairCost,
// Ripe) are identical across every built-in policy.
Result<GlobalRecodingResult> GlobalRecodingKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    RunContext* ctx, int num_threads, EngineCounters* counters) {
  return GlobalRecodingKAnonymizeWithPolicy(dataset, loss, k,
                                            LogWeightedPolicy{}, ctx,
                                            num_threads, counters);
}

// The (pipeline × distance) instantiation matrix (docs/policy_engine.md).
#define KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE(POLICY)                     \
  template Result<GlobalRecodingResult> GlobalRecodingKAnonymizeWithPolicy( \
      const Dataset&, const PrecomputedLoss&, size_t, const POLICY&,       \
      RunContext*, int, EngineCounters*)

KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE(WeightedPolicy);
KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE(PlainPolicy);
KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE(LogWeightedPolicy);
KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE(RatioPolicy);
KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE(NergizCliftonPolicy);

#undef KANON_INSTANTIATE_FULL_DOMAIN_PIPELINE

}  // namespace kanon
