#include "kanon/algo/agglomerative.h"

#include "kanon/algo/agglomerative_engine.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"

namespace kanon {

std::vector<GeneralizedRecord> LeaveOneOutClosures(
    const Dataset& dataset, const GeneralizationScheme& scheme,
    const std::vector<uint32_t>& rows) {
  const size_t len = rows.size();
  const size_t r = scheme.num_attributes();
  KANON_CHECK(len >= 2, "leave-one-out needs at least two rows");
  // prefix[q] = closure of rows[0..q), suffix[q] = closure of rows[q..len).
  std::vector<GeneralizedRecord> prefix(len);
  std::vector<GeneralizedRecord> suffix(len + 1);
  prefix[1] = scheme.Identity(dataset.row_view(rows[0]));
  for (size_t q = 2; q < len; ++q) {
    prefix[q] = prefix[q - 1];
    for (size_t j = 0; j < r; ++j) {
      prefix[q][j] = scheme.hierarchy(j).JoinValue(
          prefix[q][j], dataset.at(rows[q - 1], j));
    }
  }
  suffix[len - 1] = scheme.Identity(dataset.row_view(rows[len - 1]));
  for (size_t q = len - 1; q-- > 1;) {
    suffix[q] = suffix[q + 1];
    for (size_t j = 0; j < r; ++j) {
      suffix[q][j] =
          scheme.hierarchy(j).JoinValue(suffix[q][j], dataset.at(rows[q], j));
    }
  }
  std::vector<GeneralizedRecord> out(len);
  out[0] = suffix[1];
  out[len - 1] = prefix[len - 1];
  for (size_t p = 1; p + 1 < len; ++p) {
    out[p] = scheme.JoinRecords(prefix[p], suffix[p + 1]);
  }
  return out;
}

// The runtime boundary of the policy engine: the DistanceFunction enum is
// translated to its compile-time policy here, exactly once per run, and the
// templated engine (agglomerative_engine.h) inlines every per-pair decision.
Result<Clustering> AgglomerativeCluster(const Dataset& dataset,
                                        const PrecomputedLoss& loss, size_t k,
                                        const AgglomerativeOptions& options) {
  return DispatchDistancePolicy(
      options.distance, options.params, [&](const auto& policy) {
        return AgglomerativeClusterWithPolicy(dataset, loss, k, options,
                                              policy);
      });
}

Result<GeneralizedTable> AgglomerativeKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const AgglomerativeOptions& options) {
  KANON_ASSIGN_OR_RETURN(Clustering clustering,
                         AgglomerativeCluster(dataset, loss, k, options));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

// The (pipeline × distance) instantiation matrix for the agglomerative
// engine (docs/policy_engine.md). New policies do not belong here: they
// instantiate the engine implicitly from agglomerative_engine.h in their
// own translation unit.
template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const WeightedPolicy&);
template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const PlainPolicy&);
template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const LogWeightedPolicy&);
template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const RatioPolicy&);
template Result<Clustering> AgglomerativeClusterWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const NergizCliftonPolicy&);
template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const WeightedPolicy&);
template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const PlainPolicy&);
template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const LogWeightedPolicy&);
template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const RatioPolicy&);
template Result<GeneralizedTable> AgglomerativeKAnonymizeWithPolicy(
    const Dataset&, const PrecomputedLoss&, size_t,
    const AgglomerativeOptions&, const NergizCliftonPolicy&);

}  // namespace kanon
