#include "kanon/algo/agglomerative.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"
#include "kanon/common/parallel.h"

namespace kanon {

namespace {

constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Sweeps whose per-item work is only O(r) (a handful of join-table lookups)
// run inline below this size; the heavy O(n·r)-per-item scans always fan
// out. Purely an overhead knob — results are identical either way.
constexpr size_t kCheapSweepSerialBelow = 2048;

// The stale-entry heap rebuild waits for at least this many entries, so
// small runs never churn.
constexpr size_t kHeapRebuildMinSize = 64;

struct ClusterState {
  std::vector<uint32_t> members;
  GeneralizedRecord closure;
  double cost = 0.0;  // d(S) = c(closure of S).
  bool alive = false;
};

// Nearest-neighbor bookkeeping for one cluster x. Cluster contents are
// immutable (merges create fresh clusters), so pair distances never change
// and the engine can maintain, with O(1) repairs in the common case:
//
//   invariant A: c1 is alive and d1 = min over alive y≠x of dist(x, y)
//                (exact), whenever c1 != kNone;
//   invariant B: when second_valid, every alive y ∉ {c1} has
//                dist(x, y) >= d2 (c2 itself may meanwhile be dead; d2
//                then still bounds everyone else).
//
// A cluster that loses c1 promotes c2 when invariant B allows it, adopts
// the freshly merged cluster when that is provably at least as close, and
// only falls back to a full rescan otherwise. This keeps the engine exact
// while avoiding the O(n³) blow-up of naive repair in the "one growing
// cluster" regime that distance functions (10) and (11) induce.
struct CandidatePair {
  uint32_t c1 = kNone;
  double d1 = kInf;
  uint32_t c2 = kNone;
  double d2 = kInf;
  bool second_valid = true;
};

// Offers candidate (y, d) to a two-best accumulator with the exact
// comparisons of an ascending-id serial scan: strict improvement wins, ties
// go to the smaller id. Used both inside chunk-local scans and to merge
// chunk results in chunk order, so the combined two-best is byte-identical
// to the serial scan at every thread count.
void OfferToTwoBest(CandidatePair* c, uint32_t y, double d) {
  if (y == kNone || y == c->c1 || y == c->c2) return;
  if (d < c->d1 || (d == c->d1 && y < c->c1)) {
    c->c2 = c->c1;
    c->d2 = c->d1;
    c->c1 = y;
    c->d1 = d;
  } else if (d < c->d2 || (d == c->d2 && y < c->c2)) {
    c->c2 = y;
    c->d2 = d;
  }
}

struct HeapEntry {
  double dist;
  uint32_t a;  // First argument of dist(A, B).
  uint32_t b;  // Second argument.
};

struct HeapEntryGreater {
  bool operator()(const HeapEntry& x, const HeapEntry& y) const {
    if (x.dist != y.dist) return x.dist > y.dist;
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  }
};

// Engine shared by the basic and modified variants of Algorithm 1.
class Engine {
 public:
  Engine(const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
         const AgglomerativeOptions& options)
      : dataset_(dataset),
        loss_(loss),
        scheme_(loss.scheme()),
        k_(k),
        options_(options),
        ctx_(options.run_context),
        num_attrs_(dataset.num_attributes()) {}

  Result<Clustering> Run() {
    KANON_RETURN_NOT_OK(InitSingletons());
    KANON_RETURN_NOT_OK(MainLoop());
    if (Stopped()) {
      FinalizeDegraded();
    } else {
      DistributeLeftover();
    }
    if (options_.heap_rebuilds_out != nullptr) {
      *options_.heap_rebuilds_out = heap_rebuilds_;
    }
    Clustering out;
    for (uint32_t id : final_) {
      out.clusters.push_back(std::move(clusters_[id].members));
    }
    return out;
  }

 private:
  // One cooperative checkpoint per engine iteration.
  bool CheckPoint(const char* stage) {
    return ctx_ != nullptr && ctx_->CheckPoint(stage);
  }

  bool Stopped() const { return ctx_ != nullptr && ctx_->stopped(); }

  // d(A ∪ B) computed attribute-wise through the join tables; O(r).
  double UnionCost(const ClusterState& a, const ClusterState& b) const {
    double total = 0.0;
    for (size_t j = 0; j < num_attrs_; ++j) {
      const SetId joined =
          scheme_.hierarchy(j).Join(a.closure[j], b.closure[j]);
      total += loss_.EntryCost(j, joined);
    }
    return total / static_cast<double>(num_attrs_);
  }

  double DistFromUnionCost(uint32_t a, uint32_t b, double d_union) const {
    const ClusterState& ca = clusters_[a];
    const ClusterState& cb = clusters_[b];
    return EvalDistance(options_.distance, options_.params,
                        ca.members.size(), cb.members.size(),
                        ca.members.size() + cb.members.size(), ca.cost,
                        cb.cost, d_union);
  }

  double Dist(uint32_t a, uint32_t b) const {
    return DistFromUnionCost(a, b, UnionCost(clusters_[a], clusters_[b]));
  }

  bool Alive(uint32_t id) const { return id != kNone && clusters_[id].alive; }

  // Every heap mutation goes through PushEntry/PopTop so the stale-entry
  // accounting stays exact: entry_refs_[c] counts in-heap entries
  // referencing c, heap_stale_ counts in-heap references to dead clusters
  // (each stale entry contributes one or two, so heap_stale_ is between
  // the stale-entry count and twice it).
  void PushEntry(double dist, uint32_t a, uint32_t b) {
    heap_.push(HeapEntry{dist, a, b});
    ++entry_refs_[a];
    ++entry_refs_[b];
  }

  HeapEntry PopTop() {
    const HeapEntry entry = heap_.top();
    heap_.pop();
    --entry_refs_[entry.a];
    --entry_refs_[entry.b];
    if (!Alive(entry.a)) --heap_stale_;
    if (!Alive(entry.b)) --heap_stale_;
    return entry;
  }

  // Offers alive candidate (y, d) to x's two-best.
  void Offer(uint32_t x, uint32_t y, double d) {
    CandidatePair& c = cands_[x];
    if (y == c.c1 || y == c.c2) return;
    if (d < c.d1 || (d == c.d1 && y < c.c1)) {
      // The displaced c1 was the exact minimum over the other alive
      // clusters, so it is a correct second bound.
      c.c2 = c.c1;
      c.d2 = c.d1;
      c.second_valid = true;
      c.c1 = y;
      c.d1 = d;
      PushEntry(d, x, y);
    } else if (d < c.d2 || (d == c.d2 && y < c.c2)) {
      // Tightening the second bound keeps invariant B when it held (y is
      // accounted for explicitly, everyone else was >= old d2 > d).
      c.c2 = y;
      c.d2 = d;
    }
  }

  // Fixes x after the deaths of the just-merged pair. `added` (kNone for a
  // ripe merge) is the freshly created cluster and `d_x_added` its distance
  // from x. Returns true when x needs a full rescan.
  bool Repair(uint32_t x, uint32_t added, double d_x_added) {
    CandidatePair& c = cands_[x];
    if (c.c1 == kNone || Alive(c.c1)) {
      return false;  // Nearest intact (a dead c2 stays as a bound).
    }
    if (added != kNone && d_x_added <= c.d1) {
      // Everyone alive was at distance >= d1 before the merge, so the new
      // cluster is an exact new minimum. The second bound keeps holding.
      c.c1 = added;
      c.d1 = d_x_added;
      PushEntry(d_x_added, x, added);
      return false;
    }
    if (Alive(c.c2) && c.second_valid) {
      // Invariant B: nothing alive beats d2, so c2 is the exact minimum.
      c.c1 = c.c2;
      c.d1 = c.d2;
      c.c2 = kNone;
      c.d2 = kInf;
      c.second_valid = false;
      PushEntry(c.d1, x, c.c1);
      return false;
    }
    return true;
  }

  // Exact two-best of x over every active cluster, O(active · r), spread
  // over the worker threads: chunk-local two-bests merged in chunk order
  // reproduce the serial ascending scan exactly.
  CandidatePair ComputeTwoBest(uint32_t x) const {
    const size_t m = active_.size();
    std::vector<CandidatePair> parts(ParallelChunkCount(m));
    ParallelChunks(
        m, options_.num_threads, nullptr, "agglomerative/rescan",
        [&](size_t chunk, size_t begin, size_t end) {
          CandidatePair local;
          for (size_t t = begin; t < end; ++t) {
            const uint32_t y = active_[t];
            if (y == x || !clusters_[y].alive) continue;
            OfferToTwoBest(&local, y, Dist(x, y));
          }
          parts[chunk] = local;
        },
        kCheapSweepSerialBelow);
    CandidatePair c;
    for (const CandidatePair& p : parts) {
      OfferToTwoBest(&c, p.c1, p.d1);
      OfferToTwoBest(&c, p.c2, p.d2);
    }
    c.second_valid = true;
    return c;
  }

  // Recomputes x's two-best over every active cluster.
  void FullRescan(uint32_t x) {
    cands_[x] = ComputeTwoBest(x);
    const CandidatePair& c = cands_[x];
    if (c.c1 != kNone) {
      PushEntry(c.d1, x, c.c1);
    }
  }

  // Exhaustively checks that `dist` is the minimum over all alive pairs.
  void VerifyGlobalMinimum(double dist) const {
    for (uint32_t a : active_) {
      if (!clusters_[a].alive) continue;
      for (uint32_t b : active_) {
        if (a == b || !clusters_[b].alive) continue;
        KANON_CHECK(Dist(a, b) >= dist - 1e-12,
                    "engine merged a non-minimal pair");
      }
    }
  }

  Status InitSingletons() {
    const size_t n = dataset_.num_rows();
    clusters_.reserve(2 * n);
    clusters_.resize(n);
    active_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      clusters_[i].members = {i};
      clusters_[i].alive = true;
      active_[i] = i;
    }
    num_active_ = n;
    // Singleton closures and costs, O(n·r); items are disjoint slots.
    const SweepStatus closures = ParallelFor(
        n, options_.num_threads, ctx_, "agglomerative/init",
        [&](size_t i) {
          clusters_[i].closure = scheme_.Identity(dataset_.row(i));
          clusters_[i].cost = loss_.RecordCost(clusters_[i].closure);
        },
        /*done=*/nullptr, kCheapSweepSerialBelow);
    // A stop here leaves some closures unset; the degraded wind-down pools
    // records by membership only, so that is safe.
    if (!closures.completed) return Status::OK();

    cands_.assign(n, CandidatePair());
    entry_refs_.assign(n, 0);
    // The all-pairs two-best scan is the O(n²·r) part of setup; it honors
    // the same controls as the merge loop so tight deadlines bail early.
    // Heap pushes happen after the sweep, on one thread, in index order.
    std::vector<Status> errors(ParallelChunkCount(n));
    const SweepStatus scan = ParallelChunks(
        n, options_.num_threads, ctx_, "agglomerative/init",
        [&](size_t chunk, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            if (failpoint::AnyArmed()) {
              Status s = failpoint::Check("agglomerative.closure");
              if (!s.ok()) {
                errors[chunk] = std::move(s);
                return;
              }
            }
            cands_[i] = ComputeTwoBest(static_cast<uint32_t>(i));
          }
        });
    for (Status& s : errors) {
      if (!s.ok()) return std::move(s);
    }
    if (!scan.completed) return Status::OK();
    for (uint32_t i = 0; i < n; ++i) {
      if (cands_[i].c1 != kNone) {
        PushEntry(cands_[i].d1, i, cands_[i].c1);
      }
    }
    return Status::OK();
  }

  void Deactivate(uint32_t c) {
    clusters_[c].alive = false;
    --num_active_;
    ++num_dead_in_active_;
    // Every in-heap entry referencing c just went stale.
    heap_stale_ += entry_refs_[c];
  }

  void MaybeCompactActive() {
    if (num_dead_in_active_ * 2 < active_.size()) return;
    std::vector<uint32_t> compacted;
    compacted.reserve(num_active_);
    for (uint32_t id : active_) {
      if (clusters_[id].alive) compacted.push_back(id);
    }
    active_ = std::move(compacted);
    num_dead_in_active_ = 0;
  }

  // Dead-pair entries are only discarded lazily on pop, so adversarial
  // merge orders (one growing cluster re-offered to everyone each round)
  // can pile them up without bound. Once the stale-reference counter says
  // at least half the heap is provably dead, rebuild it from the exact
  // per-cluster candidates: every alive cluster re-contributes its one
  // invariant-A entry. Purely an occupancy change — pop order and results
  // are untouched.
  void MaybeRebuildHeap() {
    const bool stale_heavy =
        options_.aggressive_heap_rebuild
            ? heap_stale_ > 0
            : heap_.size() >= kHeapRebuildMinSize &&
                  heap_stale_ > heap_.size();
    if (!stale_heavy) return;
    heap_ = {};
    std::fill(entry_refs_.begin(), entry_refs_.end(), 0);
    heap_stale_ = 0;
    for (uint32_t x : active_) {
      if (!clusters_[x].alive) continue;
      const CandidatePair& c = cands_[x];
      if (c.c1 != kNone && Alive(c.c1)) {
        PushEntry(c.d1, x, c.c1);
      }
    }
    ++heap_rebuilds_;
  }

  uint32_t NewCluster(ClusterState state) {
    clusters_.push_back(std::move(state));
    const uint32_t id = static_cast<uint32_t>(clusters_.size() - 1);
    if (cands_.size() <= id) {
      cands_.resize(std::max<size_t>(id + 1, cands_.size() * 2 + 1));
      entry_refs_.resize(cands_.size(), 0);
    }
    cands_[id] = CandidatePair();
    entry_refs_[id] = 0;
    return id;
  }

  uint32_t Merge(uint32_t a, uint32_t b) {
    ClusterState merged;
    merged.members = clusters_[a].members;
    merged.members.insert(merged.members.end(), clusters_[b].members.begin(),
                          clusters_[b].members.end());
    std::sort(merged.members.begin(), merged.members.end());
    merged.closure =
        scheme_.JoinRecords(clusters_[a].closure, clusters_[b].closure);
    merged.cost = loss_.RecordCost(merged.closure);
    Deactivate(a);
    Deactivate(b);
    return NewCluster(std::move(merged));
  }

  // One pass over the active set after a merge. When `added` is not kNone
  // it is the freshly created cluster: its two-best is built, it is offered
  // to everyone, and it joins the active set. Clusters whose candidates
  // were wiped out are rescanned at the end (rare). The pure O(active·r)
  // distance computations run on the worker threads; the order-sensitive
  // Offer/Repair bookkeeping replays them serially in active order, so the
  // outcome matches the single-threaded pass exactly.
  void RepairAndMaybeAdd(uint32_t added) {
    const bool asymmetric =
        options_.distance == DistanceFunction::kNergizClifton;
    const size_t m = active_.size();
    std::vector<double> d_added_x;
    std::vector<double> d_x_added;
    if (added != kNone) {
      d_added_x.assign(m, kInf);
      d_x_added.assign(m, kInf);
      ParallelChunks(
          m, options_.num_threads, nullptr, "agglomerative/repair",
          [&](size_t /*chunk*/, size_t begin, size_t end) {
            for (size_t t = begin; t < end; ++t) {
              const uint32_t x = active_[t];
              if (!clusters_[x].alive) continue;
              const double d_union =
                  UnionCost(clusters_[added], clusters_[x]);
              d_added_x[t] = DistFromUnionCost(added, x, d_union);
              d_x_added[t] = asymmetric
                                 ? DistFromUnionCost(x, added, d_union)
                                 : d_added_x[t];
            }
          },
          kCheapSweepSerialBelow);
    }
    std::vector<uint32_t> needs_rescan;
    for (size_t t = 0; t < m; ++t) {
      const uint32_t x = active_[t];
      if (!clusters_[x].alive) continue;
      if (added != kNone) {
        Offer(added, x, d_added_x[t]);
      }
      if (Repair(x, added, added != kNone ? d_x_added[t] : kInf)) {
        needs_rescan.push_back(x);
      } else if (added != kNone) {
        Offer(x, added, d_x_added[t]);
      }
    }
    if (added != kNone) {
      clusters_[added].alive = true;
      ++num_active_;
      active_.push_back(added);
    }
    MaybeCompactActive();
    for (uint32_t x : needs_rescan) {
      if (clusters_[x].alive) FullRescan(x);
    }
  }

  // Algorithm 2: shrinks a ripe cluster to exactly k records; ejected
  // records are returned (they re-enter the pool as singletons). Each pass
  // gets every leave-one-out closure from one prefix/suffix join sweep —
  // O(len·r) per ejection instead of O(len²·r).
  std::vector<uint32_t> ShrinkToK(uint32_t id) {
    std::vector<uint32_t> ejected;
    ClusterState& c = clusters_[id];
    while (c.members.size() > k_) {
      const size_t len = c.members.size();
      std::vector<GeneralizedRecord> loo =
          LeaveOneOutClosures(dataset_, scheme_, c.members);
      size_t eject_pos = 0;
      double best_di = -kInf;
      for (size_t pos = 0; pos < len; ++pos) {
        // d(Ŝ ∖ {R̂_pos}); dist(Ŝ, Ŝ ∖ {R̂_pos}) has union Ŝ itself.
        const double d_minus = loss_.RecordCost(loo[pos]);
        const double di =
            EvalDistance(options_.distance, options_.params, len, len - 1,
                         len, c.cost, d_minus, c.cost);
        if (di > best_di) {
          best_di = di;
          eject_pos = pos;
        }
      }
      ejected.push_back(c.members[eject_pos]);
      c.members.erase(c.members.begin() +
                      static_cast<ptrdiff_t>(eject_pos));
      c.closure = std::move(loo[eject_pos]);
      c.cost = loss_.RecordCost(c.closure);
    }
    return ejected;
  }

  Status MainLoop() {
    if (Stopped()) return Status::OK();  // Init was interrupted.
    while (num_active_ > 1) {
      if (CheckPoint("agglomerative/merge")) return Status::OK();
      KANON_FAILPOINT("agglomerative.closure");
      MaybeRebuildHeap();
      KANON_CHECK(!heap_.empty(), "active clusters must have heap entries");
      const HeapEntry entry = PopTop();
      // Distances are immutable per pair, so an entry is valid iff both
      // endpoints are alive; invariant A guarantees the first valid pop is
      // a globally closest pair.
      if (!Alive(entry.a) || !Alive(entry.b)) continue;
      if (options_.check_exact_merges) {
        VerifyGlobalMinimum(entry.dist);
      }
      const uint32_t merged = Merge(entry.a, entry.b);
      if (clusters_[merged].members.size() >= k_) {
        if (options_.modified && clusters_[merged].members.size() > k_) {
          const std::vector<uint32_t> ejected = ShrinkToK(merged);
          final_.push_back(merged);
          RepairAndMaybeAdd(kNone);
          for (uint32_t row : ejected) {
            ClusterState single;
            single.members = {row};
            single.closure = scheme_.Identity(dataset_.row(row));
            single.cost = loss_.RecordCost(single.closure);
            const uint32_t sid = NewCluster(std::move(single));
            RepairAndMaybeAdd(sid);
          }
        } else {
          final_.push_back(merged);
          RepairAndMaybeAdd(kNone);
        }
      } else {
        RepairAndMaybeAdd(merged);
      }
    }
    return Status::OK();
  }

  // Graceful wind-down after an interruption (deadline, cancel, budget):
  // records still in undersized clusters are pooled into one catch-all
  // cluster when they number at least k, and otherwise attached to their
  // nearest finished cluster — so the result is k-anonymous either way.
  void FinalizeDegraded() {
    std::vector<uint32_t> leftover;
    for (uint32_t x : active_) {
      if (!clusters_[x].alive) continue;
      leftover.insert(leftover.end(), clusters_[x].members.begin(),
                      clusters_[x].members.end());
      clusters_[x].alive = false;
    }
    if (leftover.empty()) return;  // Interrupted after the last ripening.
    std::sort(leftover.begin(), leftover.end());
    if (ctx_ != nullptr) {
      ctx_->NoteDegraded("agglomerative/merge");
      ctx_->AddRecordsSuppressed(leftover.size());
    }
    if (final_.empty() || leftover.size() >= k_) {
      // One catch-all cluster. When no cluster ripened yet the pool is the
      // whole dataset, and k <= n makes it valid.
      ClusterState pool;
      pool.members = std::move(leftover);
      pool.closure = scheme_.ClosureOfRows(dataset_, pool.members);
      pool.cost = loss_.RecordCost(pool.closure);
      final_.push_back(NewCluster(std::move(pool)));
      return;
    }
    // Fewer than k stragglers: nearest-final attachment, as in the normal
    // leftover pass (one cheap scan per record).
    for (uint32_t row : leftover) {
      ClusterState single;
      single.members = {row};
      single.closure = scheme_.Identity(dataset_.row(row));
      single.cost = loss_.RecordCost(single.closure);
      size_t best_pos = 0;
      double best_dist = kInf;
      for (size_t pos = 0; pos < final_.size(); ++pos) {
        const ClusterState& target = clusters_[final_[pos]];
        const double d_union = UnionCost(single, target);
        const double d =
            EvalDistance(options_.distance, options_.params, 1,
                         target.members.size(), target.members.size() + 1,
                         single.cost, target.cost, d_union);
        if (d < best_dist) {
          best_dist = d;
          best_pos = pos;
        }
      }
      ClusterState& target = clusters_[final_[best_pos]];
      target.members.push_back(row);
      std::sort(target.members.begin(), target.members.end());
      target.closure = scheme_.JoinRecords(target.closure, single.closure);
      target.cost = loss_.RecordCost(target.closure);
    }
  }

  // Line 10 of Algorithm 1: every record of the leftover (<k) cluster joins
  // the final cluster minimizing dist({R}, S).
  void DistributeLeftover() {
    std::vector<uint32_t> leftover;
    for (uint32_t x : active_) {
      if (!clusters_[x].alive) continue;
      leftover.insert(leftover.end(), clusters_[x].members.begin(),
                      clusters_[x].members.end());
      clusters_[x].alive = false;
    }
    if (leftover.empty()) return;
    KANON_CHECK(!final_.empty(),
                "no ripe cluster to absorb leftover records (k > n?)");
    std::sort(leftover.begin(), leftover.end());
    for (uint32_t row : leftover) {
      ClusterState single;
      single.members = {row};
      single.closure = scheme_.Identity(dataset_.row(row));
      single.cost = loss_.RecordCost(single.closure);

      size_t best_pos = 0;
      double best_dist = kInf;
      for (size_t pos = 0; pos < final_.size(); ++pos) {
        const ClusterState& target = clusters_[final_[pos]];
        const double d_union = UnionCost(single, target);
        const double d =
            EvalDistance(options_.distance, options_.params, 1,
                         target.members.size(), target.members.size() + 1,
                         single.cost, target.cost, d_union);
        if (d < best_dist) {
          best_dist = d;
          best_pos = pos;
        }
      }
      ClusterState& target = clusters_[final_[best_pos]];
      target.members.push_back(row);
      std::sort(target.members.begin(), target.members.end());
      target.closure = scheme_.JoinRecords(target.closure, single.closure);
      target.cost = loss_.RecordCost(target.closure);
    }
  }

  const Dataset& dataset_;
  const PrecomputedLoss& loss_;
  const GeneralizationScheme& scheme_;
  const size_t k_;
  const AgglomerativeOptions& options_;
  RunContext* const ctx_;
  const size_t num_attrs_;

  std::vector<ClusterState> clusters_;
  std::vector<uint32_t> active_;  // Ids, ascending; may contain dead entries.
  size_t num_active_ = 0;
  size_t num_dead_in_active_ = 0;
  std::vector<uint32_t> final_;
  std::vector<CandidatePair> cands_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryGreater>
      heap_;
  std::vector<uint32_t> entry_refs_;  // In-heap entries per cluster id.
  size_t heap_stale_ = 0;             // In-heap references to dead clusters.
  size_t heap_rebuilds_ = 0;
};

}  // namespace

std::vector<GeneralizedRecord> LeaveOneOutClosures(
    const Dataset& dataset, const GeneralizationScheme& scheme,
    const std::vector<uint32_t>& rows) {
  const size_t len = rows.size();
  const size_t r = scheme.num_attributes();
  KANON_CHECK(len >= 2, "leave-one-out needs at least two rows");
  // prefix[q] = closure of rows[0..q), suffix[q] = closure of rows[q..len).
  std::vector<GeneralizedRecord> prefix(len);
  std::vector<GeneralizedRecord> suffix(len + 1);
  prefix[1] = scheme.Identity(dataset.row(rows[0]));
  for (size_t q = 2; q < len; ++q) {
    prefix[q] = prefix[q - 1];
    for (size_t j = 0; j < r; ++j) {
      prefix[q][j] = scheme.hierarchy(j).JoinValue(
          prefix[q][j], dataset.at(rows[q - 1], j));
    }
  }
  suffix[len - 1] = scheme.Identity(dataset.row(rows[len - 1]));
  for (size_t q = len - 1; q-- > 1;) {
    suffix[q] = suffix[q + 1];
    for (size_t j = 0; j < r; ++j) {
      suffix[q][j] =
          scheme.hierarchy(j).JoinValue(suffix[q][j], dataset.at(rows[q], j));
    }
  }
  std::vector<GeneralizedRecord> out(len);
  out[0] = suffix[1];
  out[len - 1] = prefix[len - 1];
  for (size_t p = 1; p + 1 < len; ++p) {
    out[p] = scheme.JoinRecords(prefix[p], suffix[p + 1]);
  }
  return out;
}

Result<Clustering> AgglomerativeCluster(const Dataset& dataset,
                                        const PrecomputedLoss& loss, size_t k,
                                        const AgglomerativeOptions& options) {
  const size_t n = dataset.num_rows();
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > n) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds the number of records " +
                                   std::to_string(n));
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  if (k == 1) {
    // Identity clustering: nothing to anonymize.
    Clustering out;
    out.clusters.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      out.clusters.push_back({i});
    }
    return out;
  }
  return Engine(dataset, loss, k, options).Run();
}

Result<GeneralizedTable> AgglomerativeKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const AgglomerativeOptions& options) {
  KANON_ASSIGN_OR_RETURN(Clustering clustering,
                         AgglomerativeCluster(dataset, loss, k, options));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

}  // namespace kanon
