#include "kanon/algo/agglomerative.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"

namespace kanon {

namespace {

constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

struct ClusterState {
  std::vector<uint32_t> members;
  GeneralizedRecord closure;
  double cost = 0.0;  // d(S) = c(closure of S).
  bool alive = false;
};

// Nearest-neighbor bookkeeping for one cluster x. Cluster contents are
// immutable (merges create fresh clusters), so pair distances never change
// and the engine can maintain, with O(1) repairs in the common case:
//
//   invariant A: c1 is alive and d1 = min over alive y≠x of dist(x, y)
//                (exact), whenever c1 != kNone;
//   invariant B: when second_valid, every alive y ∉ {c1} has
//                dist(x, y) >= d2 (c2 itself may meanwhile be dead; d2
//                then still bounds everyone else).
//
// A cluster that loses c1 promotes c2 when invariant B allows it, adopts
// the freshly merged cluster when that is provably at least as close, and
// only falls back to a full rescan otherwise. This keeps the engine exact
// while avoiding the O(n³) blow-up of naive repair in the "one growing
// cluster" regime that distance functions (10) and (11) induce.
struct CandidatePair {
  uint32_t c1 = kNone;
  double d1 = kInf;
  uint32_t c2 = kNone;
  double d2 = kInf;
  bool second_valid = true;
};

struct HeapEntry {
  double dist;
  uint32_t a;  // First argument of dist(A, B).
  uint32_t b;  // Second argument.
};

struct HeapEntryGreater {
  bool operator()(const HeapEntry& x, const HeapEntry& y) const {
    if (x.dist != y.dist) return x.dist > y.dist;
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  }
};

// Engine shared by the basic and modified variants of Algorithm 1.
class Engine {
 public:
  Engine(const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
         const AgglomerativeOptions& options)
      : dataset_(dataset),
        loss_(loss),
        scheme_(loss.scheme()),
        k_(k),
        options_(options),
        ctx_(options.run_context),
        num_attrs_(dataset.num_attributes()) {}

  Result<Clustering> Run() {
    KANON_RETURN_NOT_OK(InitSingletons());
    KANON_RETURN_NOT_OK(MainLoop());
    if (Stopped()) {
      FinalizeDegraded();
    } else {
      DistributeLeftover();
    }
    Clustering out;
    for (uint32_t id : final_) {
      out.clusters.push_back(std::move(clusters_[id].members));
    }
    return out;
  }

 private:
  // One cooperative checkpoint per engine iteration.
  bool CheckPoint(const char* stage) {
    return ctx_ != nullptr && ctx_->CheckPoint(stage);
  }

  bool Stopped() const { return ctx_ != nullptr && ctx_->stopped(); }

  // d(A ∪ B) computed attribute-wise through the join tables; O(r).
  double UnionCost(const ClusterState& a, const ClusterState& b) const {
    double total = 0.0;
    for (size_t j = 0; j < num_attrs_; ++j) {
      const SetId joined =
          scheme_.hierarchy(j).Join(a.closure[j], b.closure[j]);
      total += loss_.EntryCost(j, joined);
    }
    return total / static_cast<double>(num_attrs_);
  }

  double DistFromUnionCost(uint32_t a, uint32_t b, double d_union) const {
    const ClusterState& ca = clusters_[a];
    const ClusterState& cb = clusters_[b];
    return EvalDistance(options_.distance, options_.params,
                        ca.members.size(), cb.members.size(),
                        ca.members.size() + cb.members.size(), ca.cost,
                        cb.cost, d_union);
  }

  double Dist(uint32_t a, uint32_t b) const {
    return DistFromUnionCost(a, b, UnionCost(clusters_[a], clusters_[b]));
  }

  bool Alive(uint32_t id) const { return id != kNone && clusters_[id].alive; }

  // Offers alive candidate (y, d) to x's two-best.
  void Offer(uint32_t x, uint32_t y, double d) {
    CandidatePair& c = cands_[x];
    if (y == c.c1 || y == c.c2) return;
    if (d < c.d1 || (d == c.d1 && y < c.c1)) {
      // The displaced c1 was the exact minimum over the other alive
      // clusters, so it is a correct second bound.
      c.c2 = c.c1;
      c.d2 = c.d1;
      c.second_valid = true;
      c.c1 = y;
      c.d1 = d;
      heap_.push(HeapEntry{d, x, y});
    } else if (d < c.d2 || (d == c.d2 && y < c.c2)) {
      // Tightening the second bound keeps invariant B when it held (y is
      // accounted for explicitly, everyone else was >= old d2 > d).
      c.c2 = y;
      c.d2 = d;
    }
  }

  // Fixes x after the deaths of the just-merged pair. `added` (kNone for a
  // ripe merge) is the freshly created cluster and `d_x_added` its distance
  // from x. Returns true when x needs a full rescan.
  bool Repair(uint32_t x, uint32_t added, double d_x_added) {
    CandidatePair& c = cands_[x];
    if (c.c1 == kNone || Alive(c.c1)) {
      return false;  // Nearest intact (a dead c2 stays as a bound).
    }
    if (added != kNone && d_x_added <= c.d1) {
      // Everyone alive was at distance >= d1 before the merge, so the new
      // cluster is an exact new minimum. The second bound keeps holding.
      c.c1 = added;
      c.d1 = d_x_added;
      heap_.push(HeapEntry{d_x_added, x, added});
      return false;
    }
    if (Alive(c.c2) && c.second_valid) {
      // Invariant B: nothing alive beats d2, so c2 is the exact minimum.
      c.c1 = c.c2;
      c.d1 = c.d2;
      c.c2 = kNone;
      c.d2 = kInf;
      c.second_valid = false;
      heap_.push(HeapEntry{c.d1, x, c.c1});
      return false;
    }
    return true;
  }

  // Recomputes x's two-best over every active cluster. O(active · r).
  void FullRescan(uint32_t x) {
    CandidatePair& c = cands_[x];
    c = CandidatePair();
    for (uint32_t y : active_) {
      if (y == x || !clusters_[y].alive) continue;
      const double d = Dist(x, y);
      if (d < c.d1 || (d == c.d1 && y < c.c1)) {
        c.c2 = c.c1;
        c.d2 = c.d1;
        c.c1 = y;
        c.d1 = d;
      } else if (d < c.d2 || (d == c.d2 && y < c.c2)) {
        c.c2 = y;
        c.d2 = d;
      }
    }
    c.second_valid = true;
    if (c.c1 != kNone) {
      heap_.push(HeapEntry{c.d1, x, c.c1});
    }
  }

  // Exhaustively checks that `dist` is the minimum over all alive pairs.
  void VerifyGlobalMinimum(double dist) const {
    for (uint32_t a : active_) {
      if (!clusters_[a].alive) continue;
      for (uint32_t b : active_) {
        if (a == b || !clusters_[b].alive) continue;
        KANON_CHECK(Dist(a, b) >= dist - 1e-12,
                    "engine merged a non-minimal pair");
      }
    }
  }

  Status InitSingletons() {
    const size_t n = dataset_.num_rows();
    clusters_.reserve(2 * n);
    active_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      ClusterState c;
      c.members = {i};
      c.closure = scheme_.Identity(dataset_.row(i));
      c.cost = loss_.RecordCost(c.closure);
      c.alive = true;
      clusters_.push_back(std::move(c));
      active_.push_back(i);
    }
    num_active_ = n;
    cands_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      // The initial all-pairs scan is the O(n²) part of setup; it honors the
      // same controls as the merge loop so tight deadlines bail early.
      if (CheckPoint("agglomerative/init")) return Status::OK();
      KANON_FAILPOINT("agglomerative.closure");
      FullRescan(i);
    }
    return Status::OK();
  }

  void Deactivate(uint32_t c) {
    clusters_[c].alive = false;
    --num_active_;
    ++num_dead_in_active_;
  }

  void MaybeCompactActive() {
    if (num_dead_in_active_ * 2 < active_.size()) return;
    std::vector<uint32_t> compacted;
    compacted.reserve(num_active_);
    for (uint32_t id : active_) {
      if (clusters_[id].alive) compacted.push_back(id);
    }
    active_ = std::move(compacted);
    num_dead_in_active_ = 0;
  }

  uint32_t NewCluster(ClusterState state) {
    clusters_.push_back(std::move(state));
    const uint32_t id = static_cast<uint32_t>(clusters_.size() - 1);
    if (cands_.size() <= id) {
      cands_.resize(cands_.size() * 2 + 1);
    }
    cands_[id] = CandidatePair();
    return id;
  }

  uint32_t Merge(uint32_t a, uint32_t b) {
    ClusterState merged;
    merged.members = clusters_[a].members;
    merged.members.insert(merged.members.end(), clusters_[b].members.begin(),
                          clusters_[b].members.end());
    std::sort(merged.members.begin(), merged.members.end());
    merged.closure =
        scheme_.JoinRecords(clusters_[a].closure, clusters_[b].closure);
    merged.cost = loss_.RecordCost(merged.closure);
    Deactivate(a);
    Deactivate(b);
    return NewCluster(std::move(merged));
  }

  // One pass over the active set after a merge. When `added` is not kNone
  // it is the freshly created cluster: its two-best is built, it is offered
  // to everyone, and it joins the active set. Clusters whose candidates
  // were wiped out are rescanned at the end (rare).
  void RepairAndMaybeAdd(uint32_t added) {
    std::vector<uint32_t> needs_rescan;
    const bool asymmetric =
        options_.distance == DistanceFunction::kNergizClifton;
    for (uint32_t x : active_) {
      if (!clusters_[x].alive) continue;
      double d_added_x = kInf;
      double d_x_added = kInf;
      if (added != kNone) {
        const double d_union = UnionCost(clusters_[added], clusters_[x]);
        d_added_x = DistFromUnionCost(added, x, d_union);
        d_x_added =
            asymmetric ? DistFromUnionCost(x, added, d_union) : d_added_x;
        Offer(added, x, d_added_x);
      }
      if (Repair(x, added, d_x_added)) {
        needs_rescan.push_back(x);
      } else if (added != kNone) {
        Offer(x, added, d_x_added);
      }
    }
    if (added != kNone) {
      clusters_[added].alive = true;
      ++num_active_;
      active_.push_back(added);
    }
    MaybeCompactActive();
    for (uint32_t x : needs_rescan) {
      if (clusters_[x].alive) FullRescan(x);
    }
  }

  // Algorithm 2: shrinks a ripe cluster to exactly k records; ejected
  // records are returned (they re-enter the pool as singletons).
  std::vector<uint32_t> ShrinkToK(uint32_t id) {
    std::vector<uint32_t> ejected;
    ClusterState& c = clusters_[id];
    while (c.members.size() > k_) {
      const size_t len = c.members.size();
      size_t eject_pos = 0;
      double best_di = -kInf;
      GeneralizedRecord best_closure;
      for (size_t pos = 0; pos < len; ++pos) {
        // Closure and cost of Ŝ ∖ {R̂_pos}.
        GeneralizedRecord closure(num_attrs_);
        bool first = true;
        for (size_t q = 0; q < len; ++q) {
          if (q == pos) continue;
          const uint32_t row = c.members[q];
          for (size_t j = 0; j < num_attrs_; ++j) {
            const SetId leaf = scheme_.hierarchy(j).LeafOf(dataset_.at(row, j));
            closure[j] =
                first ? leaf : scheme_.hierarchy(j).Join(closure[j], leaf);
          }
          first = false;
        }
        const double d_minus = loss_.RecordCost(closure);
        // dist(Ŝ, Ŝ ∖ {R̂_pos}): the union is Ŝ itself.
        const double di =
            EvalDistance(options_.distance, options_.params, len, len - 1,
                         len, c.cost, d_minus, c.cost);
        if (di > best_di) {
          best_di = di;
          eject_pos = pos;
          best_closure = std::move(closure);
        }
      }
      ejected.push_back(c.members[eject_pos]);
      c.members.erase(c.members.begin() +
                      static_cast<ptrdiff_t>(eject_pos));
      c.closure = std::move(best_closure);
      c.cost = loss_.RecordCost(c.closure);
    }
    return ejected;
  }

  Status MainLoop() {
    if (Stopped()) return Status::OK();  // Init was interrupted.
    while (num_active_ > 1) {
      if (CheckPoint("agglomerative/merge")) return Status::OK();
      KANON_FAILPOINT("agglomerative.closure");
      KANON_CHECK(!heap_.empty(), "active clusters must have heap entries");
      const HeapEntry entry = heap_.top();
      heap_.pop();
      // Distances are immutable per pair, so an entry is valid iff both
      // endpoints are alive; invariant A guarantees the first valid pop is
      // a globally closest pair.
      if (!Alive(entry.a) || !Alive(entry.b)) continue;
      if (options_.check_exact_merges) {
        VerifyGlobalMinimum(entry.dist);
      }
      const uint32_t merged = Merge(entry.a, entry.b);
      if (clusters_[merged].members.size() >= k_) {
        if (options_.modified && clusters_[merged].members.size() > k_) {
          const std::vector<uint32_t> ejected = ShrinkToK(merged);
          final_.push_back(merged);
          RepairAndMaybeAdd(kNone);
          for (uint32_t row : ejected) {
            ClusterState single;
            single.members = {row};
            single.closure = scheme_.Identity(dataset_.row(row));
            single.cost = loss_.RecordCost(single.closure);
            const uint32_t sid = NewCluster(std::move(single));
            RepairAndMaybeAdd(sid);
          }
        } else {
          final_.push_back(merged);
          RepairAndMaybeAdd(kNone);
        }
      } else {
        RepairAndMaybeAdd(merged);
      }
    }
    return Status::OK();
  }

  // Graceful wind-down after an interruption (deadline, cancel, budget):
  // records still in undersized clusters are pooled into one catch-all
  // cluster when they number at least k, and otherwise attached to their
  // nearest finished cluster — so the result is k-anonymous either way.
  void FinalizeDegraded() {
    std::vector<uint32_t> leftover;
    for (uint32_t x : active_) {
      if (!clusters_[x].alive) continue;
      leftover.insert(leftover.end(), clusters_[x].members.begin(),
                      clusters_[x].members.end());
      clusters_[x].alive = false;
    }
    if (leftover.empty()) return;  // Interrupted after the last ripening.
    std::sort(leftover.begin(), leftover.end());
    if (ctx_ != nullptr) {
      ctx_->NoteDegraded("agglomerative/merge");
      ctx_->AddRecordsSuppressed(leftover.size());
    }
    if (final_.empty() || leftover.size() >= k_) {
      // One catch-all cluster. When no cluster ripened yet the pool is the
      // whole dataset, and k <= n makes it valid.
      ClusterState pool;
      pool.members = std::move(leftover);
      pool.closure = scheme_.ClosureOfRows(dataset_, pool.members);
      pool.cost = loss_.RecordCost(pool.closure);
      final_.push_back(NewCluster(std::move(pool)));
      return;
    }
    // Fewer than k stragglers: nearest-final attachment, as in the normal
    // leftover pass (one cheap scan per record).
    for (uint32_t row : leftover) {
      ClusterState single;
      single.members = {row};
      single.closure = scheme_.Identity(dataset_.row(row));
      single.cost = loss_.RecordCost(single.closure);
      size_t best_pos = 0;
      double best_dist = kInf;
      for (size_t pos = 0; pos < final_.size(); ++pos) {
        const ClusterState& target = clusters_[final_[pos]];
        const double d_union = UnionCost(single, target);
        const double d =
            EvalDistance(options_.distance, options_.params, 1,
                         target.members.size(), target.members.size() + 1,
                         single.cost, target.cost, d_union);
        if (d < best_dist) {
          best_dist = d;
          best_pos = pos;
        }
      }
      ClusterState& target = clusters_[final_[best_pos]];
      target.members.push_back(row);
      std::sort(target.members.begin(), target.members.end());
      target.closure = scheme_.JoinRecords(target.closure, single.closure);
      target.cost = loss_.RecordCost(target.closure);
    }
  }

  // Line 10 of Algorithm 1: every record of the leftover (<k) cluster joins
  // the final cluster minimizing dist({R}, S).
  void DistributeLeftover() {
    std::vector<uint32_t> leftover;
    for (uint32_t x : active_) {
      if (!clusters_[x].alive) continue;
      leftover.insert(leftover.end(), clusters_[x].members.begin(),
                      clusters_[x].members.end());
      clusters_[x].alive = false;
    }
    if (leftover.empty()) return;
    KANON_CHECK(!final_.empty(),
                "no ripe cluster to absorb leftover records (k > n?)");
    std::sort(leftover.begin(), leftover.end());
    for (uint32_t row : leftover) {
      ClusterState single;
      single.members = {row};
      single.closure = scheme_.Identity(dataset_.row(row));
      single.cost = loss_.RecordCost(single.closure);

      size_t best_pos = 0;
      double best_dist = kInf;
      for (size_t pos = 0; pos < final_.size(); ++pos) {
        const ClusterState& target = clusters_[final_[pos]];
        const double d_union = UnionCost(single, target);
        const double d =
            EvalDistance(options_.distance, options_.params, 1,
                         target.members.size(), target.members.size() + 1,
                         single.cost, target.cost, d_union);
        if (d < best_dist) {
          best_dist = d;
          best_pos = pos;
        }
      }
      ClusterState& target = clusters_[final_[best_pos]];
      target.members.push_back(row);
      std::sort(target.members.begin(), target.members.end());
      target.closure = scheme_.JoinRecords(target.closure, single.closure);
      target.cost = loss_.RecordCost(target.closure);
    }
  }

  const Dataset& dataset_;
  const PrecomputedLoss& loss_;
  const GeneralizationScheme& scheme_;
  const size_t k_;
  const AgglomerativeOptions& options_;
  RunContext* const ctx_;
  const size_t num_attrs_;

  std::vector<ClusterState> clusters_;
  std::vector<uint32_t> active_;  // Ids; may contain dead entries.
  size_t num_active_ = 0;
  size_t num_dead_in_active_ = 0;
  std::vector<uint32_t> final_;
  std::vector<CandidatePair> cands_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryGreater>
      heap_;
};

}  // namespace

Result<Clustering> AgglomerativeCluster(const Dataset& dataset,
                                        const PrecomputedLoss& loss, size_t k,
                                        const AgglomerativeOptions& options) {
  const size_t n = dataset.num_rows();
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > n) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds the number of records " +
                                   std::to_string(n));
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  if (k == 1) {
    // Identity clustering: nothing to anonymize.
    Clustering out;
    out.clusters.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      out.clusters.push_back({i});
    }
    return out;
  }
  return Engine(dataset, loss, k, options).Run();
}

Result<GeneralizedTable> AgglomerativeKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const AgglomerativeOptions& options) {
  KANON_ASSIGN_OR_RETURN(Clustering clustering,
                         AgglomerativeCluster(dataset, loss, k, options));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

}  // namespace kanon
