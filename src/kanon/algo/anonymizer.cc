#include "kanon/algo/anonymizer.h"

#include <map>
#include <type_traits>
#include <utility>
#include <vector>

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/agglomerative_engine.h"
#include "kanon/algo/forest.h"
#include "kanon/algo/global_anonymizer.h"
#include "kanon/algo/global_recoding.h"
#include "kanon/algo/kk_anonymizer.h"
#include "kanon/algo/policy.h"
#include "kanon/algo/policy_weighted.h"
#include "kanon/common/timer.h"

namespace kanon {

namespace {

// Root-span labels: one literal per method (SpanEvent stores const char*).
const char* PipelineSpanName(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
      return "pipeline/agglomerative";
    case AnonymizationMethod::kModifiedAgglomerative:
      return "pipeline/modified-agglomerative";
    case AnonymizationMethod::kForest:
      return "pipeline/forest";
    case AnonymizationMethod::kKKNearestNeighbors:
      return "pipeline/kk-nearest-neighbors";
    case AnonymizationMethod::kKKGreedyExpansion:
      return "pipeline/kk-greedy-expansion";
    case AnonymizationMethod::kGlobal:
      return "pipeline/global-1k";
    case AnonymizationMethod::kFullDomain:
      return "pipeline/full-domain";
  }
  return "pipeline/unknown";
}

// The whole method switch, templated on an already-dispatched policy: from
// here down no code inspects the DistanceFunction enum again — every
// pipeline runs on the policy's inlined hooks. `loss` is the substrate the
// pipeline prices clusters on (the reweighted copy when attribute weights
// are set), which may differ from the loss the caller reports Π under.
template <typename Policy>
Result<GeneralizedTable> RunPipeline(const Dataset& dataset,
                                     const PrecomputedLoss& loss,
                                     const AnonymizerConfig& config,
                                     const Policy& policy,
                                     EngineCounters* counters) {
  RunContext* const ctx = config.run_context;
  switch (config.method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative: {
      AgglomerativeOptions options;
      options.distance = config.distance;
      options.params = config.params;
      options.modified =
          config.method == AnonymizationMethod::kModifiedAgglomerative;
      options.run_context = ctx;
      options.num_threads = config.num_threads;
      options.counters = counters;
      return AgglomerativeKAnonymizeWithPolicy(dataset, loss, config.k,
                                               options, policy);
    }
    case AnonymizationMethod::kForest:
      return ForestKAnonymizeWithPolicy(dataset, loss, config.k, policy, ctx,
                                        counters);
    case AnonymizationMethod::kKKNearestNeighbors:
      return KKAnonymizeWithPolicy(dataset, loss, config.k,
                                   K1Algorithm::kNearestNeighbors, policy, ctx,
                                   config.num_threads, counters);
    case AnonymizationMethod::kKKGreedyExpansion:
      return KKAnonymizeWithPolicy(dataset, loss, config.k,
                                   K1Algorithm::kGreedyExpansion, policy, ctx,
                                   config.num_threads, counters);
    case AnonymizationMethod::kGlobal: {
      Result<GeneralizedTable> kk = KKAnonymizeWithPolicy(
          dataset, loss, config.k, K1Algorithm::kGreedyExpansion, policy, ctx,
          config.num_threads, counters);
      if (!kk.ok()) return kk.status();
      Result<GlobalAnonymizationResult> global =
          MakeGlobal1KAnonymousWithPolicy(dataset, loss, config.k,
                                          std::move(kk).value(), policy, ctx,
                                          counters);
      if (!global.ok()) return global.status();
      return std::move(global->table);
    }
    case AnonymizationMethod::kFullDomain: {
      Result<GlobalRecodingResult> recoded = GlobalRecodingKAnonymizeWithPolicy(
          dataset, loss, config.k, policy, ctx, config.num_threads, counters);
      if (!recoded.ok()) return recoded.status();
      return std::move(recoded->table);
    }
  }
  return Status::Internal("unreachable anonymization method");
}

}  // namespace

const char* AnonymizationMethodName(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
      return "agglomerative";
    case AnonymizationMethod::kModifiedAgglomerative:
      return "modified-agglomerative";
    case AnonymizationMethod::kForest:
      return "forest";
    case AnonymizationMethod::kKKNearestNeighbors:
      return "kk-nearest-neighbors";
    case AnonymizationMethod::kKKGreedyExpansion:
      return "kk-greedy-expansion";
    case AnonymizationMethod::kGlobal:
      return "global-1k";
    case AnonymizationMethod::kFullDomain:
      return "full-domain";
  }
  return "unknown";
}

void PublishCounters(const EngineCounters& counters, MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("engine.merges")->Set(counters.merges);
  metrics->GetCounter("engine.rescans")->Set(counters.rescans);
  metrics->GetCounter("engine.heap_rebuilds")->Set(counters.heap_rebuilds);
  metrics->GetCounter("engine.closure_hits")->Set(counters.closure_hits);
  metrics->GetCounter("engine.closure_misses")->Set(counters.closure_misses);
  metrics->GetCounter("engine.upgrade_steps")->Set(counters.upgrade_steps);
  metrics->GetCounter("engine.parallel_chunks")->Set(counters.parallel_chunks);
  metrics->GetGauge("engine.closure_hit_rate")
      ->Set(counters.closure_hit_rate());
}

void PublishResultMetrics(const AnonymizationResult& result,
                          MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("run.rows")->Set(result.table.num_rows());
  metrics->GetCounter("run.iterations_completed")
      ->Set(result.iterations_completed);
  metrics->GetCounter("run.records_suppressed")
      ->Set(result.records_suppressed);
  metrics->GetCounter("run.degraded")->Set(result.degraded ? 1 : 0);
  metrics->GetGauge("run.loss")->Set(result.loss);
  metrics->GetGauge("run.elapsed_seconds", /*deterministic=*/false)
      ->Set(result.elapsed_seconds);
  // Equivalence-class (cluster) size distribution of the published table.
  std::map<GeneralizedRecord, size_t> classes;
  for (size_t row = 0; row < result.table.num_rows(); ++row) {
    ++classes[result.table.record(row)];
  }
  Histogram* const sizes = metrics->GetHistogram(
      "cluster.size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256});
  for (const auto& [record, size] : classes) {
    sizes->Observe(static_cast<double>(size));
  }
  metrics->GetCounter("run.clusters")->Set(classes.size());
}

Result<AnonymizationResult> Anonymize(const Dataset& dataset,
                                      const PrecomputedLoss& loss,
                                      const AnonymizerConfig& config) {
  Timer timer;
  RunContext* const ctx = config.run_context;
  // Install the run's telemetry sinks for this thread: engines and the
  // parallel sweep issuer pick them up via CurrentTracer()/CurrentMetrics().
  const ScopedTelemetry telemetry(config.tracer, config.metrics);
  PhaseSpan pipeline_span(config.tracer, PipelineSpanName(config.method));
  EngineCounters counters;
  // The one runtime distance dispatch of the whole run: the enum becomes a
  // compile-time policy here, and RunPipeline's method switch runs on the
  // policy's inlined hooks (docs/policy_engine.md).
  Result<GeneralizedTable> table = DispatchDistancePolicy(
      config.distance, config.params,
      [&](const auto& policy) -> Result<GeneralizedTable> {
        using Base = std::decay_t<decltype(policy)>;
        if (config.attr_weights.empty()) {
          return RunPipeline(dataset, loss, config, policy, &counters);
        }
        // Weighted attributes: bind the reweighted substrate to the policy
        // (algo/policy_weighted.h) and run the pipeline against it.
        Result<AttrWeightedPolicy<Base>> weighted =
            AttrWeightedPolicy<Base>::Create(policy, loss,
                                             config.attr_weights);
        if (!weighted.ok()) return weighted.status();
        if (config.method == AnonymizationMethod::kAgglomerative ||
            config.method == AnonymizationMethod::kModifiedAgglomerative) {
          // The header-templated agglomerative engine instantiates directly
          // on the new policy type — the no-pipeline-edit extensibility
          // contract, exercised on the main path.
          AgglomerativeOptions options;
          options.distance = config.distance;
          options.params = config.params;
          options.modified =
              config.method == AnonymizationMethod::kModifiedAgglomerative;
          options.run_context = config.run_context;
          options.num_threads = config.num_threads;
          options.counters = &counters;
          return AgglomerativeKAnonymizeWithPolicy(
              dataset, weighted->loss(), config.k, options, *weighted);
        }
        // The .cc-templated pipelines are instantiated for the five base
        // policies; AttrWeightedPolicy inherits the Base hooks unchanged,
        // so they run on the Base facet over the reweighted substrate.
        return RunPipeline(dataset, weighted->loss(), config,
                           static_cast<const Base&>(*weighted), &counters);
      });
  if (!table.ok()) return table.status();

  AnonymizationResult result{std::move(table).value(),
                             0.0,
                             0.0,
                             false,
                             StopReason::kNone,
                             0,
                             0,
                             std::string(),
                             counters};
  result.loss = loss.TableLoss(result.table);
  result.elapsed_seconds = timer.ElapsedSeconds();
  if (ctx != nullptr) {
    const RunStats& stats = ctx->stats();
    result.degraded = stats.degraded;
    result.stop_reason = stats.stop_reason;
    result.iterations_completed = stats.iterations_completed;
    result.records_suppressed = stats.records_suppressed;
    result.degraded_stage = stats.degraded_stage;
  }
  PublishCounters(counters, config.metrics);
  PublishResultMetrics(result, config.metrics);
  return result;
}

}  // namespace kanon
