#include "kanon/algo/anonymizer.h"

#include <map>
#include <utility>
#include <vector>

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/forest.h"
#include "kanon/algo/global_anonymizer.h"
#include "kanon/algo/global_recoding.h"
#include "kanon/algo/kk_anonymizer.h"
#include "kanon/common/timer.h"

namespace kanon {

namespace {

// Root-span labels: one literal per method (SpanEvent stores const char*).
const char* PipelineSpanName(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
      return "pipeline/agglomerative";
    case AnonymizationMethod::kModifiedAgglomerative:
      return "pipeline/modified-agglomerative";
    case AnonymizationMethod::kForest:
      return "pipeline/forest";
    case AnonymizationMethod::kKKNearestNeighbors:
      return "pipeline/kk-nearest-neighbors";
    case AnonymizationMethod::kKKGreedyExpansion:
      return "pipeline/kk-greedy-expansion";
    case AnonymizationMethod::kGlobal:
      return "pipeline/global-1k";
    case AnonymizationMethod::kFullDomain:
      return "pipeline/full-domain";
  }
  return "pipeline/unknown";
}

}  // namespace

const char* AnonymizationMethodName(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
      return "agglomerative";
    case AnonymizationMethod::kModifiedAgglomerative:
      return "modified-agglomerative";
    case AnonymizationMethod::kForest:
      return "forest";
    case AnonymizationMethod::kKKNearestNeighbors:
      return "kk-nearest-neighbors";
    case AnonymizationMethod::kKKGreedyExpansion:
      return "kk-greedy-expansion";
    case AnonymizationMethod::kGlobal:
      return "global-1k";
    case AnonymizationMethod::kFullDomain:
      return "full-domain";
  }
  return "unknown";
}

void PublishCounters(const EngineCounters& counters, MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("engine.merges")->Set(counters.merges);
  metrics->GetCounter("engine.rescans")->Set(counters.rescans);
  metrics->GetCounter("engine.heap_rebuilds")->Set(counters.heap_rebuilds);
  metrics->GetCounter("engine.closure_hits")->Set(counters.closure_hits);
  metrics->GetCounter("engine.closure_misses")->Set(counters.closure_misses);
  metrics->GetCounter("engine.upgrade_steps")->Set(counters.upgrade_steps);
  metrics->GetCounter("engine.parallel_chunks")->Set(counters.parallel_chunks);
  metrics->GetGauge("engine.closure_hit_rate")
      ->Set(counters.closure_hit_rate());
}

void PublishResultMetrics(const AnonymizationResult& result,
                          MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("run.rows")->Set(result.table.num_rows());
  metrics->GetCounter("run.iterations_completed")
      ->Set(result.iterations_completed);
  metrics->GetCounter("run.records_suppressed")
      ->Set(result.records_suppressed);
  metrics->GetCounter("run.degraded")->Set(result.degraded ? 1 : 0);
  metrics->GetGauge("run.loss")->Set(result.loss);
  metrics->GetGauge("run.elapsed_seconds", /*deterministic=*/false)
      ->Set(result.elapsed_seconds);
  // Equivalence-class (cluster) size distribution of the published table.
  std::map<GeneralizedRecord, size_t> classes;
  for (size_t row = 0; row < result.table.num_rows(); ++row) {
    ++classes[result.table.record(row)];
  }
  Histogram* const sizes = metrics->GetHistogram(
      "cluster.size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256});
  for (const auto& [record, size] : classes) {
    sizes->Observe(static_cast<double>(size));
  }
  metrics->GetCounter("run.clusters")->Set(classes.size());
}

Result<AnonymizationResult> Anonymize(const Dataset& dataset,
                                      const PrecomputedLoss& loss,
                                      const AnonymizerConfig& config) {
  Timer timer;
  RunContext* const ctx = config.run_context;
  // Install the run's telemetry sinks for this thread: engines and the
  // parallel sweep issuer pick them up via CurrentTracer()/CurrentMetrics().
  const ScopedTelemetry telemetry(config.tracer, config.metrics);
  PhaseSpan pipeline_span(config.tracer, PipelineSpanName(config.method));
  EngineCounters counters;
  Result<GeneralizedTable> table = Status::Internal("unreachable");
  switch (config.method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative: {
      AgglomerativeOptions options;
      options.distance = config.distance;
      options.params = config.params;
      options.modified =
          config.method == AnonymizationMethod::kModifiedAgglomerative;
      options.run_context = ctx;
      options.num_threads = config.num_threads;
      options.counters = &counters;
      table = AgglomerativeKAnonymize(dataset, loss, config.k, options);
      break;
    }
    case AnonymizationMethod::kForest:
      table = ForestKAnonymize(dataset, loss, config.k, ctx, &counters);
      break;
    case AnonymizationMethod::kKKNearestNeighbors:
      table = KKAnonymize(dataset, loss, config.k,
                          K1Algorithm::kNearestNeighbors, ctx,
                          config.num_threads, &counters);
      break;
    case AnonymizationMethod::kKKGreedyExpansion:
      table = KKAnonymize(dataset, loss, config.k,
                          K1Algorithm::kGreedyExpansion, ctx,
                          config.num_threads, &counters);
      break;
    case AnonymizationMethod::kGlobal: {
      Result<GeneralizedTable> kk = KKAnonymize(
          dataset, loss, config.k, K1Algorithm::kGreedyExpansion, ctx,
          config.num_threads, &counters);
      if (!kk.ok()) return kk.status();
      Result<GlobalAnonymizationResult> global = MakeGlobal1KAnonymous(
          dataset, loss, config.k, std::move(kk).value(), ctx, &counters);
      if (!global.ok()) return global.status();
      table = std::move(global->table);
      break;
    }
    case AnonymizationMethod::kFullDomain: {
      Result<GlobalRecodingResult> recoded = GlobalRecodingKAnonymize(
          dataset, loss, config.k, ctx, config.num_threads, &counters);
      if (!recoded.ok()) return recoded.status();
      table = std::move(recoded->table);
      break;
    }
  }
  if (!table.ok()) return table.status();

  AnonymizationResult result{std::move(table).value(),
                             0.0,
                             0.0,
                             false,
                             StopReason::kNone,
                             0,
                             0,
                             std::string(),
                             counters};
  result.loss = loss.TableLoss(result.table);
  result.elapsed_seconds = timer.ElapsedSeconds();
  if (ctx != nullptr) {
    const RunStats& stats = ctx->stats();
    result.degraded = stats.degraded;
    result.stop_reason = stats.stop_reason;
    result.iterations_completed = stats.iterations_completed;
    result.records_suppressed = stats.records_suppressed;
    result.degraded_stage = stats.degraded_stage;
  }
  PublishCounters(counters, config.metrics);
  PublishResultMetrics(result, config.metrics);
  return result;
}

}  // namespace kanon
