#include "kanon/algo/anonymizer.h"

#include <utility>

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/forest.h"
#include "kanon/algo/global_anonymizer.h"
#include "kanon/algo/global_recoding.h"
#include "kanon/algo/kk_anonymizer.h"
#include "kanon/common/timer.h"

namespace kanon {

const char* AnonymizationMethodName(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
      return "agglomerative";
    case AnonymizationMethod::kModifiedAgglomerative:
      return "modified-agglomerative";
    case AnonymizationMethod::kForest:
      return "forest";
    case AnonymizationMethod::kKKNearestNeighbors:
      return "kk-nearest-neighbors";
    case AnonymizationMethod::kKKGreedyExpansion:
      return "kk-greedy-expansion";
    case AnonymizationMethod::kGlobal:
      return "global-1k";
    case AnonymizationMethod::kFullDomain:
      return "full-domain";
  }
  return "unknown";
}

Result<AnonymizationResult> Anonymize(const Dataset& dataset,
                                      const PrecomputedLoss& loss,
                                      const AnonymizerConfig& config) {
  Timer timer;
  RunContext* const ctx = config.run_context;
  EngineCounters counters;
  Result<GeneralizedTable> table = Status::Internal("unreachable");
  switch (config.method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative: {
      AgglomerativeOptions options;
      options.distance = config.distance;
      options.params = config.params;
      options.modified =
          config.method == AnonymizationMethod::kModifiedAgglomerative;
      options.run_context = ctx;
      options.num_threads = config.num_threads;
      options.counters = &counters;
      table = AgglomerativeKAnonymize(dataset, loss, config.k, options);
      break;
    }
    case AnonymizationMethod::kForest:
      table = ForestKAnonymize(dataset, loss, config.k, ctx, &counters);
      break;
    case AnonymizationMethod::kKKNearestNeighbors:
      table = KKAnonymize(dataset, loss, config.k,
                          K1Algorithm::kNearestNeighbors, ctx,
                          config.num_threads, &counters);
      break;
    case AnonymizationMethod::kKKGreedyExpansion:
      table = KKAnonymize(dataset, loss, config.k,
                          K1Algorithm::kGreedyExpansion, ctx,
                          config.num_threads, &counters);
      break;
    case AnonymizationMethod::kGlobal: {
      Result<GeneralizedTable> kk = KKAnonymize(
          dataset, loss, config.k, K1Algorithm::kGreedyExpansion, ctx,
          config.num_threads, &counters);
      if (!kk.ok()) return kk.status();
      Result<GlobalAnonymizationResult> global = MakeGlobal1KAnonymous(
          dataset, loss, config.k, std::move(kk).value(), ctx, &counters);
      if (!global.ok()) return global.status();
      table = std::move(global->table);
      break;
    }
    case AnonymizationMethod::kFullDomain: {
      Result<GlobalRecodingResult> recoded = GlobalRecodingKAnonymize(
          dataset, loss, config.k, ctx, config.num_threads, &counters);
      if (!recoded.ok()) return recoded.status();
      table = std::move(recoded->table);
      break;
    }
  }
  if (!table.ok()) return table.status();

  AnonymizationResult result{std::move(table).value(), 0.0,  0.0,
                             false,                    StopReason::kNone,
                             0,                        0,
                             counters};
  result.loss = loss.TableLoss(result.table);
  result.elapsed_seconds = timer.ElapsedSeconds();
  if (ctx != nullptr) {
    const RunStats& stats = ctx->stats();
    result.degraded = stats.degraded;
    result.stop_reason = stats.stop_reason;
    result.iterations_completed = stats.iterations_completed;
    result.records_suppressed = stats.records_suppressed;
  }
  return result;
}

}  // namespace kanon
