#include "kanon/algo/forest.h"

#include <algorithm>
#include <limits>

#include "kanon/algo/core/union_find.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"
#include "kanon/loss/kernels.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();

// The forest's per-pair decisions are raw pairwise closure costs, so the
// policy contributes its cost hooks: PairCost weighs the candidate edges of
// phase 1 and Ripe decides when a component stops growing. Every built-in
// distance policy leaves both at the identity defaults — the five
// instantiations below behave identically by construction.
template <typename Policy>
class ForestBuilder {
  KANON_ASSERT_CLUSTER_POLICY(Policy);

 public:
  ForestBuilder(const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
                const Policy& policy, RunContext* ctx,
                EngineCounters* counters)
      : k_(k),
        n_(dataset.num_rows()),
        policy_(policy),
        ctx_(ctx),
        counters_(counters),
        kernels_(dataset, loss),
        uf_(dataset.num_rows()) {}

  Result<Clustering> Run() {
    KANON_RETURN_NOT_OK(GrowForest());
    Clustering out;
    if (Stopped()) {
      FinalizeDegraded(&out);
      return out;
    }
    PhaseSpan split_span(CurrentTracer(), "forest/split");
    for (const std::vector<uint32_t>& tree : Trees()) {
      SplitTree(tree, &out);
    }
    return out;
  }

 private:
  bool CheckPoint(const char* stage) {
    return ctx_ != nullptr && ctx_->CheckPoint(stage);
  }

  bool Stopped() const { return ctx_ != nullptr && ctx_->stopped(); }

  // Refreshes record u's cached nearest out-of-component record. One
  // columnar sweep fills w(u, v) = d({R_u, R_v}) for every v, then a serial
  // ascending scan picks the minimum — same strict comparison and tie
  // order as the per-pair loop it replaced.
  void RecomputeBest(uint32_t u) {
    if (counters_ != nullptr) ++counters_->rescans;
    const uint32_t root = uf_.Find(u);
    best_v_[u] = kNone;
    best_w_[u] = std::numeric_limits<double>::infinity();
    pair_w_.resize(n_);
    kernels_.PairCostSweep(u, pair_w_.data());
    for (uint32_t v = 0; v < n_; ++v) {
      if (uf_.Find(v) == root) continue;
      const double w = policy_.PairCost(pair_w_[v]);
      if (w < best_w_[u]) {
        best_w_[u] = w;
        best_v_[u] = v;
      }
    }
  }

  // Phase 1: every component reaches size >= k.
  Status GrowForest() {
    {
      PhaseSpan init_span(CurrentTracer(), "forest/init");
      init_span.set_items(n_);
      best_v_.assign(n_, kNone);
      best_w_.assign(n_, std::numeric_limits<double>::infinity());
      members_.assign(n_, {});
      adjacency_.assign(n_, {});
      for (uint32_t i = 0; i < n_; ++i) members_[i] = {i};
      for (uint32_t i = 0; i < n_; ++i) {
        // The all-pairs nearest-neighbor scan is the O(n²) part of setup; it
        // honors the same controls as the growth loop.
        if (CheckPoint("forest/init")) return Status::OK();
        KANON_FAILPOINT("forest.closure");
        RecomputeBest(i);
      }
    }

    PhaseSpan grow_span(CurrentTracer(), "forest/grow");
    std::vector<uint32_t> pending;  // Roots that may still be small.
    for (uint32_t i = 0; i < n_; ++i) pending.push_back(i);

    while (!pending.empty()) {
      if (CheckPoint("forest/grow")) return Status::OK();
      KANON_FAILPOINT("forest.closure");
      const uint32_t root = pending.back();
      pending.pop_back();
      if (uf_.Find(root) != root) continue;               // Stale: merged away.
      if (policy_.Ripe(members_[root].size(), k_)) continue;  // Big enough.

      // Cheapest outgoing edge of the component.
      uint32_t best_u = kNone;
      for (uint32_t u : members_[root]) {
        if (best_v_[u] != kNone && uf_.Find(best_v_[u]) == root) {
          RecomputeBest(u);
        }
        if (best_u == kNone || best_w_[u] < best_w_[best_u]) {
          best_u = u;
        }
      }
      KANON_CHECK(best_u != kNone && best_v_[best_u] != kNone,
                  "a small component must have an outgoing edge (k <= n)");

      const uint32_t u = best_u;
      const uint32_t v = best_v_[u];
      adjacency_[u].push_back(v);
      adjacency_[v].push_back(u);
      const uint32_t other_root = uf_.Find(v);
      const uint32_t merged_root = uf_.Union(root, other_root);
      if (counters_ != nullptr) ++counters_->merges;
      const uint32_t losing_root = merged_root == root ? other_root : root;
      members_[merged_root].insert(members_[merged_root].end(),
                                   members_[losing_root].begin(),
                                   members_[losing_root].end());
      members_[losing_root].clear();
      members_[losing_root].shrink_to_fit();
      if (!policy_.Ripe(members_[merged_root].size(), k_)) {
        pending.push_back(merged_root);
      }
    }
    return Status::OK();
  }

  // Graceful wind-down after an interruption: components already of size
  // >= k become clusters as-is (the utility-only 3k−3 splitting of phase 2
  // is skipped), and records of still-small components are pooled — into
  // their own cluster when the pool reaches k, otherwise into a grown tree.
  void FinalizeDegraded(Clustering* out) {
    std::vector<uint32_t> pool;
    for (uint32_t i = 0; i < n_; ++i) {
      if (uf_.Find(i) != i || members_[i].empty()) continue;
      if (policy_.Ripe(members_[i].size(), k_)) {
        std::vector<uint32_t> tree = members_[i];
        std::sort(tree.begin(), tree.end());
        out->clusters.push_back(std::move(tree));
      } else {
        pool.insert(pool.end(), members_[i].begin(), members_[i].end());
      }
    }
    if (ctx_ != nullptr) {
      ctx_->NoteDegraded("forest/grow");
      ctx_->AddRecordsSuppressed(pool.size());
    }
    if (pool.empty()) return;
    std::sort(pool.begin(), pool.end());
    if (pool.size() >= k_) {
      out->clusters.push_back(std::move(pool));
      return;
    }
    // A pool below k implies some component grew to k (k <= n); merge the
    // stragglers into the first such tree.
    KANON_CHECK(!out->clusters.empty(),
                "pool below k requires a grown tree (k <= n)");
    std::vector<uint32_t>& host = out->clusters.front();
    host.insert(host.end(), pool.begin(), pool.end());
    std::sort(host.begin(), host.end());
  }

  // Connected components of the grown forest, as sorted node lists.
  std::vector<std::vector<uint32_t>> Trees() {
    std::vector<std::vector<uint32_t>> trees;
    std::vector<bool> seen(n_, false);
    for (uint32_t start = 0; start < n_; ++start) {
      if (seen[start]) continue;
      std::vector<uint32_t> tree;
      std::vector<uint32_t> stack = {start};
      seen[start] = true;
      while (!stack.empty()) {
        const uint32_t u = stack.back();
        stack.pop_back();
        tree.push_back(u);
        for (uint32_t v : adjacency_[u]) {
          if (!seen[v]) {
            seen[v] = true;
            stack.push_back(v);
          }
        }
      }
      std::sort(tree.begin(), tree.end());
      trees.push_back(std::move(tree));
    }
    return trees;
  }

  // Phase 2: splits a tree into clusters of size in [k, 3k-3].
  void SplitTree(const std::vector<uint32_t>& nodes, Clustering* out) {
    const size_t limit = std::max(3 * k_ - 3, k_);  // 3k-3 (k>=2), k for k=1.
    if (nodes.size() <= limit) {
      out->clusters.push_back(nodes);
      return;
    }

    // Root the tree at its smallest node; compute a BFS order and parents,
    // restricted to `nodes`.
    std::vector<bool> in_tree(n_, false);
    for (uint32_t u : nodes) in_tree[u] = true;
    std::vector<uint32_t> parent(n_, kNone);
    std::vector<uint32_t> depth(n_, 0);
    std::vector<uint32_t> order;
    order.reserve(nodes.size());
    const uint32_t root = nodes[0];
    order.push_back(root);
    parent[root] = root;
    for (size_t head = 0; head < order.size(); ++head) {
      const uint32_t u = order[head];
      for (uint32_t v : adjacency_[u]) {
        if (in_tree[v] && parent[v] == kNone) {
          parent[v] = u;
          depth[v] = depth[u] + 1;
          order.push_back(v);
        }
      }
    }
    KANON_CHECK(order.size() == nodes.size(), "forest edges must form a tree");

    std::vector<uint32_t> subtree_size(n_, 0);
    for (size_t pos = order.size(); pos-- > 0;) {
      const uint32_t u = order[pos];
      subtree_size[u] += 1;
      if (u != root) subtree_size[parent[u]] += subtree_size[u];
    }

    // Deepest vertex whose subtree has at least k nodes (ties: smallest id).
    uint32_t v = root;
    for (uint32_t u : nodes) {
      if (subtree_size[u] < k_) continue;
      if (depth[u] > depth[v] || (depth[u] == depth[v] && u < v)) {
        v = u;
      }
    }

    std::vector<uint32_t> part_a;  // Will satisfy k <= |A| <= 2k-2 <= limit.
    if (v != root && nodes.size() - subtree_size[v] >= k_) {
      // Cut the edge above v: subtree(v) vs. the rest, both of size >= k.
      CollectSubtree(v, parent, in_tree, &part_a);
    } else {
      // The rest above v is smaller than k, so subtree(v) >= 2k-1 and every
      // child subtree of v is < k. Greedily group child subtrees until the
      // group reaches k; the group is a valid cluster and removing it
      // leaves a connected tree of size >= k.
      for (uint32_t c : adjacency_[v]) {
        if (!in_tree[c] || parent[c] != v) continue;
        std::vector<uint32_t> child_nodes;
        CollectSubtree(c, parent, in_tree, &child_nodes);
        part_a.insert(part_a.end(), child_nodes.begin(), child_nodes.end());
        if (part_a.size() >= k_) break;
      }
      KANON_CHECK(part_a.size() >= k_ && part_a.size() <= 2 * k_ - 2,
                  "child-subtree group size out of range");
    }

    std::sort(part_a.begin(), part_a.end());
    std::vector<uint32_t> part_b;
    part_b.reserve(nodes.size() - part_a.size());
    std::set_difference(nodes.begin(), nodes.end(), part_a.begin(),
                        part_a.end(), std::back_inserter(part_b));
    KANON_CHECK(part_b.size() >= k_, "remainder must keep at least k nodes");

    if (part_a.size() <= limit) {
      out->clusters.push_back(std::move(part_a));
    } else {
      SplitTree(part_a, out);
    }
    SplitTree(part_b, out);
  }

  void CollectSubtree(uint32_t start, const std::vector<uint32_t>& parent,
                      const std::vector<bool>& in_tree,
                      std::vector<uint32_t>* out_nodes) {
    std::vector<uint32_t> stack = {start};
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      out_nodes->push_back(u);
      for (uint32_t w : adjacency_[u]) {
        if (in_tree[w] && parent[w] == u) {
          stack.push_back(w);
        }
      }
    }
  }

  const size_t k_;
  const size_t n_;
  const Policy policy_;
  RunContext* const ctx_;
  EngineCounters* const counters_;

  LossKernels kernels_;
  UnionFind uf_;
  std::vector<uint32_t> best_v_;
  std::vector<double> best_w_;
  std::vector<double> pair_w_;  // RecomputeBest scratch, reused per call.
  std::vector<std::vector<uint32_t>> members_;    // Indexed by root.
  std::vector<std::vector<uint32_t>> adjacency_;  // The grown forest.
};

}  // namespace

template <typename Policy>
Result<Clustering> ForestClusterWithPolicy(const Dataset& dataset,
                                           const PrecomputedLoss& loss,
                                           size_t k, const Policy& policy,
                                           RunContext* ctx,
                                           EngineCounters* counters) {
  const size_t n = dataset.num_rows();
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > n) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds the number of records " +
                                   std::to_string(n));
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  return ForestBuilder<Policy>(dataset, loss, k, policy, ctx, counters).Run();
}

template <typename Policy>
Result<GeneralizedTable> ForestKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx, EngineCounters* counters) {
  KANON_ASSIGN_OR_RETURN(
      Clustering clustering,
      ForestClusterWithPolicy(dataset, loss, k, policy, ctx, counters));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

// The public entries pin the default-config policy — the forest never
// carried a distance parameter, and the cost hooks are identical across
// every built-in policy anyway.
Result<Clustering> ForestCluster(const Dataset& dataset,
                                 const PrecomputedLoss& loss, size_t k,
                                 RunContext* ctx, EngineCounters* counters) {
  return ForestClusterWithPolicy(dataset, loss, k, LogWeightedPolicy{}, ctx,
                                 counters);
}

Result<GeneralizedTable> ForestKAnonymize(const Dataset& dataset,
                                          const PrecomputedLoss& loss,
                                          size_t k, RunContext* ctx,
                                          EngineCounters* counters) {
  KANON_ASSIGN_OR_RETURN(Clustering clustering,
                         ForestCluster(dataset, loss, k, ctx, counters));
  return TableFromClustering(loss.scheme_ptr(), dataset, clustering);
}

// The (pipeline × distance) instantiation matrix (docs/policy_engine.md).
#define KANON_INSTANTIATE_FOREST_PIPELINE(POLICY)                 \
  template Result<Clustering> ForestClusterWithPolicy(            \
      const Dataset&, const PrecomputedLoss&, size_t,             \
      const POLICY&, RunContext*, EngineCounters*);               \
  template Result<GeneralizedTable> ForestKAnonymizeWithPolicy(   \
      const Dataset&, const PrecomputedLoss&, size_t,             \
      const POLICY&, RunContext*, EngineCounters*)

KANON_INSTANTIATE_FOREST_PIPELINE(WeightedPolicy);
KANON_INSTANTIATE_FOREST_PIPELINE(PlainPolicy);
KANON_INSTANTIATE_FOREST_PIPELINE(LogWeightedPolicy);
KANON_INSTANTIATE_FOREST_PIPELINE(RatioPolicy);
KANON_INSTANTIATE_FOREST_PIPELINE(NergizCliftonPolicy);

#undef KANON_INSTANTIATE_FOREST_PIPELINE

}  // namespace kanon
