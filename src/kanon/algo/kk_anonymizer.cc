#include "kanon/algo/kk_anonymizer.h"

#include <algorithm>
#include <limits>

#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"

namespace kanon {

namespace {

Status ValidateArgs(const Dataset& dataset, const PrecomputedLoss& loss,
                    size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > dataset.num_rows()) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds the number of records " +
                                   std::to_string(dataset.num_rows()));
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  return Status::OK();
}

// Cost of the attribute-wise join of a cached closure with row `row`.
double JoinedCost(const GeneralizationScheme& scheme,
                  const PrecomputedLoss& loss, const Dataset& dataset,
                  const GeneralizedRecord& closure, uint32_t row) {
  const size_t r = closure.size();
  double total = 0.0;
  for (size_t j = 0; j < r; ++j) {
    const SetId joined =
        scheme.hierarchy(j).JoinValue(closure[j], dataset.at(row, j));
    total += loss.EntryCost(j, joined);
  }
  return total / static_cast<double>(r);
}

// (k,1) degradation: records not yet processed ship fully suppressed. R*
// covers every one of the n >= k originals, so the promise holds for them;
// already-emitted records are untouched.
void AppendSuppressedTail(const GeneralizationScheme& scheme, size_t n,
                          const char* stage, RunContext* ctx,
                          GeneralizedTable* table) {
  const size_t emitted = table->num_rows();
  ctx->NoteDegraded(stage);
  ctx->AddRecordsSuppressed(n - emitted);
  const GeneralizedRecord star = scheme.Suppressed();
  for (size_t t = emitted; t < n; ++t) {
    table->AppendRecord(star);
  }
}

// (1,k) degradation: restores the property wholesale by fully suppressing
// the k most-general rows (the cheapest to coarsen, since c(R*) is the same
// for all). Every original is then consistent with those k rows, and rows
// only coarsen, so (k,1) and row-wise generalization are preserved.
GeneralizedTable SuppressKRows(const PrecomputedLoss& loss, size_t k,
                               GeneralizedTable table, RunContext* ctx) {
  const GeneralizedRecord star = loss.scheme().Suppressed();
  const size_t n = table.num_rows();
  std::vector<std::pair<double, uint32_t>> order;  // (−cost, row).
  size_t already = 0;
  for (uint32_t t = 0; t < n; ++t) {
    const GeneralizedRecord rec = table.record(t);
    if (rec == star) {
      ++already;
    } else {
      order.emplace_back(-loss.RecordCost(rec), t);
    }
  }
  ctx->NoteDegraded("kk/repair");
  if (already >= k) return table;  // Enough suppressed rows exist.
  const size_t need = k - already;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(need), order.end());
  ctx->AddRecordsSuppressed(need);
  for (size_t t = 0; t < need; ++t) {
    table.SetRecord(order[t].second, star);
  }
  return table;
}

}  // namespace

Result<GeneralizedTable> K1NearestNeighbors(const Dataset& dataset,
                                            const PrecomputedLoss& loss,
                                            size_t k, RunContext* ctx) {
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k));
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t n = dataset.num_rows();

  GeneralizedTable table(loss.scheme_ptr());
  std::vector<std::pair<double, uint32_t>> candidates;
  candidates.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (ctx != nullptr && ctx->CheckPoint("kk/k1-nn")) {
      AppendSuppressedTail(scheme, n, "kk/k1-nn", ctx, &table);
      return table;
    }
    KANON_FAILPOINT("kk.closure");
    const GeneralizedRecord self = scheme.Identity(dataset.row(i));
    candidates.clear();
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      candidates.emplace_back(JoinedCost(scheme, loss, dataset, self, j), j);
    }
    // The k−1 nearest records by pairwise closure cost d({R_i, R_j}).
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<ptrdiff_t>(k - 1),
                      candidates.end());
    std::vector<uint32_t> cluster = {i};
    for (size_t t = 0; t + 1 < k; ++t) {
      cluster.push_back(candidates[t].second);
    }
    table.AppendRecord(scheme.ClosureOfRows(dataset, cluster));
  }
  return table;
}

Result<GeneralizedTable> K1GreedyExpansion(const Dataset& dataset,
                                           const PrecomputedLoss& loss,
                                           size_t k, RunContext* ctx) {
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k));
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t n = dataset.num_rows();
  const size_t r = dataset.num_attributes();

  GeneralizedTable table(loss.scheme_ptr());
  std::vector<bool> in_cluster(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    if (ctx != nullptr && ctx->CheckPoint("kk/k1-greedy")) {
      AppendSuppressedTail(scheme, n, "kk/k1-greedy", ctx, &table);
      return table;
    }
    KANON_FAILPOINT("kk.closure");
    GeneralizedRecord closure = scheme.Identity(dataset.row(i));
    double closure_cost = loss.RecordCost(closure);
    size_t cluster_size = 1;
    std::vector<uint32_t> members = {i};
    in_cluster.assign(n, false);
    in_cluster[i] = true;

    while (cluster_size < k) {
      // One scan per closure change. Records already inside the closure
      // cost nothing to add; absorb them greedily up to size k.
      uint32_t best = std::numeric_limits<uint32_t>::max();
      double best_delta = std::numeric_limits<double>::infinity();
      bool absorbed_free = false;
      for (uint32_t j = 0; j < n && cluster_size < k; ++j) {
        if (in_cluster[j]) continue;
        bool covered = true;
        for (size_t a = 0; a < r; ++a) {
          if (!scheme.hierarchy(a).Contains(closure[a], dataset.at(j, a))) {
            covered = false;
            break;
          }
        }
        if (covered) {
          // dist(S_i, R_j) = d(S_i ∪ {R_j}) − d(S_i) = 0: minimal.
          in_cluster[j] = true;
          members.push_back(j);
          ++cluster_size;
          absorbed_free = true;
          continue;
        }
        const double delta =
            JoinedCost(scheme, loss, dataset, closure, j) - closure_cost;
        if (delta < best_delta) {
          best_delta = delta;
          best = j;
        }
      }
      if (cluster_size >= k) break;
      if (absorbed_free) {
        // Cluster grew without changing the closure; candidates computed in
        // this scan remain valid, but rescanning keeps the code simple and
        // the work is bounded by k scans per record.
        continue;
      }
      KANON_CHECK(best != std::numeric_limits<uint32_t>::max(),
                  "expansion must find a record while cluster_size < k <= n");
      in_cluster[best] = true;
      members.push_back(best);
      ++cluster_size;
      for (size_t a = 0; a < r; ++a) {
        closure[a] =
            scheme.hierarchy(a).JoinValue(closure[a], dataset.at(best, a));
      }
      closure_cost = loss.RecordCost(closure);
    }
    table.AppendRecord(closure);
  }
  return table;
}

Result<GeneralizedTable> Make1KAnonymous(const Dataset& dataset,
                                         const PrecomputedLoss& loss, size_t k,
                                         GeneralizedTable table,
                                         RunContext* ctx) {
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k));
  if (table.num_rows() != dataset.num_rows()) {
    return Status::InvalidArgument(
        "table must have one generalized record per dataset row");
  }
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t n = dataset.num_rows();

  const size_t r = dataset.num_attributes();
  std::vector<std::pair<double, uint32_t>> candidates;
  for (uint32_t i = 0; i < n; ++i) {
    if (ctx != nullptr && ctx->CheckPoint("kk/repair")) {
      return SuppressKRows(loss, k, std::move(table), ctx);
    }
    KANON_FAILPOINT("kk.upgrade");
    const Record record = dataset.row(i);
    // ℓ = #generalized records consistent with R_i.
    size_t consistent = 0;
    candidates.clear();
    for (uint32_t t = 0; t < n; ++t) {
      if (table.ConsistentPair(dataset, i, t)) {
        ++consistent;
      } else {
        // Price of upgrading R̄_t to cover R_i: c(R_i + R̄_t) − c(R̄_t),
        // computed attribute-wise to stay allocation-free.
        double delta = 0.0;
        for (size_t j = 0; j < r; ++j) {
          const SetId current = table.at(t, j);
          const SetId joined =
              scheme.hierarchy(j).JoinValue(current, record[j]);
          delta += loss.EntryCost(j, joined) - loss.EntryCost(j, current);
        }
        candidates.emplace_back(delta / static_cast<double>(r), t);
      }
    }
    if (consistent >= k) continue;
    const size_t deficit = k - consistent;
    KANON_CHECK(candidates.size() >= deficit,
                "not enough records to generalize (k > n?)");
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<ptrdiff_t>(deficit),
                      candidates.end());
    for (size_t t = 0; t < deficit; ++t) {
      table.GeneralizeToCover(candidates[t].second, record);
    }
  }
  return table;
}

Result<GeneralizedTable> KKAnonymize(const Dataset& dataset,
                                     const PrecomputedLoss& loss, size_t k,
                                     K1Algorithm k1_algorithm,
                                     RunContext* ctx) {
  Result<GeneralizedTable> k1 =
      k1_algorithm == K1Algorithm::kNearestNeighbors
          ? K1NearestNeighbors(dataset, loss, k, ctx)
          : K1GreedyExpansion(dataset, loss, k, ctx);
  if (!k1.ok()) return k1.status();
  // A stopped context keeps returning true from CheckPoint(), so a (k,1)
  // stage cut short flows into the repair stage's wholesale fallback — the
  // final table is (k,k)-anonymous either way.
  return Make1KAnonymous(dataset, loss, k, std::move(k1).value(), ctx);
}

}  // namespace kanon
