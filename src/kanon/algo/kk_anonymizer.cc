#include "kanon/algo/kk_anonymizer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "kanon/algo/core/closure_store.h"
#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"
#include "kanon/common/parallel.h"
#include "kanon/loss/kernels.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

Status ValidateArgs(const Dataset& dataset, const PrecomputedLoss& loss,
                    size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > dataset.num_rows()) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds the number of records " +
                                   std::to_string(dataset.num_rows()));
  }
  if (dataset.num_attributes() != loss.scheme().num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  return Status::OK();
}

// Emits the rows an interrupted (k,1) sweep produced and fully suppresses
// the rest. R* covers every one of the n >= k originals, so (k,1) holds for
// the suppressed records; finished rows are proper k-closures. Each record's
// content depends only on its own row, so the survivors of a partial sweep
// are exactly the single-threaded records — only the surviving *set* varies.
GeneralizedTable EmitWithSuppressedHoles(
    const GeneralizationScheme& scheme, const char* stage, RunContext* ctx,
    std::vector<GeneralizedRecord> rows, const std::vector<uint8_t>& done,
    GeneralizedTable table) {
  const GeneralizedRecord star = scheme.Suppressed();
  size_t suppressed = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (done[i]) {
      table.AppendRecord(std::move(rows[i]));
    } else {
      table.AppendRecord(star);
      ++suppressed;
    }
  }
  if (suppressed > 0 && ctx != nullptr) {
    ctx->NoteDegraded(stage);
    ctx->AddRecordsSuppressed(suppressed);
  }
  return table;
}

// Returns the first injected failure in chunk order (matching the row order
// a single-threaded run hits first), or OK.
Status FirstError(std::vector<Status> errors) {
  for (Status& s : errors) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

// (1,k) degradation: restores the property wholesale by fully suppressing
// the k most-general rows (the cheapest to coarsen, since c(R*) is the same
// for all). Every original is then consistent with those k rows, and rows
// only coarsen, so (k,1) and row-wise generalization are preserved. When
// `table` already carries k fully suppressed rows the property holds as-is:
// nothing changes and the run is NOT marked degraded. Row costs go through
// an interned ClosureStore so duplicate rows are priced once.
GeneralizedTable SuppressKRows(const PrecomputedLoss& loss, size_t k,
                               GeneralizedTable table, RunContext* ctx,
                               EngineCounters* counters) {
  const GeneralizedRecord star = loss.scheme().Suppressed();
  const size_t n = table.num_rows();
  ClosureStore store(loss);
  std::vector<std::pair<double, uint32_t>> order;  // (−cost, row).
  size_t already = 0;
  for (uint32_t t = 0; t < n; ++t) {
    const GeneralizedRecord rec = table.record(t);
    if (rec == star) {
      ++already;
    } else {
      order.emplace_back(-store.cost(store.Intern(rec)), t);
    }
  }
  store.ExportCounters(counters);
  if (already >= k) return table;  // Enough suppressed rows exist.
  ctx->NoteDegraded("kk/repair");
  const size_t need = k - already;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(need), order.end());
  ctx->AddRecordsSuppressed(need);
  for (size_t t = 0; t < need; ++t) {
    table.SetRecord(order[t].second, star);
  }
  return table;
}

// Post-emit telemetry shared by the (k,1) sweeps: one interning pass over
// the finished table counts its distinct closures (hits = duplicate rows,
// deterministic at every thread count because the rows are), plus the sweep
// geometry. Pure accounting — the table is returned untouched.
void AccountSweep(const PrecomputedLoss& loss, const GeneralizedTable& table,
                  size_t sweep_items, EngineCounters* counters) {
  if (counters == nullptr) return;
  counters->parallel_chunks += ParallelChunkCount(sweep_items);
  PhaseSpan span(CurrentTracer(), "kk/closure-intern");
  span.set_items(table.num_rows());
  ClosureStore store(loss);
  store.InternTable(table);
  store.ExportCounters(counters);
}

}  // namespace

template <typename Policy>
Result<GeneralizedTable> K1NearestNeighborsWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx, int num_threads,
    EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k));
  PhaseSpan phase(CurrentTracer(), "kk/k1-nn");
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t n = dataset.num_rows();

  // Row i's output — the closure of R_i and its k−1 nearest records by
  // pairwise closure cost d({R_i, R_j}) — depends only on i, so the O(n²·r)
  // scan fans out row-wise. Each row's candidate costs come from one
  // columnar sweep over the packed attribute arrays. Failpoints cannot
  // early-return across a lambda; each chunk records the first injected
  // failure in its slot instead.
  const LossKernels kernels(dataset, loss);
  std::vector<GeneralizedRecord> rows(n);
  std::vector<uint8_t> done(n, 0);
  std::vector<Status> errors(ParallelChunkCount(n));
  const SweepStatus sweep = ParallelChunks(
      n, num_threads, ctx, "kk/k1-nn",
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<std::pair<double, uint32_t>> candidates;
        candidates.reserve(n);
        std::vector<double> joined(n);
        for (size_t i = begin; i < end; ++i) {
          if (failpoint::AnyArmed()) {
            Status s = failpoint::Check("kk.closure");
            if (!s.ok()) {
              errors[chunk] = std::move(s);
              return;
            }
          }
          const GeneralizedRecord self =
              scheme.Identity(dataset.row_view(i));
          kernels.JoinedCostSweep(self, joined.data());
          candidates.clear();
          for (uint32_t j = 0; j < n; ++j) {
            if (j == i) continue;
            // The candidate weight is the pairwise closure cost
            // d({R_i, R_j}); the policy's PairCost hook (identity for every
            // built-in distance) is the one knob on this ranking.
            candidates.emplace_back(policy.PairCost(joined[j]), j);
          }
          std::partial_sort(candidates.begin(),
                            candidates.begin() + static_cast<ptrdiff_t>(k - 1),
                            candidates.end());
          std::vector<uint32_t> cluster = {static_cast<uint32_t>(i)};
          for (size_t t = 0; t + 1 < k; ++t) {
            cluster.push_back(candidates[t].second);
          }
          rows[i] = scheme.ClosureOfRows(dataset, cluster);
          done[i] = 1;
        }
      });
  KANON_RETURN_NOT_OK(FirstError(std::move(errors)));

  GeneralizedTable table(loss.scheme_ptr());
  if (sweep.completed) {
    for (size_t i = 0; i < n; ++i) {
      table.AppendRecord(std::move(rows[i]));
    }
  } else {
    table = EmitWithSuppressedHoles(scheme, "kk/k1-nn", ctx, std::move(rows),
                                    done, std::move(table));
  }
  AccountSweep(loss, table, n, counters);
  return table;
}

template <typename Policy>
Result<GeneralizedTable> K1GreedyExpansionWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx, int num_threads,
    EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k));
  PhaseSpan phase(CurrentTracer(), "kk/k1-greedy");
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t n = dataset.num_rows();
  const size_t r = dataset.num_attributes();

  // Like K1NearestNeighbors, each record grows its cluster independently;
  // the whole greedy expansion of record i is one parallel item.
  const LossKernels kernels(dataset, loss);
  std::vector<GeneralizedRecord> rows(n);
  std::vector<uint8_t> done(n, 0);
  std::vector<Status> errors(ParallelChunkCount(n));
  const SweepStatus sweep = ParallelChunks(
      n, num_threads, ctx, "kk/k1-greedy",
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<bool> in_cluster(n, false);
        std::vector<uint8_t> covered(n);
        std::vector<double> joined(n);
        for (size_t i = begin; i < end; ++i) {
          if (failpoint::AnyArmed()) {
            Status s = failpoint::Check("kk.closure");
            if (!s.ok()) {
              errors[chunk] = std::move(s);
              return;
            }
          }
          GeneralizedRecord closure =
              scheme.Identity(dataset.row_view(i));
          double closure_cost = loss.RecordCost(closure);
          size_t cluster_size = 1;
          in_cluster.assign(n, false);
          in_cluster[i] = true;

          while (!policy.Ripe(cluster_size, k)) {
            // One scan per closure change. Records already inside the
            // closure cost nothing to add; absorb them greedily up to k.
            // Coverage and joined costs depend only on the (fixed) closure,
            // so two columnar sweeps precompute them and the sequential
            // replay below makes exactly the decisions of the scalar scan.
            kernels.CoverageSweep(closure, covered.data());
            kernels.JoinedCostSweep(closure, joined.data());
            uint32_t best = std::numeric_limits<uint32_t>::max();
            double best_delta = std::numeric_limits<double>::infinity();
            bool absorbed_free = false;
            for (uint32_t j = 0; j < n && !policy.Ripe(cluster_size, k);
                 ++j) {
              if (in_cluster[j]) continue;
              if (covered[j]) {
                // dist(S_i, R_j) = d(S_i ∪ {R_j}) − d(S_i) = 0: minimal.
                in_cluster[j] = true;
                ++cluster_size;
                absorbed_free = true;
                continue;
              }
              // dist(S_i, R_j) = d(S_i ∪ {R_j}) − d(S_i), routed through the
              // policy's MergeDelta hook (identity for every built-in).
              const double delta = policy.MergeDelta(joined[j] - closure_cost);
              if (delta < best_delta) {
                best_delta = delta;
                best = j;
              }
            }
            if (policy.Ripe(cluster_size, k)) break;
            if (absorbed_free) {
              // Cluster grew without changing the closure; candidates from
              // this scan remain valid, but rescanning keeps the code simple
              // and the work is bounded by k scans per record.
              continue;
            }
            KANON_CHECK(
                best != std::numeric_limits<uint32_t>::max(),
                "expansion must find a record while cluster_size < k <= n");
            in_cluster[best] = true;
            ++cluster_size;
            for (size_t a = 0; a < r; ++a) {
              closure[a] = scheme.hierarchy(a).JoinValue(closure[a],
                                                         dataset.at(best, a));
            }
            closure_cost = loss.RecordCost(closure);
          }
          rows[i] = std::move(closure);
          done[i] = 1;
        }
      });
  KANON_RETURN_NOT_OK(FirstError(std::move(errors)));

  GeneralizedTable table(loss.scheme_ptr());
  if (sweep.completed) {
    for (size_t i = 0; i < n; ++i) {
      table.AppendRecord(std::move(rows[i]));
    }
  } else {
    table = EmitWithSuppressedHoles(scheme, "kk/k1-greedy", ctx,
                                    std::move(rows), done, std::move(table));
  }
  AccountSweep(loss, table, n, counters);
  return table;
}

template <typename Policy>
Result<GeneralizedTable> Make1KAnonymousWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    GeneralizedTable table, const Policy& policy, RunContext* ctx,
    int num_threads, EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  KANON_RETURN_NOT_OK(ValidateArgs(dataset, loss, k));
  if (table.num_rows() != dataset.num_rows()) {
    return Status::InvalidArgument(
        "table must have one generalized record per dataset row");
  }
  PhaseSpan phase(CurrentTracer(), "kk/repair");
  const GeneralizationScheme& scheme = loss.scheme();
  const size_t n = dataset.num_rows();
  const size_t r = dataset.num_attributes();

  // Upgrades applied for record i change what later records see, so the
  // outer loop stays sequential (and keeps its per-record checkpoint); only
  // the read-only consistency/price scan over the table fans out. Chunk
  // results concatenated in chunk order rebuild the ascending-t candidate
  // list of a serial scan, so the partial_sort below picks identical rows.
  struct ScanPart {
    size_t consistent = 0;
    std::vector<std::pair<double, uint32_t>> candidates;
  };
  std::vector<ScanPart> parts(ParallelChunkCount(n));
  std::vector<std::pair<double, uint32_t>> candidates;
  for (uint32_t i = 0; i < n; ++i) {
    if (ctx != nullptr && ctx->CheckPoint("kk/repair")) {
      return SuppressKRows(loss, k, std::move(table), ctx, counters);
    }
    KANON_FAILPOINT("kk.upgrade");
    const RowView record = dataset.row_view(i);
    if (counters != nullptr) {
      counters->parallel_chunks += ParallelChunkCount(n);
    }
    ParallelChunks(
        n, num_threads, nullptr, "kk/repair",
        [&](size_t chunk, size_t begin, size_t end) {
          ScanPart& part = parts[chunk];
          part.consistent = 0;
          part.candidates.clear();
          for (size_t t = begin; t < end; ++t) {
            if (table.ConsistentPair(dataset, i, static_cast<uint32_t>(t))) {
              ++part.consistent;
            } else {
              // Price of upgrading R̄_t to cover R_i: c(R_i + R̄_t) − c(R̄_t),
              // computed attribute-wise to stay allocation-free.
              double delta = 0.0;
              for (size_t j = 0; j < r; ++j) {
                const SetId current = table.at(t, j);
                const SetId joined =
                    scheme.hierarchy(j).JoinValue(current, record[j]);
                delta += loss.EntryCost(j, joined) - loss.EntryCost(j, current);
              }
              // The accumulated price goes through MergeDelta after the /r
              // normalization so the additions (and hence the bits) match
              // the pre-policy scan exactly under the identity hook.
              part.candidates.emplace_back(
                  policy.MergeDelta(delta / static_cast<double>(r)),
                  static_cast<uint32_t>(t));
            }
          }
        });
    // ℓ = #generalized records consistent with R_i.
    size_t consistent = 0;
    candidates.clear();
    for (size_t chunk = 0; chunk < ParallelChunkCount(n); ++chunk) {
      consistent += parts[chunk].consistent;
      candidates.insert(candidates.end(), parts[chunk].candidates.begin(),
                        parts[chunk].candidates.end());
    }
    if (policy.Ripe(consistent, k)) continue;
    const size_t deficit = k - consistent;
    if (counters != nullptr) counters->upgrade_steps += deficit;
    KANON_CHECK(candidates.size() >= deficit,
                "not enough records to generalize (k > n?)");
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<ptrdiff_t>(deficit),
                      candidates.end());
    for (size_t t = 0; t < deficit; ++t) {
      table.GeneralizeToCover(candidates[t].second, record);
    }
  }
  return table;
}

template <typename Policy>
Result<GeneralizedTable> KKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    K1Algorithm k1_algorithm, const Policy& policy, RunContext* ctx,
    int num_threads, EngineCounters* counters) {
  Result<GeneralizedTable> k1 =
      k1_algorithm == K1Algorithm::kNearestNeighbors
          ? K1NearestNeighborsWithPolicy(dataset, loss, k, policy, ctx,
                                         num_threads, counters)
          : K1GreedyExpansionWithPolicy(dataset, loss, k, policy, ctx,
                                        num_threads, counters);
  if (!k1.ok()) return k1.status();
  // A stopped context keeps reporting stopped, so a (k,1) stage cut short
  // flows into the repair stage's wholesale fallback — the final table is
  // (k,k)-anonymous either way.
  return Make1KAnonymousWithPolicy(dataset, loss, k, std::move(k1).value(),
                                   policy, ctx, num_threads, counters);
}

// The public non-policy entries keep their historical distance-agnostic
// behavior. Any built-in policy would do — the (k,1)/(k,k) pipelines only
// use the cost hooks, which all built-ins leave at the identity defaults —
// so they pin the default-config policy rather than dispatching on an enum
// they never carried.
Result<GeneralizedTable> K1NearestNeighbors(const Dataset& dataset,
                                            const PrecomputedLoss& loss,
                                            size_t k, RunContext* ctx,
                                            int num_threads,
                                            EngineCounters* counters) {
  return K1NearestNeighborsWithPolicy(dataset, loss, k, LogWeightedPolicy{},
                                      ctx, num_threads, counters);
}

Result<GeneralizedTable> K1GreedyExpansion(const Dataset& dataset,
                                           const PrecomputedLoss& loss,
                                           size_t k, RunContext* ctx,
                                           int num_threads,
                                           EngineCounters* counters) {
  return K1GreedyExpansionWithPolicy(dataset, loss, k, LogWeightedPolicy{},
                                     ctx, num_threads, counters);
}

Result<GeneralizedTable> Make1KAnonymous(const Dataset& dataset,
                                         const PrecomputedLoss& loss, size_t k,
                                         GeneralizedTable table,
                                         RunContext* ctx, int num_threads,
                                         EngineCounters* counters) {
  return Make1KAnonymousWithPolicy(dataset, loss, k, std::move(table),
                                   LogWeightedPolicy{}, ctx, num_threads,
                                   counters);
}

Result<GeneralizedTable> KKAnonymize(const Dataset& dataset,
                                     const PrecomputedLoss& loss, size_t k,
                                     K1Algorithm k1_algorithm, RunContext* ctx,
                                     int num_threads,
                                     EngineCounters* counters) {
  return KKAnonymizeWithPolicy(dataset, loss, k, k1_algorithm,
                               LogWeightedPolicy{}, ctx, num_threads,
                               counters);
}

// The (pipeline × distance) instantiation matrix (docs/policy_engine.md).
#define KANON_INSTANTIATE_KK_PIPELINE(POLICY)                                 \
  template Result<GeneralizedTable> K1NearestNeighborsWithPolicy(             \
      const Dataset&, const PrecomputedLoss&, size_t, const POLICY&,          \
      RunContext*, int, EngineCounters*);                                     \
  template Result<GeneralizedTable> K1GreedyExpansionWithPolicy(              \
      const Dataset&, const PrecomputedLoss&, size_t, const POLICY&,          \
      RunContext*, int, EngineCounters*);                                     \
  template Result<GeneralizedTable> Make1KAnonymousWithPolicy(                \
      const Dataset&, const PrecomputedLoss&, size_t, GeneralizedTable,       \
      const POLICY&, RunContext*, int, EngineCounters*);                      \
  template Result<GeneralizedTable> KKAnonymizeWithPolicy(                    \
      const Dataset&, const PrecomputedLoss&, size_t, K1Algorithm,            \
      const POLICY&, RunContext*, int, EngineCounters*)

KANON_INSTANTIATE_KK_PIPELINE(WeightedPolicy);
KANON_INSTANTIATE_KK_PIPELINE(PlainPolicy);
KANON_INSTANTIATE_KK_PIPELINE(LogWeightedPolicy);
KANON_INSTANTIATE_KK_PIPELINE(RatioPolicy);
KANON_INSTANTIATE_KK_PIPELINE(NergizCliftonPolicy);

#undef KANON_INSTANTIATE_KK_PIPELINE

}  // namespace kanon
