#ifndef KANON_ALGO_FOREST_H_
#define KANON_ALGO_FOREST_H_

#include "kanon/algo/clustering.h"
#include "kanon/algo/core/engine_counters.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// The forest algorithm of Aggarwal et al. [2,3] — the paper's baseline
/// k-anonymizer with a 3k−3 approximation guarantee (for the tree measure).
///
/// Phase 1 grows a spanning forest in which every tree has at least k
/// records: while some component is smaller than k, it is attached to
/// another component through its cheapest outgoing edge, where the weight
/// of edge (u,v) is the pairwise generalization cost d({R_u, R_v}).
///
/// Phase 2 splits every tree larger than 3k−3 into parts of size in
/// [k, 3k−3] (cutting at the deepest vertex whose subtree has ≥ k nodes,
/// grouping child subtrees when necessary).
///
/// The resulting trees become the clusters of the anonymization.
///
/// When `ctx` stops the run, phase 1 pools the records of still-undersized
/// components (attaching a < k pool to an already-grown tree) and phase 2's
/// utility-only splitting is skipped, so the output stays k-anonymous.
/// The optional `counters` (not owned) accumulates engine telemetry:
/// component merges and nearest-neighbor rescans.
Result<Clustering> ForestCluster(const Dataset& dataset,
                                 const PrecomputedLoss& loss, size_t k,
                                 RunContext* ctx = nullptr,
                                 EngineCounters* counters = nullptr);

/// Convenience: cluster and translate to a generalized table.
Result<GeneralizedTable> ForestKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    RunContext* ctx = nullptr, EngineCounters* counters = nullptr);

/// Policy-parameterized variants (docs/policy_engine.md): the policy's
/// PairCost hook weighs phase 1's candidate edges and Ripe is the component
/// stopping predicate; the built-in distance policies keep both at the
/// identity defaults, so all five instantiations behave identically.
/// Defined in forest.cc, explicitly instantiated per (pipeline × distance).
template <typename Policy>
Result<Clustering> ForestClusterWithPolicy(const Dataset& dataset,
                                           const PrecomputedLoss& loss,
                                           size_t k, const Policy& policy,
                                           RunContext* ctx = nullptr,
                                           EngineCounters* counters = nullptr);

template <typename Policy>
Result<GeneralizedTable> ForestKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx = nullptr,
    EngineCounters* counters = nullptr);

}  // namespace kanon

#endif  // KANON_ALGO_FOREST_H_
