#ifndef KANON_ALGO_AGGLOMERATIVE_H_
#define KANON_ALGO_AGGLOMERATIVE_H_

#include "kanon/algo/clustering.h"
#include "kanon/algo/core/engine_counters.h"
#include "kanon/algo/distance.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Options for the agglomerative k-anonymization algorithms.
struct AgglomerativeOptions {
  /// Cluster distance (Section V-A.2). The paper finds (10) and (11) best.
  DistanceFunction distance = DistanceFunction::kLogWeighted;
  DistanceParams params;
  /// When true, runs the *modified* agglomerative algorithm (Algorithm 2):
  /// a cluster that ripens beyond size k is shrunk back to exactly k by
  /// repeatedly ejecting the record whose removal is most profitable; the
  /// ejected records re-enter the pool as singletons.
  bool modified = false;
  /// Debug/testing: verify by exhaustive O(n²) scan, before every merge,
  /// that the merged pair attains the global minimum distance. Quadratic
  /// per merge — only for tests.
  bool check_exact_merges = false;
  /// Worker threads for the O(n²·r) scans (all-pairs init, post-merge
  /// repair, full rescans). <= 0 resolves to the hardware concurrency;
  /// 1 runs single-threaded. The clustering is byte-identical at every
  /// thread count (see docs/parallelism.md).
  int num_threads = 1;
  /// Testing hooks for the stale-entry heap maintenance: check for a
  /// rebuild on every stale entry instead of waiting for the half-stale
  /// threshold, and observe how many rebuilds happened.
  bool aggressive_heap_rebuild = false;
  size_t* heap_rebuilds_out = nullptr;
  /// Optional engine telemetry (merges, rescans, heap rebuilds, closure
  /// cache hits, parallel chunks). Not owned; accumulated into, never reset.
  /// Deterministic at every thread count.
  EngineCounters* counters = nullptr;
  /// Optional execution controls (deadline, cancellation, step budget). Not
  /// owned. On stop the engine finalizes the partial clustering: records of
  /// still-undersized clusters are pooled into one catch-all cluster (or
  /// attached to the nearest finished cluster), so the output is always
  /// k-anonymous — just lossier. See docs/robustness.md.
  RunContext* run_context = nullptr;
};

/// The (basic or modified) agglomerative algorithm for k-anonymization
/// (Algorithms 1 and 2 of Section V-A): start from singleton clusters,
/// repeatedly unify the two closest clusters, and move clusters of size ≥ k
/// to the output; leftover records join their nearest final cluster.
///
/// Every output cluster has at least k records (at most 2k−2 for the basic
/// variant; exactly k for the modified variant, except clusters that absorb
/// leftovers). Requires 1 ≤ k ≤ n. Expected cost O(n²·r).
///
/// This entry translates `options.distance` to its compile-time
/// ClusterPolicy exactly once and runs the templated engine of
/// agglomerative_engine.h; callers with a custom policy use
/// AgglomerativeClusterWithPolicy from that header directly (the policy then
/// supersedes `options.distance`/`options.params`). See
/// docs/policy_engine.md.
Result<Clustering> AgglomerativeCluster(const Dataset& dataset,
                                        const PrecomputedLoss& loss, size_t k,
                                        const AgglomerativeOptions& options);

/// Convenience: cluster and translate to a generalized table.
Result<GeneralizedTable> AgglomerativeKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const AgglomerativeOptions& options);

/// All leave-one-out closures of `rows` at once: element p is the closure
/// of rows ∖ {rows[p]}, computed with prefix/suffix closure joins in
/// O(len·r) total instead of O(len²·r). Requires len >= 2. Joins form a
/// semilattice (Hierarchy::Build verifies unique minimal supersets), so
/// each result is identical to folding the leaves one by one. This is the
/// inner step of Algorithm 2's ejection scan; exposed for tests.
std::vector<GeneralizedRecord> LeaveOneOutClosures(
    const Dataset& dataset, const GeneralizationScheme& scheme,
    const std::vector<uint32_t>& rows);

}  // namespace kanon

#endif  // KANON_ALGO_AGGLOMERATIVE_H_
