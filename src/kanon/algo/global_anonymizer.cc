#include "kanon/algo/global_anonymizer.h"

#include <algorithm>
#include <limits>

#include "kanon/algo/core/closure_store.h"
#include "kanon/algo/policy.h"
#include "kanon/common/check.h"
#include "kanon/common/failpoint.h"
#include "kanon/graph/consistency_graph.h"
#include "kanon/graph/matchable_edges.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

namespace {

// Telemetry at every exit: the upgrade-step count plus one interning pass
// over the final table (hits = duplicate rows — for a global anonymization
// the group structure itself). Pure accounting; the table is untouched.
void AccountRun(const PrecomputedLoss& loss, const GeneralizedTable& table,
                const GlobalAnonymizerStats& stats, EngineCounters* counters) {
  if (counters == nullptr) return;
  counters->upgrade_steps += stats.upgrade_steps;
  ClosureStore store(loss);
  store.InternTable(table);
  store.ExportCounters(counters);
}

// Global-(1,k) degradation: every record jumps to the common closure of the
// whole table — one identical group of n >= k rows. That group is globally
// (1,k)-anonymous outright: the identity matching is perfect, and inside an
// identical group any edge swaps into it.
void CollapseToCommonClosure(const GeneralizationScheme& scheme,
                             RunContext* ctx, GeneralizedTable* table) {
  const size_t n = table->num_rows();
  const size_t r = table->num_attributes();
  GeneralizedRecord common = table->record(0);
  for (size_t t = 1; t < n; ++t) {
    for (size_t j = 0; j < r; ++j) {
      common[j] = scheme.hierarchy(j).Join(common[j], table->at(t, j));
    }
  }
  size_t coarsened = 0;
  for (size_t t = 0; t < n; ++t) {
    if (table->record(t) != common) {
      table->SetRecord(t, common);
      ++coarsened;
    }
  }
  ctx->NoteDegraded("global/upgrade");
  ctx->AddRecordsSuppressed(coarsened);
}

}  // namespace

template <typename Policy>
Result<GlobalAnonymizationResult> MakeGlobal1KAnonymousWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    GeneralizedTable table, const Policy& policy, RunContext* ctx,
    EngineCounters* counters) {
  KANON_ASSERT_CLUSTER_POLICY(Policy);
  const size_t n = dataset.num_rows();
  const size_t r = dataset.num_attributes();
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (k > n) {
    return Status::InvalidArgument("k exceeds the number of records");
  }
  if (table.num_rows() != n) {
    return Status::InvalidArgument(
        "table must have one generalized record per dataset row");
  }
  const GeneralizationScheme& scheme = loss.scheme();
  if (r != scheme.num_attributes()) {
    return Status::InvalidArgument("dataset/loss arity mismatch");
  }
  // R̄_i must generalize R_i: Algorithm 6 relies on the identity edges for
  // its perfect-matching swaps.
  for (uint32_t i = 0; i < n; ++i) {
    if (!table.ConsistentPair(dataset, i, i)) {
      return Status::FailedPrecondition(
          "generalized record " + std::to_string(i) +
          " does not generalize its original record");
    }
  }

  // A context stopped during an earlier stage: skip the O(n²·r) consistency
  // graph entirely and collapse right away.
  if (ctx != nullptr && ctx->stopped()) {
    CollapseToCommonClosure(scheme, ctx, &table);
    AccountRun(loss, table, GlobalAnonymizerStats{}, counters);
    return GlobalAnonymizationResult{std::move(table), GlobalAnonymizerStats{}};
  }

  Result<MatchableEdgeSets> matchable = Status::Internal("unset");
  BipartiteGraph graph(0, 0);
  {
    PhaseSpan span(CurrentTracer(), "global/graph");
    span.set_items(n);
    graph = BuildConsistencyGraph(dataset, table);
    matchable = ComputeMatchableEdges(graph);
    KANON_RETURN_NOT_OK(matchable.status());
    KANON_CHECK(matchable->has_perfect_matching,
                "identity edges guarantee a perfect matching");
  }

  PhaseSpan upgrade_span(CurrentTracer(), "global/upgrade");
  GlobalAnonymizerStats stats;
  for (uint32_t i = 0; i < n; ++i) {
    size_t steps_for_record = 0;
    // The match-count stopping predicate is the policy's Ripe hook — the
    // same size-k test every built-in policy supplies.
    if (!policy.Ripe(matchable->matches[i].size(), k)) {
      ++stats.deficient_records;
    }
    while (!policy.Ripe(matchable->matches[i].size(), k)) {
      // One checkpoint per upgrade step — each recomputes the matchable
      // edges, so this is the expensive unit of Algorithm 6.
      if (ctx != nullptr && ctx->CheckPoint("global/upgrade")) {
        CollapseToCommonClosure(scheme, ctx, &table);
        AccountRun(loss, table, stats, counters);
        return GlobalAnonymizationResult{std::move(table), stats};
      }
      KANON_FAILPOINT("global.closure");
      // Non-match neighbors Q \ P of R_i.
      const std::vector<uint32_t>& neighbors = graph.Neighbors(i);
      const std::vector<uint32_t>& matches = matchable->matches[i];
      uint32_t best = std::numeric_limits<uint32_t>::max();
      double best_delta = std::numeric_limits<double>::infinity();
      for (uint32_t t : neighbors) {
        if (std::binary_search(matches.begin(), matches.end(), t)) continue;
        // d_h = c(R_{j_h} + R̄_i) − c(R̄_i), attribute-wise; the accumulated
        // price goes through the policy's MergeDelta hook (identity for
        // every built-in) before the ranking.
        double delta = 0.0;
        for (size_t j = 0; j < r; ++j) {
          const SetId current = table.at(i, j);
          const SetId joined =
              scheme.hierarchy(j).JoinValue(current, dataset.at(t, j));
          delta += loss.EntryCost(j, joined) - loss.EntryCost(j, current);
        }
        delta = policy.MergeDelta(delta);
        if (delta < best_delta ||
            (delta == best_delta && t < best)) {
          best_delta = delta;
          best = t;
        }
      }
      KANON_CHECK(best != std::numeric_limits<uint32_t>::max(),
                  "a record with <k matches must have a non-match neighbor "
                  "(is the input (k,k)-anonymous?)");

      // R̄_i := R_{j_h} + R̄_i. This upgrades R̄_{j_h} to a match of R_i:
      // swap (R_i, R̄_i) and (R_{j_h}, R̄_{j_h}) in the identity matching.
      table.GeneralizeToCover(i, dataset.row_view(best));
      ++stats.upgrade_steps;
      ++steps_for_record;
      KANON_CHECK(steps_for_record <= n, "Algorithm 6 failed to converge");

      // Right vertex i may now be consistent with more originals.
      for (uint32_t x = 0; x < n; ++x) {
        if (!graph.HasEdge(x, i) && table.ConsistentPair(dataset, x, i)) {
          graph.AddEdge(x, i);
        }
      }
      matchable = ComputeMatchableEdges(graph);
      KANON_RETURN_NOT_OK(matchable.status());
    }
    stats.max_steps_per_record =
        std::max(stats.max_steps_per_record, steps_for_record);
  }
  AccountRun(loss, table, stats, counters);
  return GlobalAnonymizationResult{std::move(table), stats};
}

// The public entry pins the default-config policy — Algorithm 6 never
// carried a distance parameter, and the hooks it consumes (Ripe,
// MergeDelta) are identical across every built-in policy.
Result<GlobalAnonymizationResult> MakeGlobal1KAnonymous(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    GeneralizedTable table, RunContext* ctx, EngineCounters* counters) {
  return MakeGlobal1KAnonymousWithPolicy(dataset, loss, k, std::move(table),
                                         LogWeightedPolicy{}, ctx, counters);
}

// The (pipeline × distance) instantiation matrix (docs/policy_engine.md).
#define KANON_INSTANTIATE_GLOBAL_PIPELINE(POLICY)                          \
  template Result<GlobalAnonymizationResult> MakeGlobal1KAnonymousWithPolicy( \
      const Dataset&, const PrecomputedLoss&, size_t, GeneralizedTable,    \
      const POLICY&, RunContext*, EngineCounters*)

KANON_INSTANTIATE_GLOBAL_PIPELINE(WeightedPolicy);
KANON_INSTANTIATE_GLOBAL_PIPELINE(PlainPolicy);
KANON_INSTANTIATE_GLOBAL_PIPELINE(LogWeightedPolicy);
KANON_INSTANTIATE_GLOBAL_PIPELINE(RatioPolicy);
KANON_INSTANTIATE_GLOBAL_PIPELINE(NergizCliftonPolicy);

#undef KANON_INSTANTIATE_GLOBAL_PIPELINE

}  // namespace kanon
