#ifndef KANON_ALGO_POLICY_WEIGHTED_H_
#define KANON_ALGO_POLICY_WEIGHTED_H_

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "kanon/algo/policy.h"
#include "kanon/common/result.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Weighted-attribute cluster distances — the policy landed to prove the
/// engine's extensibility contract (docs/policy_engine.md): a new policy is
/// one self-contained struct; no pipeline file changed to support it.
///
/// Semantics: the per-record generalization cost becomes the weighted
/// average Σ_j w_j·cost_j(R̄(j)) / Σw instead of the uniform (1/r)·Σ_j —
/// an analyst can make "age" pay twice the price of "zip" in every cluster
/// distance of Section V-A.2. The implementation reweights the cost
/// *substrate* (PrecomputedLoss::WithAttributeWeights scales attribute j's
/// cost row by w_j·r/Σw) and keeps the Base policy's arithmetic hooks
/// untouched: eqs. (8)–(11) and the Nergiz–Clifton variant all consume
/// d(·) through the substrate, so one reweighted copy turns every built-in
/// distance into its weighted counterpart. Uniform weights reproduce the
/// unweighted run bit-for-bit (power-of-two magnitudes, 1.0 included);
/// doubling every weight is a bitwise no-op (both are under test in
/// policy_weighted_test.cc).
///
/// Exposed through AnonymizerConfig::attr_weights and
/// `kanon_cli --attr-weights`; usable directly with the header-templated
/// agglomerative engine:
///
///   auto wp = AttrWeightedPolicy<LogWeightedPolicy>::Create(
///       LogWeightedPolicy{}, loss, {2.0, 1.0, 1.0});
///   auto clusters = AgglomerativeClusterWithPolicy(
///       dataset, wp->loss(), k, options, *wp);
///
/// The policy type instantiates AgglomerativeEngine<AttrWeightedPolicy<B>>
/// from the caller's translation unit — no explicit-instantiation edit, no
/// pipeline recompile. Pipelines whose engines live in .cc files (forest,
/// (k,k), global, full-domain) consume only the Base hooks, which this
/// policy inherits unchanged: run them on the Base facet plus loss().
template <typename Base>
struct AttrWeightedPolicy : Base {
  KANON_ASSERT_CLUSTER_POLICY(Base);

  static constexpr const char* kName = "attr-weighted";

  /// Validates user-supplied weights and binds the reweighted substrate.
  /// Requires one weight per attribute of `loss`, each finite and >= 0,
  /// with a positive sum (a zero weight is allowed — that attribute
  /// generalizes for free — but not all of them).
  static Result<AttrWeightedPolicy> Create(const Base& base,
                                           const PrecomputedLoss& loss,
                                           const std::vector<double>& weights) {
    const size_t r = loss.scheme().num_attributes();
    if (weights.size() != r) {
      return Status::InvalidArgument(
          "expected " + std::to_string(r) + " attribute weights, got " +
          std::to_string(weights.size()));
    }
    double sum = 0.0;
    for (size_t j = 0; j < weights.size(); ++j) {
      if (!std::isfinite(weights[j]) || weights[j] < 0.0) {
        return Status::InvalidArgument(
            "attribute weight " + std::to_string(j) +
            " must be finite and non-negative");
      }
      sum += weights[j];
    }
    if (sum <= 0.0) {
      return Status::InvalidArgument(
          "attribute weights must not all be zero");
    }
    return AttrWeightedPolicy(base, loss.WithAttributeWeights(weights));
  }

  /// The reweighted substrate; run the pipeline against this loss object.
  const PrecomputedLoss& loss() const { return loss_; }

 private:
  AttrWeightedPolicy(const Base& base, PrecomputedLoss loss)
      : Base(base), loss_(std::move(loss)) {}

  PrecomputedLoss loss_;
};

KANON_ASSERT_CLUSTER_POLICY(AttrWeightedPolicy<WeightedPolicy>);
KANON_ASSERT_CLUSTER_POLICY(AttrWeightedPolicy<PlainPolicy>);
KANON_ASSERT_CLUSTER_POLICY(AttrWeightedPolicy<LogWeightedPolicy>);
KANON_ASSERT_CLUSTER_POLICY(AttrWeightedPolicy<RatioPolicy>);
KANON_ASSERT_CLUSTER_POLICY(AttrWeightedPolicy<NergizCliftonPolicy>);

}  // namespace kanon

#endif  // KANON_ALGO_POLICY_WEIGHTED_H_
