#ifndef KANON_ALGO_CLUSTERING_H_
#define KANON_ALGO_CLUSTERING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/generalization/scheme.h"

namespace kanon {

/// A partition γ = {S_1, ..., S_m} of the dataset rows (Section V-A.1).
struct Clustering {
  std::vector<std::vector<uint32_t>> clusters;

  size_t num_clusters() const { return clusters.size(); }

  /// Total number of rows across clusters.
  size_t num_rows() const;

  /// Smallest cluster size (0 for an empty clustering).
  size_t min_cluster_size() const;

  /// True iff the clusters partition {0, ..., n-1} exactly.
  bool IsPartitionOf(size_t n) const;
};

/// Translates a clustering into a generalization g(D): every record is
/// replaced by the closure of its cluster (the minimal generalized record
/// consistent with all of the cluster's records).
GeneralizedTable TableFromClustering(
    std::shared_ptr<const GeneralizationScheme> scheme, const Dataset& dataset,
    const Clustering& clustering);

}  // namespace kanon

#endif  // KANON_ALGO_CLUSTERING_H_
