#ifndef KANON_ALGO_GLOBAL_RECODING_H_
#define KANON_ALGO_GLOBAL_RECODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/algo/core/engine_counters.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/loss/precomputed_loss.h"

namespace kanon {

/// Full-domain (global-recoding) k-anonymization, the model of Samarati
/// and of LeFevre et al.'s Incognito: one generalization *level* is chosen
/// per attribute and applied to every record uniformly. The paper contrasts
/// its local-recoding algorithms against this model (Section III: "Local
/// recoding is more flexible, hence it offers higher utility"); this
/// implementation exists to quantify that claim.
///
/// Levels are defined per attribute from the hierarchy's containment
/// chains: level 0 publishes the exact value, level ℓ publishes the ℓ-th
/// ancestor on the value's chain of permissible supersets (clamped at the
/// full domain). Requires a laminar (hierarchy-tree) collection per
/// attribute so that chains are unique.
///
/// The solver is a greedy full-domain ascent: starting from all-exact, it
/// repeatedly raises the level of the attribute whose increment yields the
/// smallest information loss until the table is k-anonymous. All-suppressed
/// is k-anonymous for every k ≤ n, so the search always terminates.
struct GlobalRecodingResult {
  GeneralizedTable table;
  /// Chosen level per attribute.
  std::vector<uint32_t> levels;
};

/// When `ctx` stops the ascent, every attribute jumps to its top level
/// (all records identical — k-anonymous for every k ≤ n). The per-attribute
/// trial tables of each ascent are evaluated across `num_threads` threads
/// (<= 0: hardware concurrency); the chosen levels are byte-identical at
/// every thread count. The optional `counters` (not owned) accumulates
/// engine telemetry: level bumps (upgrade_steps), trial-sweep chunks, and
/// the closure-interning statistics of the k-anonymity checks.
Result<GlobalRecodingResult> GlobalRecodingKAnonymize(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    RunContext* ctx = nullptr, int num_threads = 1,
    EngineCounters* counters = nullptr);

/// Policy-parameterized variant (docs/policy_engine.md): the policy's
/// PairCost hook ranks the per-attribute trial bumps of the ascent and Ripe
/// is the group-size predicate of the k-anonymity check; every built-in
/// distance policy keeps both at the identity defaults. Defined in
/// global_recoding.cc and explicitly instantiated per (pipeline × distance).
template <typename Policy>
Result<GlobalRecodingResult> GlobalRecodingKAnonymizeWithPolicy(
    const Dataset& dataset, const PrecomputedLoss& loss, size_t k,
    const Policy& policy, RunContext* ctx = nullptr, int num_threads = 1,
    EngineCounters* counters = nullptr);

/// The per-attribute level count (level 0 .. NumLevels-1); exposed for
/// tests and for reporting.
size_t NumGeneralizationLevels(const Hierarchy& hierarchy);

/// The subset published for `value` at `level` (clamped to the top).
SetId LevelAncestor(const Hierarchy& hierarchy, ValueCode value,
                    uint32_t level);

}  // namespace kanon

#endif  // KANON_ALGO_GLOBAL_RECODING_H_
