#ifndef KANON_ALGO_ANONYMIZER_H_
#define KANON_ALGO_ANONYMIZER_H_

#include <string>
#include <vector>

#include "kanon/algo/core/engine_counters.h"
#include "kanon/algo/distance.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/loss/precomputed_loss.h"
#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {

/// Every anonymization pipeline in the library, behind one switch.
enum class AnonymizationMethod {
  /// Algorithm 1 with a configurable distance function.
  kAgglomerative,
  /// Algorithms 1+2 (ripe clusters shrunk back to size k).
  kModifiedAgglomerative,
  /// The forest baseline of Aggarwal et al.
  kForest,
  /// (k,k): Algorithm 3 (nearest neighbors) + Algorithm 5.
  kKKNearestNeighbors,
  /// (k,k): Algorithm 4 (greedy expansion) + Algorithm 5.
  kKKGreedyExpansion,
  /// Global (1,k): Algorithm 4 + Algorithm 5 + Algorithm 6.
  kGlobal,
  /// Full-domain (global-recoding) baseline — one level per attribute
  /// (Section III's comparison model; requires laminar hierarchies).
  kFullDomain,
};

const char* AnonymizationMethodName(AnonymizationMethod method);

struct AnonymizerConfig {
  size_t k = 5;
  AnonymizationMethod method = AnonymizationMethod::kAgglomerative;
  /// Used by the agglomerative methods only.
  DistanceFunction distance = DistanceFunction::kLogWeighted;
  DistanceParams params;
  /// Per-attribute weights for the information-loss measure (empty = uniform,
  /// the default). With weights, every pipeline prices records by the
  /// weighted average Σ_j w_j·cost_j / Σw instead of (1/r)·Σ_j cost_j —
  /// implemented by the AttrWeightedPolicy of algo/policy_weighted.h over a
  /// reweighted cost substrate; no pipeline knows weights exist. Requires
  /// one finite weight >= 0 per attribute with a positive sum. The reported
  /// AnonymizationResult::loss stays Π under the ORIGINAL (uniform) measure,
  /// so runs with different weights are comparable. CLI: --attr-weights.
  std::vector<double> attr_weights;
  /// Worker threads for the O(n²·r) scans of the agglomerative, (k,k), and
  /// full-domain pipelines (the forest baseline stays single-threaded).
  /// <= 0 resolves to the hardware concurrency; 1 (the default) runs
  /// single-threaded. Results are byte-identical at every thread count
  /// (see docs/parallelism.md).
  int num_threads = 1;
  /// Optional execution controls (deadline, cancellation, step budget,
  /// progress observer). Not owned; must outlive the Anonymize() call. When
  /// the context stops the run, the pipeline finalizes a degraded — but
  /// still valid — table instead of aborting; the outcome is reported in
  /// AnonymizationResult. See docs/robustness.md.
  RunContext* run_context = nullptr;
  /// Optional telemetry sinks (docs/observability.md). Not owned; must
  /// outlive the Anonymize() call. With a tracer, every engine phase and
  /// parallel sweep records a span (export via WriteChromeTrace); with a
  /// metrics registry, the run publishes the engine.* / run.* catalog and
  /// the cluster-size and merge-cost histograms. Null (the default) keeps
  /// every instrumentation point a no-op.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

struct AnonymizationResult {
  GeneralizedTable table;
  /// Π(D, g(D)) under the loss measure the pipeline optimized.
  double loss = 0.0;
  double elapsed_seconds = 0.0;
  /// True when the run was cut short (deadline, cancellation, or step
  /// budget) and a degradation fallback produced the table. The table still
  /// satisfies the promised anonymity notion — it is just lossier.
  bool degraded = false;
  /// Why the run wound down early (kNone when it ran to completion).
  StopReason stop_reason = StopReason::kNone;
  /// Cooperative checkpoints passed (merge/expansion iterations).
  size_t iterations_completed = 0;
  /// Records coarsened beyond plan by the fallback (pooled or suppressed).
  size_t records_suppressed = 0;
  /// First stage that had to degrade ("" when the run completed), e.g.
  /// "agglomerative/merge".
  std::string degraded_stage;
  /// Engine telemetry from the algo/core components (merges, rescans, heap
  /// rebuilds, closure-cache hit rate, parallel-sweep chunks). Deterministic
  /// at every thread count; surfaced by `kanon_cli --stats-json`.
  EngineCounters counters;
};

/// Publishes the engine counters into `metrics` as typed metrics: one
/// `engine.<field>` counter per EngineCounters field plus the
/// `engine.closure_hit_rate` gauge. All deterministic. Null registry = no-op.
void PublishCounters(const EngineCounters& counters, MetricsRegistry* metrics);

/// Publishes run-level outcome metrics (`run.*` counters/gauges — loss,
/// iterations, suppression, degradation; `run.elapsed_seconds` is flagged
/// nondeterministic) and the `cluster.size` histogram of equivalence-class
/// sizes in the final table. Null registry = no-op.
void PublishResultMetrics(const AnonymizationResult& result,
                          MetricsRegistry* metrics);

/// Runs the configured pipeline on `dataset`, optimizing `loss`.
/// This is the recommended entry point for library users; the individual
/// algorithms remain available in the algo/ headers.
Result<AnonymizationResult> Anonymize(const Dataset& dataset,
                                      const PrecomputedLoss& loss,
                                      const AnonymizerConfig& config);

}  // namespace kanon

#endif  // KANON_ALGO_ANONYMIZER_H_
