#ifndef KANON_CHECK_GENERATORS_H_
#define KANON_CHECK_GENERATORS_H_

#include <memory>

#include "kanon/common/result.h"
#include "kanon/common/rng.h"
#include "kanon/data/dataset.h"
#include "kanon/data/schema.h"
#include "kanon/generalization/scheme.h"

namespace kanon {
namespace check {

/// Knobs for the randomized instance generators. Everything is drawn from
/// the caller's Rng, so identical (options, rng state) yields an identical
/// instance on every platform — the campaign's reproducibility contract.
struct GeneratorOptions {
  /// Attribute count is uniform in [1, max_attributes].
  size_t max_attributes = 3;
  /// Domain sizes are uniform in [2, max_domain_size].
  size_t max_domain_size = 12;
  /// Row counts are uniform in [1, max_rows] (degenerate shapes below may
  /// override with smaller counts).
  size_t max_rows = 48;
  /// Chance that a generated row duplicates an earlier row verbatim —
  /// anonymity algorithms hit very different paths on duplicate-heavy data.
  double duplicate_fraction = 0.3;
  /// Geometric decay of per-value sampling weights: value v gets weight
  /// skew^-v. 1.0 = uniform; larger = heavier head.
  double skew = 1.6;
  /// Mix in degenerate shapes: single-attribute schemas, all-identical
  /// datasets, and row counts smaller than any realistic k.
  bool allow_degenerate = true;
};

/// One generated problem instance.
struct GeneratedInstance {
  std::shared_ptr<const GeneralizationScheme> scheme;
  Dataset dataset;
};

/// Random schema: 1..max_attributes attributes, each either an integer
/// domain (labels "0".."m-1") or a categorical one (labels "a0".."a<m-1>").
/// Labels never contain whitespace, commas, or '|', so they round-trip
/// through the .repro and scheme-spec formats.
Result<Schema> GenerateSchema(const GeneratorOptions& options, Rng* rng);

/// Random generalization scheme over `schema`: per attribute one of
/// suppression-only, nested aligned interval bands, or a random laminar
/// two-level grouping. Always join-consistent (Hierarchy::Build verifies).
Result<GeneralizationScheme> GenerateScheme(const Schema& schema, Rng* rng);

/// Random dataset of `rows` rows over the scheme's schema, with per-value
/// skew and verbatim duplicates per `options`.
Result<Dataset> GenerateDataset(const GeneralizationScheme& scheme,
                                const GeneratorOptions& options, size_t rows,
                                Rng* rng);

/// Schema + scheme + dataset in one draw, including the degenerate shapes
/// when options.allow_degenerate.
Result<GeneratedInstance> GenerateInstance(const GeneratorOptions& options,
                                           Rng* rng);

}  // namespace check
}  // namespace kanon

#endif  // KANON_CHECK_GENERATORS_H_
