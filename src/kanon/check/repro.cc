#include "kanon/check/repro.h"

#include <charconv>
#include <utility>

#include "kanon/common/failpoint.h"
#include "kanon/common/text.h"

namespace kanon {
namespace check {

namespace {

constexpr const char* kHeader = "kanon-repro v1";

// The non-trivial subsets of a hierarchy as label groups — the exact input
// Hierarchy::FromLabelGroups rebuilds it from (singletons and the full set
// are implicit).
std::vector<std::vector<std::string>> HierarchyLabelGroups(
    const Hierarchy& h, const AttributeDomain& domain) {
  std::vector<std::vector<std::string>> groups;
  for (size_t id = 0; id < h.num_sets(); ++id) {
    const size_t size = h.SizeOf(static_cast<SetId>(id));
    if (size <= 1 || size >= h.domain_size()) continue;
    std::vector<std::string> group;
    for (size_t v = 0; v < h.domain_size(); ++v) {
      if (h.Contains(static_cast<SetId>(id), static_cast<ValueCode>(v))) {
        group.push_back(domain.label(static_cast<ValueCode>(v)));
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

// Splits on runs of spaces/tabs, dropping empty tokens.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
    size_t end = at;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > at) tokens.emplace_back(line.substr(at, end - at));
    at = end;
  }
  return tokens;
}

Result<uint64_t> ParseUint(const std::string& token) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not an unsigned integer: '" + token +
                                   "'");
  }
  return value;
}

Status MalformedLine(size_t line_number, const std::string& detail) {
  return Status::InvalidArgument("repro line " + std::to_string(line_number) +
                                 ": " + detail);
}

struct HierarchySpec {
  bool suppression_only = false;
  std::vector<std::vector<std::string>> groups;
};

}  // namespace

std::string FormatRepro(const ReproCase& repro) {
  const Schema& schema = repro.data.dataset.schema();
  std::string out = std::string(kHeader) + "\n";
  out += "property " + repro.property + "\n";
  out += std::string("expect ") + (repro.expect_fail ? "fail" : "pass") +
         "\n";
  if (repro.expect_fail) out += "kind " + repro.kind + "\n";
  out += "seed " + std::to_string(repro.data.config.seed) + "\n";
  out += "trial " + std::to_string(repro.data.config.trial_index) + "\n";
  out += "k " + std::to_string(repro.data.config.k) + "\n";
  out += "measure " + repro.data.config.measure + "\n";
  out += std::string("distance ") + DistanceName(repro.data.config.distance) +
         "\n";
  for (AnonymizationMethod method : repro.data.config.methods) {
    out += std::string("method ") + MethodShortName(method) + "\n";
  }
  for (const auto& [name, after] : repro.failpoints) {
    out += "failpoint " + name + " " + std::to_string(after) + "\n";
  }
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const AttributeDomain& domain = schema.attribute(j);
    out += "attr " + domain.name();
    for (const std::string& label : domain.labels()) out += " " + label;
    out += "\n";
    const std::vector<std::vector<std::string>> groups =
        HierarchyLabelGroups(repro.data.scheme->hierarchy(j), domain);
    if (groups.empty()) {
      out += "hier " + domain.name() + " suppression-only\n";
    } else {
      out += "hier " + domain.name() + " groups ";
      for (size_t g = 0; g < groups.size(); ++g) {
        if (g > 0) out += "|";
        out += Join(groups[g], ",");
      }
      out += "\n";
    }
  }
  for (size_t i = 0; i < repro.data.num_rows(); ++i) {
    out += "row";
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      out += " " + schema.attribute(j).label(repro.data.dataset.at(i, j));
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

Result<ReproCase> ParseRepro(const std::string& text) {
  ReproCase repro;
  repro.data.config.methods.clear();

  std::vector<AttributeDomain> domains;
  std::vector<HierarchySpec> hierarchy_specs;
  std::vector<std::vector<std::string>> rows;
  bool saw_header = false;
  bool saw_end = false;
  bool saw_expect = false;

  const std::vector<std::string> lines = Split(text, '\n');
  for (size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string line(Trim(lines[ln]));
    const size_t line_number = ln + 1;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kHeader) {
        return MalformedLine(line_number,
                             "expected header '" + std::string(kHeader) +
                                 "'");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) {
      return MalformedLine(line_number, "content after 'end'");
    }
    std::vector<std::string> tokens = Tokenize(line);
    const std::string& keyword = tokens[0];

    if (keyword == "end") {
      if (tokens.size() != 1) return MalformedLine(line_number, "bare 'end'");
      saw_end = true;
    } else if (keyword == "property" && tokens.size() == 2) {
      repro.property = tokens[1];
    } else if (keyword == "expect" && tokens.size() == 2) {
      if (tokens[1] != "fail" && tokens[1] != "pass") {
        return MalformedLine(line_number, "expect fail|pass");
      }
      repro.expect_fail = tokens[1] == "fail";
      saw_expect = true;
    } else if (keyword == "kind" && tokens.size() == 2) {
      repro.kind = tokens[1];
    } else if (keyword == "seed" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(repro.data.config.seed, ParseUint(tokens[1]));
    } else if (keyword == "trial" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(const uint64_t trial, ParseUint(tokens[1]));
      repro.data.config.trial_index = static_cast<size_t>(trial);
    } else if (keyword == "k" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(const uint64_t k, ParseUint(tokens[1]));
      if (k == 0) return MalformedLine(line_number, "k must be >= 1");
      repro.data.config.k = static_cast<size_t>(k);
    } else if (keyword == "measure" && tokens.size() == 2) {
      repro.data.config.measure = tokens[1];
    } else if (keyword == "distance" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(repro.data.config.distance,
                             ParseDistanceName(tokens[1]));
    } else if (keyword == "method" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(const AnonymizationMethod method,
                             ParseMethodShortName(tokens[1]));
      repro.data.config.methods.push_back(method);
    } else if (keyword == "failpoint" &&
               (tokens.size() == 2 || tokens.size() == 3)) {
      int after = 0;
      if (tokens.size() == 3) {
        KANON_ASSIGN_OR_RETURN(const uint64_t skip, ParseUint(tokens[2]));
        after = static_cast<int>(skip);
      }
      repro.failpoints.emplace_back(tokens[1], after);
    } else if (keyword == "attr" && tokens.size() >= 3) {
      std::vector<std::string> labels(tokens.begin() + 2, tokens.end());
      KANON_ASSIGN_OR_RETURN(AttributeDomain domain,
                             AttributeDomain::Create(tokens[1], labels));
      domains.push_back(std::move(domain));
      hierarchy_specs.push_back(HierarchySpec{true, {}});
    } else if (keyword == "hier" && tokens.size() >= 3) {
      if (domains.empty() || tokens[1] != domains.back().name()) {
        return MalformedLine(line_number,
                             "hier must follow its attr line ('" + tokens[1] +
                                 "')");
      }
      if (tokens[2] == "suppression-only" && tokens.size() == 3) {
        hierarchy_specs.back() = HierarchySpec{true, {}};
      } else if (tokens[2] == "groups" && tokens.size() == 4) {
        HierarchySpec spec;
        spec.suppression_only = false;
        for (const std::string& group : Split(tokens[3], '|')) {
          spec.groups.push_back(Split(group, ','));
        }
        hierarchy_specs.back() = std::move(spec);
      } else {
        return MalformedLine(line_number,
                             "hier <attr> suppression-only | groups a,b|c");
      }
    } else if (keyword == "row" && tokens.size() >= 2) {
      rows.emplace_back(tokens.begin() + 1, tokens.end());
    } else {
      return MalformedLine(line_number, "unrecognized line '" + line + "'");
    }
  }
  if (!saw_header) return Status::InvalidArgument("repro: missing header");
  if (!saw_end) return Status::InvalidArgument("repro: missing 'end'");
  if (repro.property.empty()) {
    return Status::InvalidArgument("repro: missing 'property'");
  }
  if (!saw_expect) return Status::InvalidArgument("repro: missing 'expect'");
  if (repro.expect_fail && repro.kind.empty()) {
    return Status::InvalidArgument("repro: 'expect fail' requires 'kind'");
  }
  if (domains.empty()) {
    return Status::InvalidArgument("repro: no 'attr' lines");
  }
  if (FindProperty(repro.property) == nullptr) {
    return Status::InvalidArgument("repro: unknown property '" +
                                   repro.property + "'");
  }

  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(domains));
  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < domains.size(); ++j) {
    if (hierarchy_specs[j].suppression_only) {
      KANON_ASSIGN_OR_RETURN(Hierarchy h,
                             Hierarchy::SuppressionOnly(domains[j].size()));
      hierarchies.push_back(std::move(h));
    } else {
      KANON_ASSIGN_OR_RETURN(
          Hierarchy h,
          Hierarchy::FromLabelGroups(domains[j], hierarchy_specs[j].groups));
      hierarchies.push_back(std::move(h));
    }
  }
  KANON_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme,
      GeneralizationScheme::Create(schema, std::move(hierarchies)));
  repro.data.scheme =
      std::make_shared<const GeneralizationScheme>(std::move(scheme));

  Dataset dataset(schema);
  for (const std::vector<std::string>& row : rows) {
    KANON_RETURN_NOT_OK(dataset.AppendRowLabels(row));
  }
  repro.data.dataset = std::move(dataset);

  if (repro.data.config.methods.empty()) {
    repro.data.config.methods = AllMethods();
  }
  return repro;
}

Result<ReproOutcome> ReplayRepro(const ReproCase& repro) {
  const Property* property = FindProperty(repro.property);
  if (property == nullptr) {
    return Status::InvalidArgument("unknown property '" + repro.property +
                                   "'");
  }
  for (const auto& [name, after] : repro.failpoints) {
    failpoint::Arm(name, after);
  }
  ReproOutcome outcome;
  outcome.actual = property->run(repro.data);
  for (const auto& [name, after] : repro.failpoints) {
    failpoint::Disarm(name);
  }
  outcome.matched = repro.expect_fail
                        ? (!outcome.actual.passed &&
                           outcome.actual.kind == repro.kind)
                        : outcome.actual.passed;
  return outcome;
}

std::string ReproOutcome::Describe(const ReproCase& repro) const {
  if (matched) {
    return repro.expect_fail ? "reproduced failure kind '" + repro.kind + "'"
                             : "passed as expected";
  }
  std::string expected = repro.expect_fail
                             ? "failure kind '" + repro.kind + "'"
                             : std::string("a pass");
  std::string got = actual.passed
                        ? std::string("a pass")
                        : "failure kind '" + actual.kind + "' (" +
                              actual.message + ")";
  return "expected " + expected + ", got " + got;
}

}  // namespace check
}  // namespace kanon
