#include "kanon/check/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace kanon {
namespace check {

namespace {

// The non-trivial subsets of a hierarchy (1 < |B| < |A_j|) as value-code
// groups: exactly what Hierarchy::FromGroups needs to rebuild it, since
// singletons and the full set are implicit.
std::vector<std::vector<ValueCode>> NontrivialGroups(const Hierarchy& h) {
  std::vector<std::vector<ValueCode>> groups;
  for (size_t id = 0; id < h.num_sets(); ++id) {
    const size_t size = h.SizeOf(static_cast<SetId>(id));
    if (size <= 1 || size >= h.domain_size()) continue;
    std::vector<ValueCode> group;
    for (size_t v = 0; v < h.domain_size(); ++v) {
      if (h.Contains(static_cast<SetId>(id), static_cast<ValueCode>(v))) {
        group.push_back(static_cast<ValueCode>(v));
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

Result<TrialData> WithRowsDropped(const TrialData& data, size_t begin,
                                  size_t count) {
  TrialData candidate = data;
  Dataset kept(data.dataset.schema());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (i >= begin && i < begin + count) continue;
    KANON_RETURN_NOT_OK(kept.AppendRow(data.dataset.row(i)));
  }
  candidate.dataset = std::move(kept);
  return candidate;
}

Result<TrialData> WithAttributeDropped(const TrialData& data, size_t drop) {
  std::vector<AttributeDomain> domains;
  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    if (j == drop) continue;
    domains.push_back(data.dataset.schema().attribute(j));
    hierarchies.push_back(data.scheme->hierarchy(j));
  }
  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(domains)));
  KANON_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme,
      GeneralizationScheme::Create(schema, std::move(hierarchies)));

  Dataset projected(schema);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const Record full = data.dataset.row(i);
    Record record;
    for (size_t j = 0; j < full.size(); ++j) {
      if (j != drop) record.push_back(full[j]);
    }
    KANON_RETURN_NOT_OK(projected.AppendRow(record));
  }
  TrialData candidate = data;
  candidate.scheme =
      std::make_shared<const GeneralizationScheme>(std::move(scheme));
  candidate.dataset = std::move(projected);
  return candidate;
}

Result<TrialData> WithSuppressionOnlyHierarchy(const TrialData& data,
                                               size_t attr) {
  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    if (j == attr) {
      KANON_ASSIGN_OR_RETURN(
          Hierarchy trivial,
          Hierarchy::SuppressionOnly(data.scheme->hierarchy(j).domain_size()));
      hierarchies.push_back(std::move(trivial));
    } else {
      hierarchies.push_back(data.scheme->hierarchy(j));
    }
  }
  KANON_ASSIGN_OR_RETURN(GeneralizationScheme scheme,
                         GeneralizationScheme::Create(data.dataset.schema(),
                                                      std::move(hierarchies)));
  TrialData candidate = data;
  candidate.scheme =
      std::make_shared<const GeneralizationScheme>(std::move(scheme));
  return candidate;
}

// Clamps attribute `attr` to the values the dataset actually uses: keeps
// their labels (in code order), remaps the rows, and restricts the
// hierarchy's groups to the surviving values. A restriction of a laminar
// family is laminar, so the rebuild succeeds; if the hierarchy resists,
// falls back to suppression-only for that attribute.
Result<TrialData> WithDomainClamped(const TrialData& data, size_t attr) {
  const AttributeDomain& domain = data.dataset.schema().attribute(attr);
  std::vector<bool> used(domain.size(), false);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    used[data.dataset.at(i, attr)] = true;
  }
  std::vector<ValueCode> remap(domain.size(), 0);
  std::vector<std::string> labels;
  for (size_t v = 0; v < domain.size(); ++v) {
    if (!used[v]) continue;
    remap[v] = static_cast<ValueCode>(labels.size());
    labels.push_back(domain.label(static_cast<ValueCode>(v)));
  }
  if (labels.size() >= domain.size()) {
    return Status::FailedPrecondition("domain already clamped");
  }

  KANON_ASSIGN_OR_RETURN(AttributeDomain clamped,
                         AttributeDomain::Create(domain.name(), labels));
  std::vector<std::vector<ValueCode>> groups;
  for (const std::vector<ValueCode>& group :
       NontrivialGroups(data.scheme->hierarchy(attr))) {
    std::vector<ValueCode> restricted;
    for (ValueCode v : group) {
      if (used[v]) restricted.push_back(remap[v]);
    }
    if (restricted.size() >= 2 && restricted.size() < labels.size()) {
      groups.push_back(std::move(restricted));
    }
  }
  Result<Hierarchy> rebuilt = Hierarchy::FromGroups(labels.size(), groups);
  if (!rebuilt.ok()) rebuilt = Hierarchy::SuppressionOnly(labels.size());
  KANON_RETURN_NOT_OK(rebuilt.status());

  std::vector<AttributeDomain> domains;
  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    if (j == attr) {
      domains.push_back(clamped);
      hierarchies.push_back(std::move(rebuilt).value());
    } else {
      domains.push_back(data.dataset.schema().attribute(j));
      hierarchies.push_back(data.scheme->hierarchy(j));
    }
  }
  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(domains)));
  Dataset remapped(schema);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    Record record = data.dataset.row(i);
    record[attr] = remap[record[attr]];
    KANON_RETURN_NOT_OK(remapped.AppendRow(record));
  }
  KANON_ASSIGN_OR_RETURN(
      GeneralizationScheme scheme,
      GeneralizationScheme::Create(schema, std::move(hierarchies)));
  TrialData candidate = data;
  candidate.scheme =
      std::make_shared<const GeneralizationScheme>(std::move(scheme));
  candidate.dataset = std::move(remapped);
  return candidate;
}

class Shrinker {
 public:
  Shrinker(const TrialData& original, const Property& property,
           const PropertyResult& original_failure,
           const ShrinkOptions& options)
      : property_(property),
        options_(options),
        best_{original, original_failure, 0} {}

  ShrinkOutcome Run() {
    bool progress = true;
    while (progress && !Exhausted()) {
      progress = false;
      progress |= NarrowMethods();
      progress |= DropRowChunks();
      progress |= DropAttributes();
      progress |= LowerK();
      progress |= SimplifyHierarchies();
      progress |= ClampDomains();
    }
    return std::move(best_);
  }

 private:
  bool Exhausted() const {
    return best_.evaluations >= options_.max_evaluations;
  }

  // Accepts `candidate` iff it fails with the original kind. Candidates
  // whose construction fails are simply skipped: a shrink transform that
  // does not apply is not an error.
  bool Accept(const Result<TrialData>& candidate) {
    if (Exhausted() || !candidate.ok()) return false;
    ++best_.evaluations;
    PropertyResult result = property_.run(candidate.value());
    if (result.passed || result.kind != best_.failure.kind) return false;
    best_.data = candidate.value();
    best_.failure = std::move(result);
    return true;
  }

  bool NarrowMethods() {
    if (best_.data.config.methods.size() <= 1) return false;
    for (AnonymizationMethod method : best_.data.config.methods) {
      TrialData candidate = best_.data;
      candidate.config.methods = {method};
      if (Accept(candidate)) return true;
      if (Exhausted()) return false;
    }
    return false;
  }

  // ddmin-style: try dropping chunks of n/2, n/4, ..., 1 rows.
  bool DropRowChunks() {
    bool changed = false;
    size_t chunk = std::max<size_t>(1, best_.data.num_rows() / 2);
    while (chunk >= 1 && !Exhausted()) {
      bool dropped = false;
      for (size_t begin = 0; begin < best_.data.num_rows();) {
        if (best_.data.num_rows() <= 1) break;
        const size_t count =
            std::min(chunk, best_.data.num_rows() - begin);
        if (Accept(WithRowsDropped(best_.data, begin, count))) {
          dropped = changed = true;  // Same `begin` now names fresh rows.
        } else {
          begin += count;
        }
        if (Exhausted()) break;
      }
      if (chunk == 1 && !dropped) break;
      chunk = dropped ? chunk : chunk / 2;
    }
    return changed;
  }

  bool DropAttributes() {
    bool changed = false;
    for (size_t j = 0; j < best_.data.num_attributes() && !Exhausted();) {
      if (best_.data.num_attributes() <= 1) break;
      if (Accept(WithAttributeDropped(best_.data, j))) {
        changed = true;  // Attribute j is now a different column.
      } else {
        ++j;
      }
    }
    return changed;
  }

  bool LowerK() {
    bool changed = false;
    while (best_.data.config.k > 1 && !Exhausted()) {
      TrialData candidate = best_.data;
      candidate.config.k = best_.data.config.k - 1;
      if (!Accept(candidate)) break;
      changed = true;
    }
    return changed;
  }

  bool SimplifyHierarchies() {
    bool changed = false;
    for (size_t j = 0; j < best_.data.num_attributes() && !Exhausted(); ++j) {
      const Hierarchy& h = best_.data.scheme->hierarchy(j);
      if (NontrivialGroups(h).empty()) continue;  // Already trivial.
      changed |= Accept(WithSuppressionOnlyHierarchy(best_.data, j));
    }
    return changed;
  }

  bool ClampDomains() {
    bool changed = false;
    for (size_t j = 0; j < best_.data.num_attributes() && !Exhausted(); ++j) {
      changed |= Accept(WithDomainClamped(best_.data, j));
    }
    return changed;
  }

  const Property& property_;
  const ShrinkOptions& options_;
  ShrinkOutcome best_;
};

}  // namespace

Result<ShrinkOutcome> Shrink(const TrialData& original,
                             const Property& property,
                             const PropertyResult& original_failure,
                             const ShrinkOptions& options) {
  if (original_failure.passed) {
    return Status::InvalidArgument("cannot shrink a passing trial");
  }
  return Shrinker(original, property, original_failure, options).Run();
}

}  // namespace check
}  // namespace kanon
