#include "kanon/check/properties.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <optional>
#include <utility>

#include "kanon/algo/brute_force.h"
#include "kanon/algo/clustering.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/run_context.h"
#include "kanon/common/text.h"
#include "kanon/shard/driver.h"

namespace kanon {
namespace check {

PropertyResult Pass() { return PropertyResult{}; }

PropertyResult Fail(std::string kind, std::string message) {
  PropertyResult result;
  result.passed = false;
  result.kind = std::move(kind);
  result.message = std::move(message);
  return result;
}

namespace {

// Numerical slack for loss comparisons: greedy and brute-force sums visit
// terms in different orders.
constexpr double kLossSlack = 1e-9;

// How a pipeline run on a (possibly degenerate) instance ended.
struct PipelineOutcome {
  bool ran = false;       // `result` holds a finished run.
  bool rejected = false;  // Clean rejection of an infeasible instance.
  Status error;           // Set when neither: an unexpected failure.
  std::optional<AnonymizationResult> result;
};

PipelineOutcome RunPipeline(const TrialData& data, AnonymizationMethod method,
                            int num_threads, RunContext* ctx) {
  PipelineOutcome outcome;
  Result<std::unique_ptr<LossMeasure>> measure =
      MakeMeasure(data.config.measure);
  if (!measure.ok()) {
    outcome.error = measure.status();
    return outcome;
  }
  const PrecomputedLoss loss(data.scheme, data.dataset, *measure.value(), 1);
  AnonymizerConfig config;
  config.k = data.config.k;
  config.method = method;
  config.distance = data.config.distance;
  config.num_threads = num_threads;
  config.run_context = ctx;
  Result<AnonymizationResult> result = Anonymize(data.dataset, loss, config);
  if (result.ok()) {
    outcome.ran = true;
    outcome.result = std::move(result).value();
    return outcome;
  }
  // k > n has no k-anonymous generalization of n published records; the
  // pipelines must reject it cleanly. Anything else is a bug.
  if (result.status().code() == StatusCode::kInvalidArgument &&
      data.config.k > data.num_rows()) {
    outcome.rejected = true;
    return outcome;
  }
  outcome.error = result.status();
  return outcome;
}

std::string ErrorKind(const char* what, const Status& status,
                      AnonymizationMethod method) {
  return std::string(what) + ":" + StatusCodeName(status.code()) + ":" +
         MethodShortName(method);
}

// The trial's deterministic substream for one property-specific purpose.
Rng PropertyRng(const TrialData& data, std::string_view label) {
  return Rng(data.config.seed)
      .Fork(static_cast<uint64_t>(data.config.trial_index))
      .Fork(label);
}

// First configured method that finishes on this instance, with its result.
// Returns false when every method cleanly rejects (k > n shapes); a hard
// error is reported through `failure`.
bool FirstFinishedRun(const TrialData& data, AnonymizationMethod* method,
                      std::optional<AnonymizationResult>* result,
                      PropertyResult* failure) {
  for (AnonymizationMethod candidate : data.config.methods) {
    PipelineOutcome outcome = RunPipeline(data, candidate, 1, nullptr);
    if (outcome.rejected) continue;
    if (!outcome.ran) {
      *failure = Fail(ErrorKind("pipeline-error", outcome.error, candidate),
                      outcome.error.ToString());
      return false;
    }
    *method = candidate;
    *result = std::move(outcome.result);
    return true;
  }
  return false;  // Vacuous: nothing to check on this shape.
}

// Coarsens ~n/4 rows (at least one) of `table` to R* — a generalization of
// a generalization, the converter direction of Section IV's monotonicity.
void SuppressRandomRows(const TrialData& data, std::string_view label,
                        GeneralizedTable* table) {
  Rng rng = PropertyRng(data, label);
  const size_t n = table->num_rows();
  if (n == 0) return;
  const size_t count = std::max<size_t>(1, n / 4);
  const GeneralizedRecord star = data.scheme->Suppressed();
  for (size_t j = 0; j < count; ++j) {
    table->SetRecord(static_cast<size_t>(rng.NextBounded(n)), star);
  }
}

bool CountersEqual(const EngineCounters& a, const EngineCounters& b) {
  return a.merges == b.merges && a.rescans == b.rescans &&
         a.heap_rebuilds == b.heap_rebuilds &&
         a.closure_hits == b.closure_hits &&
         a.closure_misses == b.closure_misses &&
         a.upgrade_steps == b.upgrade_steps &&
         a.parallel_chunks == b.parallel_chunks;
}

// --- Properties ----------------------------------------------------------

// Every pipeline's output satisfies the notion it promises, decided by the
// independent anonymity/verify module (Definitions 4.1, 4.4, 4.6).
PropertyResult PipelineVerifies(const TrialData& data) {
  for (AnonymizationMethod method : data.config.methods) {
    PipelineOutcome outcome = RunPipeline(data, method, 1, nullptr);
    if (outcome.rejected) continue;
    if (!outcome.ran) {
      return Fail(ErrorKind("pipeline-error", outcome.error, method),
                  outcome.error.ToString());
    }
    const GeneralizedTable& table = outcome.result->table;
    if (table.num_rows() != data.num_rows()) {
      return Fail(std::string("shape-mismatch:") + MethodShortName(method),
                  "published " + std::to_string(table.num_rows()) +
                      " records for " + std::to_string(data.num_rows()) +
                      " originals");
    }
    Result<NotionWitness> witness = WitnessNotion(
        PromisedNotion(method), data.dataset, table, data.config.k);
    if (!witness.ok()) {
      return Fail(ErrorKind("verify-error", witness.status(), method),
                  witness.status().ToString());
    }
    if (!witness->satisfied) {
      return Fail(std::string("notion-violated:") + MethodShortName(method),
                  witness->ToString(data.config.k));
    }
  }
  return Pass();
}

// The Section IV implication lattice on real outputs: g(D) generalizes D
// row-wise (Definition 3.2), k-anonymity implies (k,k), (k,k) is exactly
// (1,k) ∧ (k,1), global (1,k) implies (1,k), and matches are a subset of
// consistent neighbors (Proposition 4.5 / Definition 4.6).
PropertyResult ImplicationLattice(const TrialData& data) {
  for (AnonymizationMethod method : data.config.methods) {
    PipelineOutcome outcome = RunPipeline(data, method, 1, nullptr);
    if (outcome.rejected) continue;
    if (!outcome.ran) {
      return Fail(ErrorKind("pipeline-error", outcome.error, method),
                  outcome.error.ToString());
    }
    const GeneralizedTable& table = outcome.result->table;
    for (size_t i = 0; i < data.num_rows(); ++i) {
      if (!table.ConsistentPair(data.dataset, i, i)) {
        return Fail(std::string("row-consistency:") + MethodShortName(method),
                    "row " + std::to_string(i) +
                        " is not consistent with its own generalization");
      }
    }
    Result<AnonymityReport> report =
        AnalyzeAnonymity(data.dataset, table, data.config.k);
    if (!report.ok()) {
      return Fail(ErrorKind("verify-error", report.status(), method),
                  report.status().ToString());
    }
    const std::string suffix = std::string(":") + MethodShortName(method);
    if (report->kk != (report->one_k && report->k_one)) {
      return Fail("lattice:kk-conjunction" + suffix,
                  "(k,k) must equal (1,k) AND (k,1)");
    }
    if (report->k_anonymous && !report->kk) {
      return Fail("lattice:kanon-implies-kk" + suffix,
                  "k-anonymous generalization is not (k,k)-anonymous");
    }
    if (report->global_one_k && !report->one_k) {
      return Fail("lattice:global-implies-1k" + suffix,
                  "global (1,k) holds but plain (1,k) does not");
    }
    if (report->min_matches > report->min_left_degree) {
      return Fail("lattice:matches-bound" + suffix,
                  "min matches " + std::to_string(report->min_matches) +
                      " exceeds min consistency degree " +
                      std::to_string(report->min_left_degree));
    }
  }
  return Pass();
}

// Coarsening is a converter that may only add protection: further
// generalizing published records never decreases any consistency degree or
// match count (the monotone direction of Definition 3.3; the paper's
// notion converters rely on exactly this).
PropertyResult CoarseningMonotone(const TrialData& data) {
  AnonymizationMethod method = AnonymizationMethod::kAgglomerative;
  std::optional<AnonymizationResult> base;
  PropertyResult failure;
  if (!FirstFinishedRun(data, &method, &base, &failure)) return failure;

  Result<AnonymityReport> before =
      AnalyzeAnonymity(data.dataset, base->table, data.config.k);
  if (!before.ok()) {
    return Fail(ErrorKind("verify-error", before.status(), method),
                before.status().ToString());
  }
  GeneralizedTable coarsened = base->table;
  SuppressRandomRows(data, "coarsen", &coarsened);
  Result<AnonymityReport> after =
      AnalyzeAnonymity(data.dataset, coarsened, data.config.k);
  if (!after.ok()) {
    return Fail(ErrorKind("verify-error", after.status(), method),
                after.status().ToString());
  }
  if (after->min_left_degree < before->min_left_degree) {
    return Fail("coarsen:left-degree",
                "min (1,k) degree fell from " +
                    std::to_string(before->min_left_degree) + " to " +
                    std::to_string(after->min_left_degree));
  }
  if (after->min_right_degree < before->min_right_degree) {
    return Fail("coarsen:right-degree",
                "min (k,1) degree fell from " +
                    std::to_string(before->min_right_degree) + " to " +
                    std::to_string(after->min_right_degree));
  }
  if (after->min_matches < before->min_matches) {
    return Fail("coarsen:matches",
                "min match count fell from " +
                    std::to_string(before->min_matches) + " to " +
                    std::to_string(after->min_matches));
  }
  return Pass();
}

// Trims the trial to a brute-force-sized instance: first min(n, 7) rows,
// k clamped to min(k, 3, rows).
TrialData TinyInstance(const TrialData& data) {
  TrialData tiny = data;
  const size_t rows = std::min<size_t>(data.num_rows(), 7);
  tiny.dataset = data.dataset.Head(rows);
  tiny.config.k = std::min<size_t>({data.config.k, rows, 3});
  return tiny;
}

// The greedy clustering pipelines never beat the exhaustive optimum
// (eq. (7), Section V-A): Π_greedy >= Π* on instances small enough to
// enumerate, under the same measure.
PropertyResult BruteForceBound(const TrialData& data) {
  const TrialData tiny = TinyInstance(data);
  if (tiny.config.k < 1 || tiny.num_rows() == 0) return Pass();

  Result<std::unique_ptr<LossMeasure>> measure =
      MakeMeasure(tiny.config.measure);
  if (!measure.ok()) {
    return Fail("harness-error:measure", measure.status().ToString());
  }
  const PrecomputedLoss loss(tiny.scheme, tiny.dataset, *measure.value(), 1);
  Result<Clustering> optimal =
      OptimalKAnonymityBruteForce(tiny.dataset, loss, tiny.config.k);
  if (!optimal.ok()) {
    return Fail("bruteforce-error:" +
                    std::string(StatusCodeName(optimal.status().code())),
                optimal.status().ToString());
  }
  if (!optimal->IsPartitionOf(tiny.num_rows()) ||
      optimal->min_cluster_size() < tiny.config.k) {
    return Fail("bruteforce:invalid-partition",
                "brute force returned an infeasible clustering");
  }
  const GeneralizedTable optimal_table =
      TableFromClustering(tiny.scheme, tiny.dataset, *optimal);
  Result<NotionWitness> witness =
      WitnessKAnonymity(optimal_table, tiny.config.k);
  if (!witness.ok() || !witness->satisfied) {
    return Fail("bruteforce:not-k-anonymous",
                witness.ok() ? witness->ToString(tiny.config.k)
                             : witness.status().ToString());
  }
  const double optimum = ClusteringLoss(tiny.dataset, loss, *optimal);

  const AnonymizationMethod greedy[] = {
      AnonymizationMethod::kAgglomerative,
      AnonymizationMethod::kModifiedAgglomerative,
      AnonymizationMethod::kForest,
      AnonymizationMethod::kFullDomain,
  };
  for (AnonymizationMethod method : greedy) {
    if (std::find(data.config.methods.begin(), data.config.methods.end(),
                  method) == data.config.methods.end()) {
      continue;
    }
    PipelineOutcome outcome = RunPipeline(tiny, method, 1, nullptr);
    if (outcome.rejected) continue;
    if (!outcome.ran) {
      return Fail(ErrorKind("pipeline-error", outcome.error, method),
                  outcome.error.ToString());
    }
    if (outcome.result->loss + kLossSlack < optimum) {
      return Fail(std::string("bruteforce:beaten:") + MethodShortName(method),
                  MethodShortName(method) + std::string(" loss ") +
                      FormatDouble(outcome.result->loss, 12) +
                      " undercuts the exhaustive optimum " +
                      FormatDouble(optimum, 12));
    }
  }
  return Pass();
}

// The optimal loss is monotone non-decreasing in k: every partition with
// parts >= k+1 is feasible at k too, so Π*(k) <= Π*(k+1) (eq. (7)).
PropertyResult OptimalLossMonotoneK(const TrialData& data) {
  const TrialData tiny = TinyInstance(data);
  if (tiny.num_rows() == 0) return Pass();
  Result<std::unique_ptr<LossMeasure>> measure =
      MakeMeasure(tiny.config.measure);
  if (!measure.ok()) {
    return Fail("harness-error:measure", measure.status().ToString());
  }
  const PrecomputedLoss loss(tiny.scheme, tiny.dataset, *measure.value(), 1);
  double previous = -1.0;
  const size_t max_k = std::min<size_t>(tiny.num_rows(), 3);
  for (size_t k = 1; k <= max_k; ++k) {
    Result<Clustering> optimal =
        OptimalKAnonymityBruteForce(tiny.dataset, loss, k);
    if (!optimal.ok()) {
      return Fail("bruteforce-error:" +
                      std::string(StatusCodeName(optimal.status().code())),
                  optimal.status().ToString());
    }
    const double value = ClusteringLoss(tiny.dataset, loss, *optimal);
    if (value + kLossSlack < previous) {
      return Fail("bruteforce:monotone-k",
                  "optimal loss fell from " + FormatDouble(previous, 12) +
                      " at k=" + std::to_string(k - 1) + " to " +
                      FormatDouble(value, 12) + " at k=" + std::to_string(k));
    }
    previous = value;
  }
  return Pass();
}

// Degradation accounting balances: the degraded flag mirrors the stop
// reason, fallback suppression is bounded by n and zero on complete runs,
// the iteration count respects the budget, and a degraded table still
// verifies its promised notion (the docs/robustness.md contract).
PropertyResult SuppressionAccounting(const TrialData& data) {
  AnonymizationMethod method = data.config.methods.empty()
                                   ? AnonymizationMethod::kAgglomerative
                                   : data.config.methods.front();
  Rng rng = PropertyRng(data, "budget");
  const size_t budget =
      1 + static_cast<size_t>(rng.NextBounded(2 * data.num_rows() + 4));

  Result<std::unique_ptr<LossMeasure>> measure =
      MakeMeasure(data.config.measure);
  if (!measure.ok()) {
    return Fail("harness-error:measure", measure.status().ToString());
  }
  const PrecomputedLoss loss(data.scheme, data.dataset, *measure.value(), 1);
  RunContext ctx;
  ctx.set_step_budget(budget);
  AnonymizerConfig config;
  config.k = data.config.k;
  config.method = method;
  config.distance = data.config.distance;
  config.num_threads = 1;
  config.run_context = &ctx;
  Result<AnonymizationResult> run = Anonymize(data.dataset, loss, config);
  if (!run.ok()) {
    if (run.status().code() == StatusCode::kInvalidArgument &&
        data.config.k > data.num_rows()) {
      return Pass();
    }
    return Fail(ErrorKind("pipeline-error", run.status(), method),
                run.status().ToString());
  }
  const AnonymizationResult& result = run.value();
  const std::string suffix = std::string(":") + MethodShortName(method);
  if (result.degraded != (result.stop_reason != StopReason::kNone)) {
    return Fail("accounting:degraded-flag" + suffix,
                "degraded flag disagrees with stop reason " +
                    std::string(StopReasonName(result.stop_reason)));
  }
  if (!result.degraded && result.records_suppressed != 0) {
    return Fail("accounting:suppressed-on-complete-run" + suffix,
                std::to_string(result.records_suppressed) +
                    " records charged to a fallback that never ran");
  }
  if (result.records_suppressed > data.num_rows()) {
    return Fail("accounting:suppressed-bound" + suffix,
                std::to_string(result.records_suppressed) +
                    " fallback records exceed n = " +
                    std::to_string(data.num_rows()));
  }
  if (result.iterations_completed > budget + 1) {
    return Fail("accounting:iterations-bound" + suffix,
                std::to_string(result.iterations_completed) +
                    " iterations exceed step budget " +
                    std::to_string(budget));
  }
  if (result.table.num_rows() != data.num_rows()) {
    return Fail("accounting:shape" + suffix,
                "degraded run changed the row count");
  }
  Result<NotionWitness> witness = WitnessNotion(
      PromisedNotion(method), data.dataset, result.table, data.config.k);
  if (!witness.ok()) {
    return Fail(ErrorKind("verify-error", witness.status(), method),
                witness.status().ToString());
  }
  if (!witness->satisfied) {
    return Fail("accounting:degraded-invalid" + suffix,
                "budget " + std::to_string(budget) +
                    " run violates its notion: " +
                    witness->ToString(data.config.k));
  }
  return Pass();
}

// Byte-identical output at --threads 1/2/4, including the loss bits and
// the engine counters (the docs/parallelism.md determinism contract).
PropertyResult ThreadsDeterministic(const TrialData& data) {
  for (AnonymizationMethod method : data.config.methods) {
    PipelineOutcome reference = RunPipeline(data, method, 1, nullptr);
    if (!reference.ran && !reference.rejected) {
      return Fail(ErrorKind("pipeline-error", reference.error, method),
                  reference.error.ToString());
    }
    for (int threads : {2, 4}) {
      PipelineOutcome other = RunPipeline(data, method, threads, nullptr);
      const std::string suffix =
          std::string(":") + MethodShortName(method) + ":threads-" +
          std::to_string(threads);
      if (other.ran != reference.ran) {
        return Fail("threads-diverged-outcome" + suffix,
                    "run classification depends on the thread count");
      }
      if (!reference.ran) continue;
      if (!(other.result->table == reference.result->table)) {
        return Fail("threads-diverged-table" + suffix,
                    "published table differs from the single-threaded run");
      }
      if (other.result->loss != reference.result->loss) {
        return Fail("threads-diverged-loss" + suffix,
                    FormatDouble(other.result->loss, 17) + " vs " +
                        FormatDouble(reference.result->loss, 17));
      }
      if (!CountersEqual(other.result->counters, reference.result->counters)) {
        return Fail("threads-diverged-counters" + suffix,
                    "engine counters differ from the single-threaded run");
      }
    }
  }
  return Pass();
}

// Identical output across repeated runs of the same configuration — any
// divergence means hidden global state or scheduling leaking into results.
PropertyResult SeedDeterministic(const TrialData& data) {
  AnonymizationMethod method = AnonymizationMethod::kAgglomerative;
  std::optional<AnonymizationResult> first;
  PropertyResult failure;
  if (!FirstFinishedRun(data, &method, &first, &failure)) return failure;
  PipelineOutcome again = RunPipeline(data, method, 1, nullptr);
  if (!again.ran) {
    return Fail(ErrorKind("pipeline-error", again.error, method),
                again.error.ToString());
  }
  const std::string suffix = std::string(":") + MethodShortName(method);
  if (!(again.result->table == first->table)) {
    return Fail("rerun-diverged-table" + suffix,
                "repeated run published a different table");
  }
  if (again.result->loss != first->loss) {
    return Fail("rerun-diverged-loss" + suffix,
                FormatDouble(again.result->loss, 17) + " vs " +
                    FormatDouble(first->loss, 17));
  }
  if (!CountersEqual(again.result->counters, first->counters)) {
    return Fail("rerun-diverged-counters" + suffix,
                "engine counters differ between identical runs");
  }
  return Pass();
}

// The witness API agrees with the boolean verifiers, and every violation
// witness is real: recounting the named row's degree/group reproduces the
// reported shortfall.
PropertyResult WitnessConsistent(const TrialData& data) {
  AnonymizationMethod method = AnonymizationMethod::kAgglomerative;
  std::optional<AnonymizationResult> base;
  PropertyResult failure;
  if (!FirstFinishedRun(data, &method, &base, &failure)) return failure;

  GeneralizedTable coarsened = base->table;
  SuppressRandomRows(data, "witness-coarsen", &coarsened);

  const size_t k = data.config.k;
  const Dataset& d = data.dataset;
  for (const GeneralizedTable* table : {&base->table, &coarsened}) {
    for (AnonymityNotion notion :
         {AnonymityNotion::kKAnonymity, AnonymityNotion::kOneK,
          AnonymityNotion::kKOne, AnonymityNotion::kKK,
          AnonymityNotion::kGlobalOneK}) {
      Result<NotionWitness> witness = WitnessNotion(notion, d, *table, k);
      Result<bool> boolean = SatisfiesNotion(notion, d, *table, k);
      const std::string suffix =
          std::string(":") + AnonymityNotionName(notion);
      if (witness.ok() != boolean.ok()) {
        return Fail("witness:status-mismatch" + suffix,
                    "witness and boolean verifiers disagree on validity");
      }
      if (!witness.ok()) continue;
      if (witness->satisfied != boolean.value()) {
        return Fail("witness:verdict-mismatch" + suffix,
                    "witness and boolean verifiers disagree");
      }
      if (witness->satisfied) continue;
      const NotionWitness& w = witness.value();
      if (w.observed >= k) {
        return Fail("witness:observed-not-short" + suffix,
                    w.ToString(k) + " — observed count is not below k");
      }
      // Recount the witness row directly against Definition 3.3.
      size_t recount = 0;
      bool recountable = true;
      switch (notion) {
        case AnonymityNotion::kKAnonymity: {
          const GeneralizedRecord record = table->record(w.row);
          for (size_t t = 0; t < table->num_rows(); ++t) {
            if (table->record(t) == record) ++recount;
          }
          break;
        }
        case AnonymityNotion::kOneK:
          for (size_t t = 0; t < table->num_rows(); ++t) {
            if (table->ConsistentPair(d, w.row, t)) ++recount;
          }
          break;
        case AnonymityNotion::kKOne:
          for (size_t i = 0; i < d.num_rows(); ++i) {
            if (table->ConsistentPair(d, i, w.row)) ++recount;
          }
          break;
        case AnonymityNotion::kKK:
          if (w.row_in_table) {
            for (size_t i = 0; i < d.num_rows(); ++i) {
              if (table->ConsistentPair(d, i, w.row)) ++recount;
            }
          } else {
            for (size_t t = 0; t < table->num_rows(); ++t) {
              if (table->ConsistentPair(d, w.row, t)) ++recount;
            }
          }
          break;
        case AnonymityNotion::kGlobalOneK:
          // Matches need the full matching machinery; bounds only.
          recountable = false;
          break;
      }
      if (recountable && recount != w.observed) {
        return Fail("witness:recount-mismatch" + suffix,
                    "witness reports " + std::to_string(w.observed) +
                        " but direct recount finds " +
                        std::to_string(recount));
      }
      if (w.row >= (w.row_in_table ? table->num_rows() : d.num_rows())) {
        return Fail("witness:row-out-of-range" + suffix, w.ToString(k));
      }
    }
  }
  return Pass();
}

// First configured method whose per-shard outputs compose into a global
// k-guarantee (the per-record methods; see shard/driver.h). Nullopt when
// the trial exercises only relational notions — those properties are
// vacuous then.
std::optional<AnonymizationMethod> FirstComposableMethod(
    const TrialData& data) {
  for (AnonymizationMethod method : data.config.methods) {
    switch (method) {
      case AnonymizationMethod::kAgglomerative:
      case AnonymizationMethod::kModifiedAgglomerative:
      case AnonymizationMethod::kForest:
      case AnonymizationMethod::kFullDomain:
        return method;
      default:
        break;
    }
  }
  return std::nullopt;
}

// A sharded run of one trial in a private scratch work dir (campaign
// trials run concurrently, so the directory must be unique per trial).
struct ShardedOutcome {
  bool ran = false;
  bool rejected = false;  // Clean rejection (k > n shapes).
  Status error;
  std::optional<shard::ShardedResult> result;
};

ShardedOutcome RunSharded(const TrialData& data, AnonymizationMethod method,
                          size_t num_shards, const char* label) {
  ShardedOutcome outcome;
  Result<std::unique_ptr<LossMeasure>> measure =
      MakeMeasure(data.config.measure);
  if (!measure.ok()) {
    outcome.error = measure.status();
    return outcome;
  }
  AnonymizerConfig config;
  config.k = data.config.k;
  config.method = method;
  config.distance = data.config.distance;
  config.num_threads = 1;
  shard::ShardOptions options;
  options.num_shards = num_shards;
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("kanon_check_" + std::string(label) + "_s" +
       std::to_string(data.config.seed) + "_t" +
       std::to_string(data.config.trial_index) + "_n" +
       std::to_string(num_shards));
  options.work_dir = dir.string();
  Result<shard::ShardedResult> result = shard::ShardedAnonymize(
      data.dataset, data.scheme, *measure.value(), config, options);
  std::error_code ec;
  fs::remove_all(dir, ec);  // Scratch only; best-effort cleanup.
  if (result.ok()) {
    outcome.ran = true;
    outcome.result = std::move(result).value();
    return outcome;
  }
  if (result.status().code() == StatusCode::kInvalidArgument &&
      data.config.k > data.num_rows()) {
    outcome.rejected = true;
    return outcome;
  }
  outcome.error = result.status();
  return outcome;
}

// Sharded composition (Definition 4.1): anonymizing hash-partitioned
// shards independently and merging them — including the cross-shard
// boundary repair — publishes a globally k-anonymous table of the same
// shape, with every row still generalizing its original.
PropertyResult ShardedComposition(const TrialData& data) {
  const std::optional<AnonymizationMethod> method =
      FirstComposableMethod(data);
  if (!method.has_value()) return Pass();
  const std::string suffix = std::string(":") + MethodShortName(*method);
  Rng rng = PropertyRng(data, "shards");
  const size_t num_shards = 2 + static_cast<size_t>(rng.NextBounded(4));
  ShardedOutcome outcome =
      RunSharded(data, *method, num_shards, "composition");
  if (outcome.rejected) return Pass();
  if (!outcome.ran) {
    return Fail(ErrorKind("shard-error", outcome.error, *method),
                outcome.error.ToString());
  }
  const shard::ShardedResult& sharded = *outcome.result;
  if (sharded.table.num_rows() != data.num_rows()) {
    return Fail("shard:shape" + suffix,
                "merged table has " +
                    std::to_string(sharded.table.num_rows()) +
                    " rows for " + std::to_string(data.num_rows()) +
                    " originals");
  }
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (!sharded.table.ConsistentPair(data.dataset, i, i)) {
      return Fail("shard:row-consistency" + suffix,
                  "row " + std::to_string(i) +
                      " no longer generalizes its original after the "
                      "shard merge");
    }
  }
  Result<NotionWitness> witness =
      WitnessKAnonymity(sharded.table, data.config.k);
  if (!witness.ok()) {
    return Fail(ErrorKind("verify-error", witness.status(), *method),
                witness.status().ToString());
  }
  if (!witness->satisfied) {
    return Fail("shard:not-k-anonymous" + suffix,
                std::to_string(num_shards) + " shards: " +
                    witness->ToString(data.config.k));
  }
  return Pass();
}

// Sharded suppressed-row accounting is exact at EVERY shard count: the
// reported records_suppressed is a recount of fully suppressed rows on the
// published table, shard-level suppression never loses rows, and a clean
// (non-degraded) run reports no shard casualties.
PropertyResult ShardAccountingInvariant(const TrialData& data) {
  const std::optional<AnonymizationMethod> method =
      FirstComposableMethod(data);
  if (!method.has_value()) return Pass();
  const std::string suffix = std::string(":") + MethodShortName(*method);
  const GeneralizedRecord star = data.scheme->Suppressed();
  for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedOutcome outcome =
        RunSharded(data, *method, num_shards, "accounting");
    if (outcome.rejected) return Pass();
    if (!outcome.ran) {
      return Fail(ErrorKind("shard-error", outcome.error, *method),
                  outcome.error.ToString());
    }
    const shard::ShardedResult& sharded = *outcome.result;
    const std::string at = suffix + ":shards-" + std::to_string(num_shards);
    size_t recount = 0;
    for (size_t t = 0; t < sharded.table.num_rows(); ++t) {
      if (sharded.table.record(t) == star) ++recount;
    }
    if (recount != sharded.records_suppressed) {
      return Fail("shard-accounting:recount" + at,
                  "reported " + std::to_string(sharded.records_suppressed) +
                      " suppressed records, table carries " +
                      std::to_string(recount));
    }
    if (!sharded.degraded &&
        (sharded.shards_suppressed != 0 || sharded.shard_retries != 0 ||
         sharded.boundary_repaired != 0)) {
      return Fail("shard-accounting:clean-run" + at,
                  "non-degraded run reports shard casualties");
    }
    uint64_t shard_rows = 0;
    for (const shard::ShardOutcome& s : sharded.shards) shard_rows += s.rows;
    if (shard_rows != data.num_rows() ||
        sharded.rows != data.num_rows()) {
      return Fail("shard-accounting:rows" + at,
                  "per-shard row counts do not add up to n");
    }
  }
  return Pass();
}

}  // namespace

const std::vector<Property>& PropertyCatalog() {
  static const std::vector<Property> catalog = {
      {"pipeline-verifies", "Definitions 4.1, 4.4, 4.6",
       "every pipeline's output satisfies its promised anonymity notion",
       &PipelineVerifies},
      {"implication-lattice", "Proposition 4.5; Definition 3.2",
       "k-anon => (k,k); (k,k) = (1,k) AND (k,1); global (1,k) => (1,k); "
       "matches are consistent neighbors",
       &ImplicationLattice},
      {"coarsening-monotone", "Definition 3.3 (monotone converters)",
       "further generalizing published records never lowers a consistency "
       "degree or match count",
       &CoarseningMonotone},
      {"brute-force-bound", "eq. (7), Section V-A",
       "greedy clustering loss >= exhaustive optimum on tiny instances",
       &BruteForceBound},
      {"optimal-loss-monotone-k", "eq. (7): feasible partitions nest in k",
       "the exhaustive optimal loss is non-decreasing in k",
       &OptimalLossMonotoneK},
      {"suppression-accounting", "docs/robustness.md degradation contract",
       "degraded flag mirrors the stop reason, fallback suppression is "
       "bounded and zero on complete runs, degraded output still verifies",
       &SuppressionAccounting},
      {"threads-deterministic", "docs/parallelism.md determinism contract",
       "tables, losses, and engine counters are identical at threads 1/2/4",
       &ThreadsDeterministic},
      {"seed-deterministic", "determinism contract (repeated runs)",
       "repeated identical runs publish identical results",
       &SeedDeterministic},
      {"witness-consistent", "Definitions 4.1/4.4/4.6 (witness self-check)",
       "witness verifiers agree with the boolean verifiers and name real "
       "violations",
       &WitnessConsistent},
      {"sharded-composition", "Definition 4.1 (groups grow under union)",
       "per-shard anonymization + merge + boundary repair publishes a "
       "globally k-anonymous table of the original shape",
       &ShardedComposition},
      {"shard-accounting", "docs/sharding.md accounting contract",
       "suppressed-row accounting is an exact recount of the published "
       "table at every shard count; clean runs report no shard casualties",
       &ShardAccountingInvariant},
  };
  return catalog;
}

const Property* FindProperty(std::string_view name) {
  for (const Property& property : PropertyCatalog()) {
    if (name == property.name) return &property;
  }
  return nullptr;
}

Result<std::vector<const Property*>> SelectProperties(
    const std::string& comma_list) {
  std::vector<const Property*> selected;
  if (comma_list.empty() || comma_list == "all") {
    for (const Property& property : PropertyCatalog()) {
      selected.push_back(&property);
    }
    return selected;
  }
  for (const std::string& raw : Split(comma_list, ',')) {
    const std::string name(Trim(raw));
    if (name.empty()) continue;
    const Property* property = FindProperty(name);
    if (property == nullptr) {
      return Status::InvalidArgument("unknown property '" + name + "'");
    }
    if (std::find(selected.begin(), selected.end(), property) ==
        selected.end()) {
      selected.push_back(property);
    }
  }
  if (selected.empty()) {
    return Status::InvalidArgument("--props selected no properties");
  }
  return selected;
}

}  // namespace check
}  // namespace kanon
