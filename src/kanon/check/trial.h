#ifndef KANON_CHECK_TRIAL_H_
#define KANON_CHECK_TRIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/check/generators.h"
#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/measure.h"

namespace kanon {
namespace check {

/// Configuration of one randomized trial. Together with the instance in
/// TrialData this fully determines every property evaluation: no property
/// draws randomness of its own except through config.seed substreams.
struct TrialConfig {
  /// The campaign seed and this trial's index; the trial's own randomness
  /// (e.g. which rows a metamorphic transform coarsens) comes from
  /// Rng(seed).Fork(trial_index) substreams.
  uint64_t seed = 0;
  size_t trial_index = 0;
  size_t k = 2;
  /// Loss measure name: EM, LM, or SUP.
  std::string measure = "EM";
  DistanceFunction distance = DistanceFunction::kRatio;
  /// The pipelines this trial exercises. Properties iterate these; the
  /// shrinker narrows the list to the failing one.
  std::vector<AnonymizationMethod> methods;
};

/// One materialized trial: configuration + generated instance.
struct TrialData {
  TrialConfig config;
  std::shared_ptr<const GeneralizationScheme> scheme;
  Dataset dataset;

  size_t num_rows() const { return dataset.num_rows(); }
  size_t num_attributes() const { return dataset.num_attributes(); }
};

/// All seven pipelines, in the canonical (enum) order.
const std::vector<AnonymizationMethod>& AllMethods();

/// The anonymity notion a pipeline promises (the contract its output is
/// verified against).
AnonymityNotion PromisedNotion(AnonymizationMethod method);

/// CLI-style short method names ("agglomerative", "modified", "forest",
/// "kk-nn", "kk-greedy", "global", "full-domain") — the vocabulary of
/// --props filters and .repro files.
const char* MethodShortName(AnonymizationMethod method);
Result<AnonymizationMethod> ParseMethodShortName(const std::string& name);

/// Distance-function names ("1".."4", "nc"), as in kanon_cli --distance.
const char* DistanceName(DistanceFunction distance);
Result<DistanceFunction> ParseDistanceName(const std::string& name);

/// Loss measure by name: EM, LM, or SUP.
Result<std::unique_ptr<LossMeasure>> MakeMeasure(const std::string& name);

/// Materializes trial `trial_index` of a campaign: generator substream
/// Rng(campaign_seed).Fork(trial_index), so trials are order-independent
/// and any single trial can be regenerated without replaying the others.
Result<TrialData> MakeTrial(uint64_t campaign_seed, size_t trial_index,
                            const GeneratorOptions& options);

}  // namespace check
}  // namespace kanon

#endif  // KANON_CHECK_TRIAL_H_
