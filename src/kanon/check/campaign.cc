#include "kanon/check/campaign.h"

#include <utility>

#include "kanon/check/repro.h"
#include "kanon/check/shrink.h"
#include "kanon/check/trial.h"
#include "kanon/common/failpoint.h"
#include "kanon/common/parallel.h"

namespace kanon {
namespace check {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  out += JsonEscape(text);
  out.push_back('"');
  return out;
}

// Per-trial slot: each worker writes only its own, so the fan-out needs no
// locks and the assembled report is independent of scheduling.
struct TrialOutcome {
  size_t evaluations = 0;
  size_t passed = 0;
  std::vector<CampaignFailure> failures;
  std::string generator_error;
};

}  // namespace

Result<CampaignReport> RunCampaign(const CampaignOptions& options) {
  KANON_ASSIGN_OR_RETURN(const std::vector<const Property*> properties,
                         SelectProperties(options.props));
  if (options.trials == 0) {
    return Status::InvalidArgument("--trials must be >= 1");
  }

  // Failpoints armed via KANON_FAILPOINTS are global state; record them so
  // every written reproducer replays under the same injection.
  const std::vector<std::string> armed = failpoint::ArmedNames();

  std::vector<TrialOutcome> slots(options.trials);
  ParallelFor(
      options.trials, options.threads, /*ctx=*/nullptr, "check.campaign",
      [&](size_t trial_index) {
        TrialOutcome& slot = slots[trial_index];
        Result<TrialData> trial =
            MakeTrial(options.seed, trial_index, options.generator);
        if (!trial.ok()) {
          slot.generator_error = "trial " + std::to_string(trial_index) +
                                 ": " + trial.status().ToString();
          return;
        }
        for (const Property* property : properties) {
          PropertyResult result = property->run(trial.value());
          ++slot.evaluations;
          if (result.passed) {
            ++slot.passed;
            continue;
          }
          TrialData minimized = trial.value();
          PropertyResult final_result = result;
          if (options.shrink) {
            ShrinkOptions shrink_options;
            shrink_options.max_evaluations = options.shrink_max_evaluations;
            Result<ShrinkOutcome> shrunk =
                Shrink(trial.value(), *property, result, shrink_options);
            if (shrunk.ok()) {
              minimized = std::move(shrunk.value().data);
              final_result = std::move(shrunk.value().failure);
            }
          }
          CampaignFailure failure;
          failure.trial = trial_index;
          failure.property = property->name;
          failure.kind = final_result.kind;
          failure.message = final_result.message;
          failure.original_rows = trial->num_rows();
          failure.rows = minimized.num_rows();
          failure.attributes = minimized.num_attributes();
          ReproCase repro;
          repro.property = property->name;
          repro.expect_fail = true;
          repro.kind = final_result.kind;
          for (const std::string& name : armed) {
            repro.failpoints.emplace_back(name, 0);
          }
          repro.data = std::move(minimized);
          failure.repro = FormatRepro(repro);
          slot.failures.push_back(std::move(failure));
        }
      });

  CampaignReport report;
  report.seed = options.seed;
  report.trials = options.trials;
  for (const Property* property : properties) {
    report.properties.emplace_back(property->name);
  }
  for (TrialOutcome& slot : slots) {
    report.evaluations += slot.evaluations;
    report.passed += slot.passed;
    if (!slot.generator_error.empty()) {
      report.generator_errors.push_back(std::move(slot.generator_error));
    }
    for (CampaignFailure& failure : slot.failures) {
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

std::string CampaignReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"kanon_check\": 1,\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"trials\": " + std::to_string(trials) + ",\n";
  out += "  \"properties\": [";
  for (size_t i = 0; i < properties.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonString(properties[i]);
  }
  out += "],\n";
  out += "  \"evaluations\": " + std::to_string(evaluations) + ",\n";
  out += "  \"passed\": " + std::to_string(passed) + ",\n";
  out += "  \"failed\": " + std::to_string(failures.size()) + ",\n";
  out += "  \"generator_errors\": [";
  for (size_t i = 0; i < generator_errors.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonString(generator_errors[i]);
  }
  out += "],\n";
  out += "  \"failures\": [";
  for (size_t i = 0; i < failures.size(); ++i) {
    const CampaignFailure& f = failures[i];
    out += i > 0 ? ",\n    {" : "\n    {";
    out += "\"trial\": " + std::to_string(f.trial) + ", ";
    out += "\"property\": " + JsonString(f.property) + ", ";
    out += "\"kind\": " + JsonString(f.kind) + ", ";
    out += "\"message\": " + JsonString(f.message) + ", ";
    out += "\"original_rows\": " + std::to_string(f.original_rows) + ", ";
    out += "\"rows\": " + std::to_string(f.rows) + ", ";
    out += "\"attributes\": " + std::to_string(f.attributes) + ", ";
    out += "\"repro\": " + JsonString(f.repro);
    out += "}";
  }
  out += failures.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace check
}  // namespace kanon
