#include "kanon/check/trial.h"

#include <algorithm>
#include <utility>

#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"
#include "kanon/loss/suppression_measure.h"

namespace kanon {
namespace check {

const std::vector<AnonymizationMethod>& AllMethods() {
  static const std::vector<AnonymizationMethod> methods = {
      AnonymizationMethod::kAgglomerative,
      AnonymizationMethod::kModifiedAgglomerative,
      AnonymizationMethod::kForest,
      AnonymizationMethod::kKKNearestNeighbors,
      AnonymizationMethod::kKKGreedyExpansion,
      AnonymizationMethod::kGlobal,
      AnonymizationMethod::kFullDomain,
  };
  return methods;
}

AnonymityNotion PromisedNotion(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative:
    case AnonymizationMethod::kForest:
    case AnonymizationMethod::kFullDomain:
      return AnonymityNotion::kKAnonymity;
    case AnonymizationMethod::kKKNearestNeighbors:
    case AnonymizationMethod::kKKGreedyExpansion:
      return AnonymityNotion::kKK;
    case AnonymizationMethod::kGlobal:
      return AnonymityNotion::kGlobalOneK;
  }
  return AnonymityNotion::kKAnonymity;
}

const char* MethodShortName(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
      return "agglomerative";
    case AnonymizationMethod::kModifiedAgglomerative:
      return "modified";
    case AnonymizationMethod::kForest:
      return "forest";
    case AnonymizationMethod::kKKNearestNeighbors:
      return "kk-nn";
    case AnonymizationMethod::kKKGreedyExpansion:
      return "kk-greedy";
    case AnonymizationMethod::kGlobal:
      return "global";
    case AnonymizationMethod::kFullDomain:
      return "full-domain";
  }
  return "unknown";
}

Result<AnonymizationMethod> ParseMethodShortName(const std::string& name) {
  for (AnonymizationMethod method : AllMethods()) {
    if (name == MethodShortName(method)) return method;
  }
  return Status::InvalidArgument("unknown method '" + name + "'");
}

const char* DistanceName(DistanceFunction distance) {
  switch (distance) {
    case DistanceFunction::kWeighted:
      return "1";
    case DistanceFunction::kPlain:
      return "2";
    case DistanceFunction::kLogWeighted:
      return "3";
    case DistanceFunction::kRatio:
      return "4";
    case DistanceFunction::kNergizClifton:
      return "nc";
  }
  return "unknown";
}

Result<DistanceFunction> ParseDistanceName(const std::string& name) {
  for (DistanceFunction distance :
       {DistanceFunction::kWeighted, DistanceFunction::kPlain,
        DistanceFunction::kLogWeighted, DistanceFunction::kRatio,
        DistanceFunction::kNergizClifton}) {
    if (name == DistanceName(distance)) return distance;
  }
  return Status::InvalidArgument("unknown distance '" + name + "'");
}

Result<std::unique_ptr<LossMeasure>> MakeMeasure(const std::string& name) {
  std::unique_ptr<LossMeasure> measure;
  if (name == "EM") measure = std::make_unique<EntropyMeasure>();
  if (name == "LM") measure = std::make_unique<LmMeasure>();
  if (name == "SUP") measure = std::make_unique<SuppressionMeasure>();
  if (measure == nullptr) {
    return Status::InvalidArgument("unknown measure '" + name + "'");
  }
  return measure;
}

Result<TrialData> MakeTrial(uint64_t campaign_seed, size_t trial_index,
                            const GeneratorOptions& options) {
  // The trial's substream depends only on (campaign seed, index): trials
  // regenerate identically whatever order — or thread — they run in.
  Rng rng = Rng(campaign_seed).Fork(static_cast<uint64_t>(trial_index));

  Rng instance_rng = rng.Fork(std::string_view("instance"));
  KANON_ASSIGN_OR_RETURN(GeneratedInstance instance,
                         GenerateInstance(options, &instance_rng));

  Rng config_rng = rng.Fork(std::string_view("config"));
  TrialData data{TrialConfig{}, std::move(instance.scheme),
                 std::move(instance.dataset)};
  data.config.seed = campaign_seed;
  data.config.trial_index = trial_index;
  data.config.k = static_cast<size_t>(config_rng.NextInt(1, 6));

  const char* kMeasures[] = {"EM", "LM", "SUP"};
  data.config.measure = kMeasures[config_rng.NextBounded(3)];

  const DistanceFunction kDistances[] = {
      DistanceFunction::kWeighted, DistanceFunction::kPlain,
      DistanceFunction::kLogWeighted, DistanceFunction::kRatio,
      DistanceFunction::kNergizClifton};
  data.config.distance = kDistances[config_rng.NextBounded(5)];

  // Every trial exercises every pipeline: the instances are small enough
  // that running all seven costs little, and cross-pipeline properties
  // (differential oracles) need several outputs anyway.
  data.config.methods = AllMethods();
  return data;
}

}  // namespace check
}  // namespace kanon
