#ifndef KANON_CHECK_CAMPAIGN_H_
#define KANON_CHECK_CAMPAIGN_H_

#include <string>
#include <vector>

#include "kanon/check/generators.h"
#include "kanon/check/properties.h"
#include "kanon/common/result.h"

namespace kanon {
namespace check {

struct CampaignOptions {
  uint64_t seed = 0;
  size_t trials = 100;
  /// Threads the trials fan out over (<= 0: hardware concurrency). Reports
  /// are byte-identical at every thread count: trial i is always
  /// Rng(seed).Fork(i) regardless of which worker runs it, and results are
  /// assembled in trial order.
  int threads = 1;
  /// Comma-separated property filter ("" or "all": the whole catalog).
  std::string props;
  GeneratorOptions generator;
  /// Minimize failing trials before reporting them.
  bool shrink = true;
  size_t shrink_max_evaluations = 500;
};

/// One property failure, minimized (when shrinking is on) and packaged as a
/// replayable reproducer.
struct CampaignFailure {
  size_t trial = 0;
  std::string property;
  std::string kind;
  std::string message;
  size_t original_rows = 0;
  size_t rows = 0;        // After shrinking.
  size_t attributes = 0;  // After shrinking.
  /// FormatRepro() text of the minimized instance (expect fail). Failpoints
  /// armed via KANON_FAILPOINTS when the campaign ran are recorded so the
  /// reproducer replays the same injection.
  std::string repro;
};

struct CampaignReport {
  uint64_t seed = 0;
  size_t trials = 0;
  std::vector<std::string> properties;
  /// Property evaluations that ran (trials × selected properties).
  size_t evaluations = 0;
  size_t passed = 0;
  /// Ordered by (trial, property catalog position).
  std::vector<CampaignFailure> failures;
  /// Trials whose generator failed outright (always a harness bug).
  std::vector<std::string> generator_errors;

  bool ok() const { return failures.empty() && generator_errors.empty(); }

  /// Stable JSON: depends only on (seed, trials, props, generator options
  /// and outcomes) — never on thread count, timing, or machine.
  std::string ToJson() const;
};

/// Runs `trials` independent trials, each evaluating every selected
/// property, fanned over `threads` worker threads.
Result<CampaignReport> RunCampaign(const CampaignOptions& options);

}  // namespace check
}  // namespace kanon

#endif  // KANON_CHECK_CAMPAIGN_H_
