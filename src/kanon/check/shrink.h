#ifndef KANON_CHECK_SHRINK_H_
#define KANON_CHECK_SHRINK_H_

#include "kanon/check/properties.h"
#include "kanon/check/trial.h"
#include "kanon/common/result.h"

namespace kanon {
namespace check {

struct ShrinkOptions {
  /// Upper bound on property evaluations across all shrink passes. Each
  /// evaluation re-runs the property on a candidate instance, so this caps
  /// shrinking cost at roughly max_evaluations trial costs.
  size_t max_evaluations = 500;
};

/// A minimized failing trial. `failure.kind` always equals the kind the
/// shrink started from: candidates that fail *differently* are rejected, so
/// the reproducer reproduces the original bug.
struct ShrinkOutcome {
  TrialData data;
  PropertyResult failure;
  size_t evaluations = 0;
};

/// Greedily minimizes `original` (which fails `property` with
/// `original_failure`) while preserving the failure kind. Passes, repeated
/// to fixpoint: narrow the method list to the failing pipeline, drop row
/// chunks (ddmin-style halving), drop attributes, lower k, replace
/// hierarchies with suppression-only ones, and clamp each attribute domain
/// to the values the remaining rows use.
Result<ShrinkOutcome> Shrink(const TrialData& original,
                             const Property& property,
                             const PropertyResult& original_failure,
                             const ShrinkOptions& options);

}  // namespace check
}  // namespace kanon

#endif  // KANON_CHECK_SHRINK_H_
