#include "kanon/check/generators.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "kanon/generalization/hierarchy.h"

namespace kanon {
namespace check {

namespace {

Result<AttributeDomain> GenerateDomain(size_t index,
                                       const GeneratorOptions& options,
                                       Rng* rng) {
  const size_t size = static_cast<size_t>(
      rng->NextInt(2, static_cast<int64_t>(options.max_domain_size)));
  std::string name = "a";
  name += std::to_string(index);
  if (rng->NextDouble() < 0.7) {
    return AttributeDomain::IntegerRange(name, 0,
                                         static_cast<int>(size) - 1);
  }
  std::vector<std::string> labels;
  labels.reserve(size);
  for (size_t v = 0; v < size; ++v) {
    std::string label = "v";
    label += std::to_string(v);
    labels.push_back(std::move(label));
  }
  return AttributeDomain::Create(name, std::move(labels));
}

// A random laminar grouping: a fine partition of the (shuffled) domain into
// consecutive chunks, plus a coarse partition merging adjacent fine chunks.
// Aligned nested partitions are laminar, so Hierarchy::Build always accepts.
Result<Hierarchy> RandomLaminarHierarchy(size_t domain_size, Rng* rng) {
  std::vector<ValueCode> order(domain_size);
  for (size_t v = 0; v < domain_size; ++v) {
    order[v] = static_cast<ValueCode>(v);
  }
  rng->Shuffle(&order);

  std::vector<std::vector<ValueCode>> fine;
  size_t at = 0;
  while (at < domain_size) {
    const size_t chunk = static_cast<size_t>(rng->NextInt(
        1, std::min<int64_t>(4, static_cast<int64_t>(domain_size - at))));
    fine.emplace_back(order.begin() + at, order.begin() + at + chunk);
    at += chunk;
  }

  std::vector<std::vector<ValueCode>> groups = fine;
  if (fine.size() > 2 && rng->NextDouble() < 0.6) {
    // Coarse level: merge runs of 2-3 adjacent fine chunks.
    size_t g = 0;
    while (g + 2 <= fine.size()) {
      const size_t merge = static_cast<size_t>(rng->NextInt(
          2, std::min<int64_t>(3, static_cast<int64_t>(fine.size() - g))));
      std::vector<ValueCode> coarse;
      for (size_t j = g; j < g + merge; ++j) {
        coarse.insert(coarse.end(), fine[j].begin(), fine[j].end());
      }
      groups.push_back(std::move(coarse));
      g += merge;
    }
  }
  return Hierarchy::FromGroups(domain_size, groups);
}

Result<Hierarchy> GenerateHierarchy(const AttributeDomain& domain, Rng* rng) {
  const size_t size = domain.size();
  const double pick = rng->NextDouble();
  if (pick < 0.3 || size < 4) {
    return Hierarchy::SuppressionOnly(size);
  }
  if (pick < 0.65) {
    // Nested aligned bands; ragged last bands are fine for Intervals.
    std::vector<int> widths = {2};
    if (size >= 8 && rng->NextDouble() < 0.7) widths.push_back(4);
    if (size >= 16 && rng->NextDouble() < 0.5) widths.push_back(8);
    return Hierarchy::Intervals(size, widths);
  }
  return RandomLaminarHierarchy(size, rng);
}

}  // namespace

Result<Schema> GenerateSchema(const GeneratorOptions& options, Rng* rng) {
  size_t num_attributes = static_cast<size_t>(
      rng->NextInt(1, static_cast<int64_t>(std::max<size_t>(
                          1, options.max_attributes))));
  if (options.allow_degenerate && rng->NextDouble() < 0.15) {
    num_attributes = 1;  // Single-attribute shape, forced occasionally.
  }
  std::vector<AttributeDomain> attributes;
  for (size_t j = 0; j < num_attributes; ++j) {
    KANON_ASSIGN_OR_RETURN(AttributeDomain domain,
                           GenerateDomain(j, options, rng));
    attributes.push_back(std::move(domain));
  }
  return Schema::Create(std::move(attributes));
}

Result<GeneralizationScheme> GenerateScheme(const Schema& schema, Rng* rng) {
  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    KANON_ASSIGN_OR_RETURN(Hierarchy h,
                           GenerateHierarchy(schema.attribute(j), rng));
    hierarchies.push_back(std::move(h));
  }
  return GeneralizationScheme::Create(schema, std::move(hierarchies));
}

Result<Dataset> GenerateDataset(const GeneralizationScheme& scheme,
                                const GeneratorOptions& options, size_t rows,
                                Rng* rng) {
  const Schema& schema = scheme.schema();
  std::vector<AliasSampler> samplers;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    std::vector<double> weights(schema.attribute(j).size());
    double w = 1.0;
    for (size_t v = 0; v < weights.size(); ++v) {
      weights[v] = w;
      w /= std::max(1.0, options.skew);
    }
    samplers.emplace_back(weights);
  }

  Dataset dataset(schema);
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0 && rng->NextDouble() < options.duplicate_fraction) {
      const size_t source =
          static_cast<size_t>(rng->NextBounded(dataset.num_rows()));
      KANON_RETURN_NOT_OK(dataset.AppendRow(dataset.row(source)));
      continue;
    }
    Record record(schema.num_attributes());
    for (size_t j = 0; j < record.size(); ++j) {
      record[j] = static_cast<ValueCode>(samplers[j].Sample(rng));
    }
    KANON_RETURN_NOT_OK(dataset.AppendRow(record));
  }
  return dataset;
}

Result<GeneratedInstance> GenerateInstance(const GeneratorOptions& options,
                                           Rng* rng) {
  KANON_ASSIGN_OR_RETURN(Schema schema, GenerateSchema(options, rng));
  KANON_ASSIGN_OR_RETURN(GeneralizationScheme scheme,
                         GenerateScheme(schema, rng));
  auto scheme_ptr =
      std::make_shared<const GeneralizationScheme>(std::move(scheme));

  size_t rows = static_cast<size_t>(rng->NextInt(
      1, static_cast<int64_t>(std::max<size_t>(1, options.max_rows))));
  const double shape = rng->NextDouble();
  bool all_identical = false;
  if (options.allow_degenerate) {
    if (shape < 0.08) {
      rows = static_cast<size_t>(rng->NextInt(1, 3));  // Likely n < k.
    } else if (shape < 0.16) {
      all_identical = true;
    }
  }

  KANON_ASSIGN_OR_RETURN(Dataset dataset,
                         GenerateDataset(*scheme_ptr, options, rows, rng));
  if (all_identical && dataset.num_rows() > 1) {
    const Record first = dataset.row(0);
    Dataset identical(scheme_ptr->schema());
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      KANON_RETURN_NOT_OK(identical.AppendRow(first));
    }
    dataset = std::move(identical);
  }
  return GeneratedInstance{std::move(scheme_ptr), std::move(dataset)};
}

}  // namespace check
}  // namespace kanon
