#ifndef KANON_CHECK_PROPERTIES_H_
#define KANON_CHECK_PROPERTIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "kanon/check/trial.h"
#include "kanon/common/result.h"

namespace kanon {
namespace check {

/// Outcome of one property evaluation on one trial.
struct PropertyResult {
  bool passed = true;
  /// Stable failure class, e.g. "notion-violated:kk-greedy" or
  /// "pipeline-error:Internal:agglomerative". The shrinker only accepts a
  /// smaller instance when it fails with the *same* kind, so a shrunk
  /// reproducer reproduces the original failure, not some new one its
  /// mutations introduced.
  std::string kind;
  /// Human-readable details (may name specific rows; not stable across
  /// shrinking).
  std::string message;
};

PropertyResult Pass();
PropertyResult Fail(std::string kind, std::string message);

/// One named, independently runnable correctness property. Each encodes a
/// theorem or accounting invariant; `paper_ref` names its source. `run` is
/// deterministic: all randomness comes from the trial's seed substreams.
struct Property {
  const char* name;
  /// The paper theorem/equation (or engineering contract) encoded.
  const char* paper_ref;
  const char* description;
  PropertyResult (*run)(const TrialData& data);
};

/// The full catalog, in canonical order (the order of campaign reports).
const std::vector<Property>& PropertyCatalog();

/// Looks up one property by name; null when unknown.
const Property* FindProperty(std::string_view name);

/// Resolves a comma-separated --props filter ("" or "all" = whole catalog).
Result<std::vector<const Property*>> SelectProperties(
    const std::string& comma_list);

}  // namespace check
}  // namespace kanon

#endif  // KANON_CHECK_PROPERTIES_H_
