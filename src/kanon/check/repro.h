#ifndef KANON_CHECK_REPRO_H_
#define KANON_CHECK_REPRO_H_

#include <string>
#include <utility>
#include <vector>

#include "kanon/check/properties.h"
#include "kanon/check/trial.h"
#include "kanon/common/result.h"

namespace kanon {
namespace check {

/// One replayable reproducer: a fully materialized trial (the instance is
/// stored verbatim — replay does not re-run the generator, so reproducers
/// survive generator changes), the property it exercises, the expected
/// outcome, and any failpoints that must be armed during replay.
///
/// Serialized as a line-based text file (see docs/checking.md):
///
///   kanon-repro v1
///   property pipeline-verifies
///   expect fail
///   kind pipeline-error:Internal:agglomerative
///   seed 4
///   trial 17
///   k 2
///   measure EM
///   distance 4
///   method agglomerative
///   failpoint agglomerative.closure 3
///   attr a0 0 1 2 3
///   hier a0 groups 0,1|2,3
///   row 0 2
///   end
///
/// `attr` lines list the domain labels (whitespace-free); `hier` lines are
/// `suppression-only` or `groups` of comma-separated labels joined by `|`;
/// `row` lines give one label per attribute. `kind` is required iff
/// `expect fail`. Campaigns write `expect fail` reproducers; flipping the
/// line to `expect pass` turns a fixed one into a regression fixture.
struct ReproCase {
  std::string property;
  bool expect_fail = true;
  /// The failure kind replay must reproduce (when expect_fail).
  std::string kind;
  /// (failpoint name, skip count) pairs armed for the duration of replay.
  std::vector<std::pair<std::string, int>> failpoints;
  TrialData data;
};

/// Result of replaying a reproducer.
struct ReproOutcome {
  /// Whether the replay matched the recorded expectation.
  bool matched = false;
  /// What the property actually reported.
  PropertyResult actual;
  std::string Describe(const ReproCase& repro) const;
};

std::string FormatRepro(const ReproCase& repro);
Result<ReproCase> ParseRepro(const std::string& text);

/// Runs the recorded property on the recorded instance, with the recorded
/// failpoints armed (and disarmed again before returning). Matches the
/// outcome against the expectation: `expect fail` requires a failure of the
/// recorded kind; `expect pass` requires a pass.
Result<ReproOutcome> ReplayRepro(const ReproCase& repro);

}  // namespace check
}  // namespace kanon

#endif  // KANON_CHECK_REPRO_H_
