#include "kanon/data/schema.h"

#include <unordered_set>

#include "kanon/common/check.h"

namespace kanon {

Result<Schema> Schema::Create(std::vector<AttributeDomain> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema must have at least one attribute");
  }
  std::unordered_set<std::string> names;
  for (const AttributeDomain& a : attributes) {
    if (!names.insert(a.name()).second) {
      return Status::InvalidArgument("duplicate attribute name '" + a.name() +
                                     "'");
    }
  }
  return Schema(std::move(attributes));
}

const AttributeDomain& Schema::attribute(size_t index) const {
  KANON_CHECK(index < attributes_.size(), "attribute index out of range");
  return attributes_[index];
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name() == name) return i;
  }
  return Status::NotFound("schema has no attribute '" + name + "'");
}

bool Schema::Equals(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name() != other.attributes_[i].name()) return false;
    if (attributes_[i].labels() != other.attributes_[i].labels()) return false;
  }
  return true;
}

}  // namespace kanon
