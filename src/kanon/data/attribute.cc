#include "kanon/data/attribute.h"

#include <limits>

#include "kanon/common/check.h"

namespace kanon {

Result<AttributeDomain> AttributeDomain::Create(
    std::string name, std::vector<std::string> labels) {
  if (labels.empty()) {
    return Status::InvalidArgument("attribute '" + name +
                                   "' must have at least one value");
  }
  if (labels.size() > std::numeric_limits<ValueCode>::max()) {
    return Status::InvalidArgument("attribute '" + name +
                                   "' has too many values");
  }
  AttributeDomain domain(std::move(name), std::move(labels));
  if (domain.code_of_.size() != domain.labels_.size()) {
    return Status::InvalidArgument("attribute '" + domain.name_ +
                                   "' has duplicate value labels");
  }
  return domain;
}

AttributeDomain AttributeDomain::IntegerRange(std::string name, int lo,
                                              int hi) {
  KANON_CHECK(lo <= hi, "IntegerRange requires lo <= hi");
  std::vector<std::string> labels;
  labels.reserve(static_cast<size_t>(hi - lo) + 1);
  for (int v = lo; v <= hi; ++v) {
    labels.push_back(std::to_string(v));
  }
  Result<AttributeDomain> result = Create(std::move(name), std::move(labels));
  KANON_CHECK(result.ok(), result.status().ToString());
  return std::move(result).value();
}

AttributeDomain::AttributeDomain(std::string name,
                                 std::vector<std::string> labels)
    : name_(std::move(name)), labels_(std::move(labels)) {
  code_of_.reserve(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    code_of_.emplace(labels_[i], static_cast<ValueCode>(i));
  }
}

const std::string& AttributeDomain::label(ValueCode code) const {
  KANON_CHECK(code < labels_.size(), "value code out of range");
  return labels_[code];
}

Result<ValueCode> AttributeDomain::CodeOf(const std::string& label) const {
  auto it = code_of_.find(label);
  if (it == code_of_.end()) {
    return Status::NotFound("attribute '" + name_ + "' has no value '" +
                            label + "'");
  }
  return it->second;
}

bool AttributeDomain::HasLabel(const std::string& label) const {
  return code_of_.count(label) > 0;
}

}  // namespace kanon
