#include "kanon/data/dataset.h"

#include "kanon/common/check.h"

namespace kanon {

Record Dataset::row(size_t row_index) const {
  KANON_CHECK(row_index < num_rows(), "row index out of range");
  return row_view(row_index).ToRecord();
}

const ValueCode* Dataset::column(size_t attr) const {
  KANON_CHECK(attr < num_attributes(), "attribute index out of range");
  const size_t n = num_rows();
  const size_t r = num_attributes();
  if (columns_ == nullptr) {
    auto mirror = std::make_shared<std::vector<ValueCode>>(n * r);
    std::vector<ValueCode>& cols = *mirror;
    for (size_t i = 0; i < n; ++i) {
      const ValueCode* row = cells_.data() + i * r;
      for (size_t j = 0; j < r; ++j) {
        cols[j * n + i] = row[j];
      }
    }
    columns_ = std::move(mirror);
  }
  return columns_->data() + attr * n;
}

Status Dataset::AppendRow(const Record& record) {
  if (record.size() != num_attributes()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(record.size()) + " values, schema has " +
        std::to_string(num_attributes()) + " attributes");
  }
  for (size_t j = 0; j < record.size(); ++j) {
    if (record[j] >= schema_.attribute(j).size()) {
      return Status::OutOfRange("value code " + std::to_string(record[j]) +
                                " out of range for attribute '" +
                                schema_.attribute(j).name() + "'");
    }
  }
  // Guard on the domain, not on class_codes_: a class column attached to an
  // empty dataset has no codes, yet appending past it would still desync
  // class_codes_.size() from num_rows().
  if (class_domain_.has_value()) {
    return Status::FailedPrecondition(
        "cannot append rows after a class column was attached");
  }
  cells_.insert(cells_.end(), record.begin(), record.end());
  columns_.reset();  // The attribute-major mirror is stale now.
  return Status::OK();
}

Status Dataset::AppendRowLabels(const std::vector<std::string>& labels) {
  if (labels.size() != num_attributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(labels.size()) + " labels, schema has " +
        std::to_string(num_attributes()) + " attributes");
  }
  Record record(labels.size());
  for (size_t j = 0; j < labels.size(); ++j) {
    KANON_ASSIGN_OR_RETURN(record[j], schema_.attribute(j).CodeOf(labels[j]));
  }
  return AppendRow(record);
}

std::vector<uint32_t> Dataset::ValueCounts(size_t attr) const {
  KANON_CHECK(attr < num_attributes(), "attribute index out of range");
  std::vector<uint32_t> counts(schema_.attribute(attr).size(), 0);
  const size_t r = num_attributes();
  const size_t n = num_rows();
  for (size_t i = 0; i < n; ++i) {
    ++counts[cells_[i * r + attr]];
  }
  return counts;
}

Status Dataset::SetClassColumn(AttributeDomain domain,
                               std::vector<ValueCode> codes) {
  if (codes.size() != num_rows()) {
    return Status::InvalidArgument(
        "class column has " + std::to_string(codes.size()) +
        " values for " + std::to_string(num_rows()) + " rows");
  }
  for (ValueCode c : codes) {
    if (c >= domain.size()) {
      return Status::OutOfRange("class code out of range");
    }
  }
  class_domain_ = std::move(domain);
  class_codes_ = std::move(codes);
  return Status::OK();
}

const AttributeDomain& Dataset::class_domain() const {
  KANON_CHECK(class_domain_.has_value(), "dataset has no class column");
  return *class_domain_;
}

ValueCode Dataset::class_of(size_t row) const {
  KANON_CHECK(class_domain_.has_value(), "dataset has no class column");
  KANON_CHECK(row < class_codes_.size(), "class row index out of range");
  return class_codes_[row];
}

Dataset Dataset::Head(size_t n) const {
  KANON_CHECK(n <= num_rows(), "Head(n) requires n <= num_rows()");
  Dataset out(schema_);
  const size_t r = num_attributes();
  out.cells_.assign(cells_.begin(), cells_.begin() + n * r);
  if (class_domain_.has_value()) {
    out.class_domain_ = class_domain_;
    out.class_codes_.assign(class_codes_.begin(), class_codes_.begin() + n);
  }
  return out;
}

}  // namespace kanon
