#ifndef KANON_DATA_CSV_H_
#define KANON_DATA_CSV_H_

#include <iosfwd>
#include <string>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"

namespace kanon {

/// Longest accepted input line, in bytes. A line beyond this is rejected
/// with InvalidArgument rather than buffered: the UCI-style files this
/// library targets have short lines, so an over-long one signals a binary
/// or corrupt input, not data.
inline constexpr size_t kMaxCsvLineLength = 1 << 20;  // 1 MiB.

/// Options for the CSV reader. The format is plain comma-separated text
/// without quoting (the UCI files this library targets use none); fields are
/// trimmed of surrounding whitespace. CRLF line endings, a missing trailing
/// newline, and a UTF-8 BOM are tolerated; truncated streams (read errors)
/// and over-long lines are reported as errors.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Rows containing this field (e.g. "?" in UCI Adult) are skipped entirely.
  std::string missing_marker = "?";
  bool skip_rows_with_missing = true;
};

/// Reads a dataset whose columns match `schema` (by position). Unknown value
/// labels produce an error. A header row, when present, is validated against
/// the attribute names.
Result<Dataset> ReadCsv(const Schema& schema, std::istream& input,
                        const CsvOptions& options = CsvOptions());
Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path,
                            const CsvOptions& options = CsvOptions());

/// Reads a CSV and infers an attribute domain per column from the distinct
/// values seen (labels sorted lexicographically). With a header, attribute
/// names come from it; otherwise they are "col0", "col1", ....
Result<Dataset> ReadCsvInferSchema(std::istream& input,
                                   const CsvOptions& options = CsvOptions());
Result<Dataset> ReadCsvInferSchemaFile(
    const std::string& path, const CsvOptions& options = CsvOptions());

/// Writes a dataset (value labels, with a header; the class column, when
/// present, is appended as the last column).
Status WriteCsv(const Dataset& dataset, std::ostream& output,
                char delimiter = ',');
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter = ',');

}  // namespace kanon

#endif  // KANON_DATA_CSV_H_
