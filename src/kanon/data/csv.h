#ifndef KANON_DATA_CSV_H_
#define KANON_DATA_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"

namespace kanon {

/// Longest accepted input line, in bytes. A line beyond this is rejected
/// with InvalidArgument rather than buffered: the UCI-style files this
/// library targets have short lines, so an over-long one signals a binary
/// or corrupt input, not data.
inline constexpr size_t kMaxCsvLineLength = 1 << 20;  // 1 MiB.

/// Options for the CSV reader. The format is plain comma-separated text
/// without quoting (the UCI files this library targets use none); fields are
/// trimmed of surrounding whitespace. CRLF line endings, a missing trailing
/// newline, and a UTF-8 BOM are tolerated; truncated streams (read errors)
/// and over-long lines are reported as errors.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Rows containing this field (e.g. "?" in UCI Adult) are skipped entirely.
  std::string missing_marker = "?";
  bool skip_rows_with_missing = true;
};

/// Streaming row iterator over a CSV stream: the bounded-memory core every
/// whole-file reader in this header is a thin wrapper over, and what the
/// out-of-core sharded driver (src/kanon/shard/) ingests multi-million-row
/// files through. Memory use is one line, however long the file.
///
/// Next() applies the same hardened parsing as the whole-file readers: CRLF
/// endings and a UTF-8 BOM on the first line are tolerated, blank lines and
/// rows carrying the missing-value marker are skipped, over-long lines and
/// truncated streams (stream errors) are reported as Status failures. With
/// options.has_header the header line is consumed (and exposed via
/// header()) before the first data row; an input that ends before the
/// header is an error.
///
/// Usage:
///   RowReader reader(input, options);
///   std::vector<std::string> fields;
///   while (true) {
///     KANON_ASSIGN_OR_RETURN(bool got, reader.Next(&fields));
///     if (!got) break;
///     ...  // one row in `fields`; reader.line_number() names its line
///   }
class RowReader {
 public:
  /// `input` must outlive the reader.
  RowReader(std::istream& input, CsvOptions options = CsvOptions());

  /// Advances to the next data row. Returns true with `*fields` filled,
  /// false at a clean end of input, or an error Status on malformed or
  /// truncated input.
  Result<bool> Next(std::vector<std::string>* fields);

  /// The header row's fields. Populated once Next() has been called at
  /// least once (on a has_header stream); empty otherwise.
  const std::vector<std::string>& header() const { return header_; }
  bool header_seen() const { return saw_header_; }

  /// 1-based input line of the row Next() last returned (0 before the
  /// first row) — what error messages should point at.
  size_t line_number() const { return row_line_number_; }

  /// Data rows returned so far.
  size_t rows_read() const { return rows_read_; }

 private:
  std::istream& input_;
  const CsvOptions options_;
  std::vector<std::string> header_;
  bool saw_header_ = false;
  bool done_ = false;
  size_t line_number_ = 0;      // Lines consumed from the stream.
  size_t row_line_number_ = 0;  // Line of the last returned row.
  size_t rows_read_ = 0;
};

/// Streams `input` once and infers an attribute domain per column from the
/// distinct values seen (labels sorted lexicographically), without
/// materializing the rows: memory is bounded by the domain sizes, not the
/// row count. With a header, attribute names come from it; otherwise they
/// are "col0", "col1", .... This is pass 1 of the sharded driver's
/// two-pass ingestion.
Result<Schema> InferCsvSchema(std::istream& input,
                              const CsvOptions& options = CsvOptions());
Result<Schema> InferCsvSchemaFile(const std::string& path,
                                  const CsvOptions& options = CsvOptions());

/// Reads a dataset whose columns match `schema` (by position). Unknown value
/// labels produce an error. A header row, when present, is validated against
/// the attribute names.
Result<Dataset> ReadCsv(const Schema& schema, std::istream& input,
                        const CsvOptions& options = CsvOptions());
Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path,
                            const CsvOptions& options = CsvOptions());

/// Reads a CSV and infers an attribute domain per column from the distinct
/// values seen (labels sorted lexicographically). With a header, attribute
/// names come from it; otherwise they are "col0", "col1", ....
Result<Dataset> ReadCsvInferSchema(std::istream& input,
                                   const CsvOptions& options = CsvOptions());
Result<Dataset> ReadCsvInferSchemaFile(
    const std::string& path, const CsvOptions& options = CsvOptions());

/// Writes a dataset (value labels, with a header; the class column, when
/// present, is appended as the last column).
Status WriteCsv(const Dataset& dataset, std::ostream& output,
                char delimiter = ',');
Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter = ',');

}  // namespace kanon

#endif  // KANON_DATA_CSV_H_
