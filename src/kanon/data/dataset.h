#ifndef KANON_DATA_DATASET_H_
#define KANON_DATA_DATASET_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/attribute.h"
#include "kanon/data/schema.h"

namespace kanon {

/// A record of the public database D: one coded value per attribute.
using Record = std::vector<ValueCode>;

/// A zero-copy view of one coded row (a borrowed span of r ValueCodes).
/// Valid as long as the owning Dataset (or Record) outlives it and is not
/// appended to. This is what the hot loops pass around instead of copying
/// rows into fresh Records.
class RowView {
 public:
  constexpr RowView() = default;
  constexpr RowView(const ValueCode* data, size_t size)
      : data_(data), size_(size) {}
  /// Implicit, so call sites holding a Record keep working unchanged.
  RowView(const Record& record)  // NOLINT(google-explicit-constructor)
      : data_(record.data()), size_(record.size()) {}
  /// Braced literals (`Identity({1, 2})`): the backing array lives to the
  /// end of the full expression, which covers the immediate call. Do not
  /// store a RowView built this way — that is exactly the lifetime the
  /// suppressed warning is about.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  RowView(std::initializer_list<ValueCode> init)
      : data_(init.begin()), size_(init.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  constexpr ValueCode operator[](size_t j) const { return data_[j]; }
  constexpr size_t size() const { return size_; }
  constexpr const ValueCode* data() const { return data_; }
  constexpr const ValueCode* begin() const { return data_; }
  constexpr const ValueCode* end() const { return data_ + size_; }

  /// Materializes an owning copy.
  Record ToRecord() const { return Record(data_, data_ + size_); }

 private:
  const ValueCode* data_ = nullptr;
  size_t size_ = 0;
};

/// The public database D = {R_1, ..., R_n} (eq. (1) of the paper): an
/// in-memory table of coded categorical records over a Schema.
///
/// Rows are stored row-major (the layout appends want); an attribute-major
/// struct-of-arrays mirror is built on demand for the engines' linear
/// per-attribute sweeps (see docs/performance.md).
///
/// An optional class column (e.g. the contraceptive-method attribute of the
/// CMC dataset) stands in for the private database D'; it is used by the
/// classification metric and by the adversary demos, and is never touched by
/// the anonymization algorithms.
class Dataset {
 public:
  /// Empty placeholder (empty schema, no rows) — for default-constructed
  /// holders that are assigned a real dataset before use.
  Dataset() = default;

  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return schema_.num_attributes() == 0
               ? 0
               : cells_.size() / schema_.num_attributes();
  }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Value of attribute `attr` in row `row`. Ri(j) in the paper's notation.
  ValueCode at(size_t row, size_t attr) const {
    KANON_DCHECK(row < num_rows() && attr < num_attributes());
    return cells_[row * num_attributes() + attr];
  }

  /// Copies out row `row` as a Record.
  Record row(size_t row_index) const;

  /// Zero-copy view of row `row`, borrowing the dataset's row-major cells.
  /// Invalidated by AppendRow/AppendRowLabels.
  RowView row_view(size_t row_index) const {
    KANON_DCHECK(row_index < num_rows());
    const size_t r = num_attributes();
    return RowView(cells_.data() + row_index * r, r);
  }

  /// Attribute-major mirror of the cells: column(j) points at num_rows()
  /// consecutive codes of attribute j, so per-attribute sweeps are linear
  /// scans the compiler can vectorize. Built on the first call and cached;
  /// appending rows invalidates the cache (the next call rebuilds).
  ///
  /// The first call per dataset is NOT safe to race: engines prime the
  /// mirror once on their coordinating thread (a single column() call)
  /// before fanning out; after that, concurrent reads are fine.
  const ValueCode* column(size_t attr) const;

  /// Appends a row. The record must have one in-range code per attribute.
  Status AppendRow(const Record& record);

  /// Appends a row of value labels, translating them to codes.
  Status AppendRowLabels(const std::vector<std::string>& labels);

  /// Per-attribute value histogram: counts[v] = #{i : R_i(j) = v}.
  std::vector<uint32_t> ValueCounts(size_t attr) const;

  /// Attaches a class column (one code per existing row).
  Status SetClassColumn(AttributeDomain domain, std::vector<ValueCode> codes);
  bool has_class_column() const { return class_domain_.has_value(); }
  const AttributeDomain& class_domain() const;
  ValueCode class_of(size_t row) const;

  /// Returns the first `n` rows as a new dataset (class column included).
  /// Requires n <= num_rows().
  Dataset Head(size_t n) const;

 private:
  Schema schema_;
  std::vector<ValueCode> cells_;  // Row-major, n x r.
  std::optional<AttributeDomain> class_domain_;
  std::vector<ValueCode> class_codes_;
  // Attribute-major mirror (r x n), lazily built by column(). Shared so
  // that copies of an unmodified dataset reuse it; an append replaces the
  // pointer in the appended-to object only.
  mutable std::shared_ptr<const std::vector<ValueCode>> columns_;
};

}  // namespace kanon

#endif  // KANON_DATA_DATASET_H_
