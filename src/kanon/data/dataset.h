#ifndef KANON_DATA_DATASET_H_
#define KANON_DATA_DATASET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/attribute.h"
#include "kanon/data/schema.h"

namespace kanon {

/// A record of the public database D: one coded value per attribute.
using Record = std::vector<ValueCode>;

/// The public database D = {R_1, ..., R_n} (eq. (1) of the paper): an
/// in-memory table of coded categorical records over a Schema.
///
/// An optional class column (e.g. the contraceptive-method attribute of the
/// CMC dataset) stands in for the private database D'; it is used by the
/// classification metric and by the adversary demos, and is never touched by
/// the anonymization algorithms.
class Dataset {
 public:
  /// Empty placeholder (empty schema, no rows) — for default-constructed
  /// holders that are assigned a real dataset before use.
  Dataset() = default;

  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return schema_.num_attributes() == 0
               ? 0
               : cells_.size() / schema_.num_attributes();
  }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Value of attribute `attr` in row `row`. Ri(j) in the paper's notation.
  ValueCode at(size_t row, size_t attr) const {
    KANON_DCHECK(row < num_rows() && attr < num_attributes());
    return cells_[row * num_attributes() + attr];
  }

  /// Copies out row `row` as a Record.
  Record row(size_t row_index) const;

  /// Appends a row. The record must have one in-range code per attribute.
  Status AppendRow(const Record& record);

  /// Appends a row of value labels, translating them to codes.
  Status AppendRowLabels(const std::vector<std::string>& labels);

  /// Per-attribute value histogram: counts[v] = #{i : R_i(j) = v}.
  std::vector<uint32_t> ValueCounts(size_t attr) const;

  /// Attaches a class column (one code per existing row).
  Status SetClassColumn(AttributeDomain domain, std::vector<ValueCode> codes);
  bool has_class_column() const { return class_domain_.has_value(); }
  const AttributeDomain& class_domain() const;
  ValueCode class_of(size_t row) const;

  /// Returns the first `n` rows as a new dataset (class column included).
  /// Requires n <= num_rows().
  Dataset Head(size_t n) const;

 private:
  Schema schema_;
  std::vector<ValueCode> cells_;  // Row-major, n x r.
  std::optional<AttributeDomain> class_domain_;
  std::vector<ValueCode> class_codes_;
};

}  // namespace kanon

#endif  // KANON_DATA_DATASET_H_
