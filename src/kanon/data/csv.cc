#include "kanon/data/csv.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "kanon/common/failpoint.h"
#include "kanon/common/text.h"

namespace kanon {

namespace {

// Splits one CSV line into trimmed fields.
std::vector<std::string> SplitFields(const std::string& line, char delimiter) {
  std::vector<std::string> fields = Split(line, delimiter);
  for (std::string& f : fields) {
    f = std::string(Trim(f));
  }
  return fields;
}

bool HasMissing(const std::vector<std::string>& fields,
                const CsvOptions& options) {
  if (!options.skip_rows_with_missing || options.missing_marker.empty()) {
    return false;
  }
  return std::find(fields.begin(), fields.end(), options.missing_marker) !=
         fields.end();
}

// Reads all non-empty, non-skipped data rows; validates/strips the header.
// `line_numbers` receives the 1-based input line of each returned row, so
// parse errors can point at the offending line of the file. Thin buffering
// wrapper over the streaming RowReader, kept for the whole-file readers.
Status ReadRows(std::istream& input, const CsvOptions& options,
                std::vector<std::string>* header,
                std::vector<std::vector<std::string>>* rows,
                std::vector<size_t>* line_numbers) {
  RowReader reader(input, options);
  std::vector<std::string> fields;
  while (true) {
    Result<bool> got = reader.Next(&fields);
    if (!got.ok()) return got.status();
    if (!got.value()) break;
    rows->push_back(std::move(fields));
    line_numbers->push_back(reader.line_number());
  }
  if (reader.header_seen()) *header = reader.header();
  return Status::OK();
}

}  // namespace

RowReader::RowReader(std::istream& input, CsvOptions options)
    : input_(input), options_(std::move(options)) {}

Result<bool> RowReader::Next(std::vector<std::string>* fields) {
  if (done_) return false;
  std::string line;
  while (std::getline(input_, line)) {
    ++line_number_;
    KANON_FAILPOINT("csv.read_row");
    if (line.size() > kMaxCsvLineLength) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number_) + " is " +
          std::to_string(line.size()) + " bytes long (limit " +
          std::to_string(kMaxCsvLineLength) + "); is this a text file?");
    }
    // Tolerate CRLF endings and a UTF-8 BOM on the first line.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_number_ == 1 && line.compare(0, 3, "\xEF\xBB\xBF") == 0) {
      line.erase(0, 3);
    }
    if (Trim(line).empty()) continue;
    std::vector<std::string> split = SplitFields(line, options_.delimiter);
    if (options_.has_header && !saw_header_) {
      header_ = std::move(split);
      saw_header_ = true;
      continue;
    }
    if (HasMissing(split, options_)) continue;
    *fields = std::move(split);
    row_line_number_ = line_number_;
    ++rows_read_;
    return true;
  }
  done_ = true;
  // getline() stops on EOF (fine, with or without a trailing newline) or on
  // a stream error — a truncated or unreadable input must not pass for a
  // short-but-valid file.
  if (input_.bad()) {
    return Status::IOError("stream error after line " +
                           std::to_string(line_number_) +
                           "; input truncated or unreadable");
  }
  if (options_.has_header && !saw_header_) {
    return Status::IOError("CSV input is empty; expected a header row");
  }
  return false;
}

Result<Schema> InferCsvSchema(std::istream& input,
                              const CsvOptions& options) {
  RowReader reader(input, options);
  std::vector<std::string> fields;
  std::vector<std::set<std::string>> distinct;
  size_t num_cols = 0;
  while (true) {
    KANON_ASSIGN_OR_RETURN(bool got, reader.Next(&fields));
    if (!got) break;
    if (reader.rows_read() == 1) {
      num_cols = fields.size();
      distinct.resize(num_cols);
    } else if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          "line " + std::to_string(reader.line_number()) + " has " +
          std::to_string(fields.size()) + " fields; expected " +
          std::to_string(num_cols));
    }
    for (size_t j = 0; j < num_cols; ++j) {
      distinct[j].insert(fields[j]);
    }
  }
  if (reader.rows_read() == 0) {
    return Status::InvalidArgument("CSV input has no data rows");
  }
  if (options.has_header && reader.header().size() != num_cols) {
    return Status::InvalidArgument("header/data column count mismatch");
  }
  std::vector<AttributeDomain> attributes;
  for (size_t j = 0; j < num_cols; ++j) {
    std::string name =
        options.has_header ? reader.header()[j] : "col" + std::to_string(j);
    KANON_ASSIGN_OR_RETURN(
        AttributeDomain domain,
        AttributeDomain::Create(
            std::move(name), std::vector<std::string>(distinct[j].begin(),
                                                      distinct[j].end())));
    attributes.push_back(std::move(domain));
  }
  return Schema::Create(std::move(attributes));
}

Result<Schema> InferCsvSchemaFile(const std::string& path,
                                  const CsvOptions& options) {
  KANON_FAILPOINT("csv.open");
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return InferCsvSchema(file, options);
}

namespace {

Status ValidateHeader(const Schema& schema,
                      const std::vector<std::string>& header) {
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema has " + std::to_string(schema.num_attributes()));
  }
  for (size_t j = 0; j < header.size(); ++j) {
    if (header[j] != schema.attribute(j).name()) {
      return Status::InvalidArgument("CSV column '" + header[j] +
                                     "' does not match schema attribute '" +
                                     schema.attribute(j).name() + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> ReadCsv(const Schema& schema, std::istream& input,
                        const CsvOptions& options) {
  // Thin streaming wrapper over RowReader: rows go straight into the coded
  // Dataset, so peak memory is the dataset plus one line of text.
  RowReader reader(input, options);
  Dataset dataset(schema);
  std::vector<std::string> fields;
  bool header_checked = !options.has_header;
  while (true) {
    KANON_ASSIGN_OR_RETURN(bool got, reader.Next(&fields));
    if (!header_checked && reader.header_seen()) {
      KANON_RETURN_NOT_OK(ValidateHeader(schema, reader.header()));
      header_checked = true;
    }
    if (!got) break;
    // AppendRowLabels rejects short/long rows and unknown labels, so a
    // truncated final line cannot slip in as a narrower record.
    Status s = dataset.AppendRowLabels(fields);
    if (!s.ok()) {
      return Status(s.code(), "line " + std::to_string(reader.line_number()) +
                                  ": " + s.message());
    }
  }
  return dataset;
}

Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path,
                            const CsvOptions& options) {
  KANON_FAILPOINT("csv.open");
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCsv(schema, file, options);
}

Result<Dataset> ReadCsvInferSchema(std::istream& input,
                                   const CsvOptions& options) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> line_numbers;
  KANON_RETURN_NOT_OK(ReadRows(input, options, &header, &rows, &line_numbers));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input has no data rows");
  }

  const size_t num_cols = rows[0].size();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != num_cols) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_numbers[i]) + " has " +
          std::to_string(rows[i].size()) + " fields; expected " +
          std::to_string(num_cols));
    }
  }
  if (options.has_header && header.size() != num_cols) {
    return Status::InvalidArgument("header/data column count mismatch");
  }

  std::vector<AttributeDomain> attributes;
  for (size_t j = 0; j < num_cols; ++j) {
    std::set<std::string> distinct;
    for (const auto& row : rows) {
      distinct.insert(row[j]);
    }
    std::string name =
        options.has_header ? header[j] : "col" + std::to_string(j);
    KANON_ASSIGN_OR_RETURN(
        AttributeDomain domain,
        AttributeDomain::Create(
            std::move(name),
            std::vector<std::string>(distinct.begin(), distinct.end())));
    attributes.push_back(std::move(domain));
  }
  KANON_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attributes)));

  Dataset dataset(std::move(schema));
  for (const auto& row : rows) {
    KANON_RETURN_NOT_OK(dataset.AppendRowLabels(row));
  }
  return dataset;
}

Result<Dataset> ReadCsvInferSchemaFile(const std::string& path,
                                       const CsvOptions& options) {
  KANON_FAILPOINT("csv.open");
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCsvInferSchema(file, options);
}

Status WriteCsv(const Dataset& dataset, std::ostream& output,
                char delimiter) {
  const Schema& schema = dataset.schema();
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j > 0) output << delimiter;
    output << schema.attribute(j).name();
  }
  if (dataset.has_class_column()) {
    output << delimiter << dataset.class_domain().name();
  }
  output << '\n';
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j > 0) output << delimiter;
      output << schema.attribute(j).label(dataset.at(i, j));
    }
    if (dataset.has_class_column()) {
      output << delimiter << dataset.class_domain().label(dataset.class_of(i));
    }
    output << '\n';
  }
  if (!output) {
    return Status::IOError("failed writing CSV output");
  }
  return Status::OK();
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path,
                    char delimiter) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCsv(dataset, file, delimiter);
}

}  // namespace kanon
