#ifndef KANON_DATA_ATTRIBUTE_H_
#define KANON_DATA_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/common/status.h"

namespace kanon {

/// Code of an attribute value within its domain (index into the label list).
using ValueCode = uint16_t;

/// A finite categorical attribute domain A_j = {a_{j,1}, ..., a_{j,m_j}}
/// (Section III of the paper). Values are stored as labels and addressed by
/// dense codes 0..size()-1. Numeric attributes (e.g. age) are modeled as
/// categorical domains whose labels are the number literals.
class AttributeDomain {
 public:
  /// Creates a domain. Labels must be non-empty and distinct.
  static Result<AttributeDomain> Create(std::string name,
                                        std::vector<std::string> labels);

  /// Convenience: integer domain {lo, lo+1, ..., hi} with decimal labels.
  static AttributeDomain IntegerRange(std::string name, int lo, int hi);

  const std::string& name() const { return name_; }
  size_t size() const { return labels_.size(); }

  const std::string& label(ValueCode code) const;
  const std::vector<std::string>& labels() const { return labels_; }

  /// Looks up the code of a label.
  Result<ValueCode> CodeOf(const std::string& label) const;
  bool HasLabel(const std::string& label) const;

 private:
  AttributeDomain(std::string name, std::vector<std::string> labels);

  std::string name_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, ValueCode> code_of_;
};

}  // namespace kanon

#endif  // KANON_DATA_ATTRIBUTE_H_
