#ifndef KANON_DATA_SCHEMA_H_
#define KANON_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/attribute.h"

namespace kanon {

/// The public (quasi-identifier) attributes A_1, ..., A_r of a table.
class Schema {
 public:
  /// Empty placeholder schema (no attributes) — for default-constructed
  /// holders that are assigned a real schema before use. Create() never
  /// returns one.
  Schema() = default;

  /// Attribute names must be distinct and there must be at least one.
  static Result<Schema> Create(std::vector<AttributeDomain> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeDomain& attribute(size_t index) const;
  const std::vector<AttributeDomain>& attributes() const {
    return attributes_;
  }

  /// Index of the attribute with this name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if both schemas have the same attribute names and value labels
  /// in the same order.
  bool Equals(const Schema& other) const;

 private:
  explicit Schema(std::vector<AttributeDomain> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<AttributeDomain> attributes_;
};

}  // namespace kanon

#endif  // KANON_DATA_SCHEMA_H_
