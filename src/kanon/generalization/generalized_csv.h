#ifndef KANON_GENERALIZATION_GENERALIZED_CSV_H_
#define KANON_GENERALIZATION_GENERALIZED_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "kanon/common/result.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {

/// Serialization of generalized tables as CSV, the format a data owner
/// would actually publish:
///   - a header with the attribute names,
///   - one row per generalized record,
///   - a cell is a plain value label ("34"), a set of labels
///     ("{30;31;32}" — ';' separates members so ',' stays the column
///     delimiter), or "*" for the full domain.
///
/// Reading requires the same GeneralizationScheme: every parsed subset must
/// be permissible in it (the round trip is exact).
Status WriteGeneralizedCsv(const GeneralizedTable& table,
                           std::ostream& output);
Status WriteGeneralizedCsvFile(const GeneralizedTable& table,
                               const std::string& path);

Result<GeneralizedTable> ReadGeneralizedCsv(
    std::shared_ptr<const GeneralizationScheme> scheme, std::istream& input);
Result<GeneralizedTable> ReadGeneralizedCsvFile(
    std::shared_ptr<const GeneralizationScheme> scheme,
    const std::string& path);

}  // namespace kanon

#endif  // KANON_GENERALIZATION_GENERALIZED_CSV_H_
