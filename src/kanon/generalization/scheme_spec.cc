#include "kanon/generalization/scheme_spec.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "kanon/common/failpoint.h"
#include "kanon/common/text.h"

namespace kanon {

namespace {

// Longest accepted spec line; anything beyond this is a binary or corrupt
// file, not a hierarchy description.
constexpr size_t kMaxSpecLineLength = 1 << 20;  // 1 MiB.

// Whitespace tokenizer (labels must not contain spaces).
std::vector<std::string> Tokens(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) {
    out.push_back(token);
  }
  return out;
}

Status ParseError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("spec line " + std::to_string(line_number) +
                                 ": " + message);
}

}  // namespace

Result<GeneralizationScheme> ParseSchemeSpec(const Schema& schema,
                                             std::istream& input) {
  // Collected groups / interval widths per attribute index.
  std::vector<std::vector<std::vector<ValueCode>>> groups(
      schema.num_attributes());
  std::vector<std::vector<int>> intervals(schema.num_attributes());

  constexpr size_t kNoBlock = SIZE_MAX;
  size_t current = kNoBlock;  // Attribute block being parsed.
  std::string line;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    KANON_FAILPOINT("spec.line");
    if (line.size() > kMaxSpecLineLength) {
      return ParseError(line_number,
                        "line is " + std::to_string(line.size()) +
                            " bytes long (limit " +
                            std::to_string(kMaxSpecLineLength) +
                            "); is this a text file?");
    }
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "attribute") {
      if (current != kNoBlock) {
        return ParseError(line_number,
                          "nested 'attribute' block (missing '}'?)");
      }
      if (tokens.size() != 3 || tokens[2] != "{") {
        return ParseError(line_number, "expected: attribute <name> {");
      }
      Result<size_t> index = schema.IndexOf(tokens[1]);
      if (!index.ok()) {
        return ParseError(line_number, index.status().message());
      }
      current = index.value();
      continue;
    }
    if (tokens[0] == "}") {
      if (current == kNoBlock) {
        return ParseError(line_number, "'}' outside an attribute block");
      }
      if (tokens.size() != 1) {
        return ParseError(line_number, "unexpected tokens after '}'");
      }
      current = kNoBlock;
      continue;
    }
    if (current == kNoBlock) {
      return ParseError(line_number,
                        "directive outside an attribute block: " + tokens[0]);
    }
    const AttributeDomain& domain = schema.attribute(current);

    if (tokens[0] == "group") {
      if (tokens.size() < 2) {
        return ParseError(line_number, "empty group");
      }
      std::vector<ValueCode> codes;
      for (size_t t = 1; t < tokens.size(); ++t) {
        Result<ValueCode> code = domain.CodeOf(tokens[t]);
        if (!code.ok()) {
          return ParseError(line_number, code.status().message());
        }
        codes.push_back(code.value());
      }
      groups[current].push_back(std::move(codes));
    } else if (tokens[0] == "intervals") {
      if (tokens.size() < 2) {
        return ParseError(line_number, "intervals needs at least one width");
      }
      for (size_t t = 1; t < tokens.size(); ++t) {
        char* end = nullptr;
        errno = 0;
        const long width = std::strtol(tokens[t].c_str(), &end, 10);
        // errno catches out-of-range values strtol clamps to LONG_MAX, and
        // the INT_MAX bound keeps the narrowing cast below exact.
        if (end == nullptr || *end != '\0' || errno == ERANGE || width < 1 ||
            width > std::numeric_limits<int>::max()) {
          return ParseError(line_number,
                            "bad interval width '" + tokens[t] + "'");
        }
        intervals[current].push_back(static_cast<int>(width));
      }
    } else if (tokens[0] == "suppression-only") {
      if (tokens.size() != 1) {
        return ParseError(line_number, "unexpected tokens after directive");
      }
      // Nothing to record: suppression-only is the default.
    } else {
      return ParseError(line_number, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (input.bad()) {
    return Status::IOError("stream error after spec line " +
                           std::to_string(line_number) +
                           "; input truncated or unreadable");
  }
  if (current != kNoBlock) {
    return Status::InvalidArgument("spec ends inside an attribute block");
  }

  std::vector<Hierarchy> hierarchies;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const size_t domain_size = schema.attribute(j).size();
    std::vector<ValueSet> subsets;
    for (const auto& group : groups[j]) {
      subsets.push_back(ValueSet::Of(domain_size, group));
    }
    if (!intervals[j].empty()) {
      // Reuse the intervals builder for validation, then merge its sets.
      Result<Hierarchy> bands = Hierarchy::Intervals(domain_size, intervals[j]);
      if (!bands.ok()) {
        return Status(bands.status().code(),
                      "attribute '" + schema.attribute(j).name() + "': " +
                          bands.status().message());
      }
      for (SetId s = 0; s < bands->num_sets(); ++s) {
        subsets.push_back(bands->set(s));
      }
    }
    Result<Hierarchy> h = Hierarchy::Build(domain_size, std::move(subsets));
    if (!h.ok()) {
      return Status(h.status().code(),
                    "attribute '" + schema.attribute(j).name() + "': " +
                        h.status().message());
    }
    hierarchies.push_back(std::move(h).value());
  }
  return GeneralizationScheme::Create(schema, std::move(hierarchies));
}

Result<GeneralizationScheme> ParseSchemeSpecFile(const Schema& schema,
                                                 const std::string& path) {
  KANON_FAILPOINT("spec.open");
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ParseSchemeSpec(schema, file);
}

std::string FormatSchemeSpec(const GeneralizationScheme& scheme) {
  std::string out;
  const Schema& schema = scheme.schema();
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const AttributeDomain& domain = schema.attribute(j);
    const Hierarchy& h = scheme.hierarchy(j);
    out += "attribute " + domain.name() + " {\n";
    for (SetId s = 0; s < h.num_sets(); ++s) {
      const size_t size = h.SizeOf(s);
      if (size <= 1 || size >= domain.size()) continue;  // Implicit sets.
      out += "  group";
      for (ValueCode v : h.set(s).Values()) {
        out += " " + domain.label(v);
      }
      out += "\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace kanon
