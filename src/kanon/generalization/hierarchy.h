#ifndef KANON_GENERALIZATION_HIERARCHY_H_
#define KANON_GENERALIZATION_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/attribute.h"
#include "kanon/generalization/value_set.h"

namespace kanon {

/// Id of a permissible generalized subset within a Hierarchy.
using SetId = uint16_t;

/// The collection of permissible generalized subsets A_j ⊆ P(A_j) for one
/// attribute (Definition 3.1), with precomputed join tables.
///
/// Following the paper (Section VI), every collection implicitly contains
/// all singletons {a} (the "not generalized" entries) and the full domain
/// A_j (total suppression); Build adds them when absent.
///
/// The collection must be *join-consistent*: every pair of subsets must have
/// a unique minimal permissible superset of their union, so that cluster
/// closures (the minimal generalized record consistent with a set of
/// records) are well defined. Laminar families — hierarchy trees, which is
/// what the paper uses throughout — always are; Build verifies the property
/// and fails otherwise.
class Hierarchy {
 public:
  /// Builds a hierarchy over a domain of `domain_size` values from the given
  /// subsets (duplicates are dropped; singletons and the full set added).
  /// The O(num²) join-table precomputation spreads its rows over
  /// `num_threads` threads (<= 0: hardware concurrency; the table is
  /// byte-identical at every thread count).
  static Result<Hierarchy> Build(size_t domain_size,
                                 std::vector<ValueSet> subsets,
                                 int num_threads = 0);

  /// Builds from value-code groups: each group becomes one subset.
  static Result<Hierarchy> FromGroups(
      size_t domain_size, const std::vector<std::vector<ValueCode>>& groups);

  /// Builds from label groups resolved against `domain`.
  static Result<Hierarchy> FromLabelGroups(
      const AttributeDomain& domain,
      const std::vector<std::vector<std::string>>& groups);

  /// "Trivial" hierarchy: only singletons and the full set (the
  /// suppression-only model of Meyerson and Williams).
  static Result<Hierarchy> SuppressionOnly(size_t domain_size);

  /// For an integer-like domain of consecutive values: nested aligned bands
  /// of the given widths (each width must divide the next; e.g. {5,10,20}
  /// yields 5-wide, 10-wide and 20-wide ranges). Always laminar.
  static Result<Hierarchy> Intervals(size_t domain_size,
                                     const std::vector<int>& widths);

  size_t domain_size() const { return domain_size_; }
  size_t num_sets() const { return sets_.size(); }

  const ValueSet& set(SetId id) const;
  size_t SizeOf(SetId id) const;
  bool Contains(SetId id, ValueCode value) const;

  /// The singleton subset {value}.
  SetId LeafOf(ValueCode value) const;

  /// The full domain.
  SetId FullSetId() const { return full_set_id_; }

  /// The minimal permissible subset containing set(a) ∪ set(b).
  /// This is the lattice join used to compute closures.
  SetId Join(SetId a, SetId b) const {
    KANON_DCHECK(a < num_sets() && b < num_sets());
    return join_[static_cast<size_t>(a) * sets_.size() + b];
  }

  /// Join of a subset with a single value: Join(a, LeafOf(value)).
  SetId JoinValue(SetId a, ValueCode value) const {
    return Join(a, LeafOf(value));
  }

  /// Raw dense join table (num_sets() x num_sets(), row-major) for the hot
  /// kernels: join_table()[a * num_sets() + b] == Join(a, b).
  const SetId* join_table() const { return join_.data(); }

  /// Raw value -> singleton-id table (domain_size() entries) for the hot
  /// kernels: leaf_table()[v] == LeafOf(v).
  const SetId* leaf_table() const { return leaf_of_value_.data(); }

  /// Id of a subset equal to `set`, if permissible.
  Result<SetId> IdOf(const ValueSet& set) const;

  /// True iff every pair of subsets is nested or disjoint.
  bool IsLaminar() const;

 private:
  Hierarchy() = default;

  size_t domain_size_ = 0;
  std::vector<ValueSet> sets_;        // Sorted by (size, values); id = index.
  std::vector<uint32_t> set_sizes_;   // Cached cardinalities.
  std::vector<SetId> leaf_of_value_;  // value -> singleton id.
  std::vector<SetId> join_;           // Dense num_sets x num_sets table.
  SetId full_set_id_ = 0;
};

}  // namespace kanon

#endif  // KANON_GENERALIZATION_HIERARCHY_H_
