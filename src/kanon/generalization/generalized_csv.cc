#include "kanon/generalization/generalized_csv.h"

#include <fstream>
#include <sstream>

#include "kanon/common/text.h"

namespace kanon {

namespace {

// Renders one generalized cell: label, "{a;b;c}", or "*".
std::string CellText(const Hierarchy& h, const AttributeDomain& domain,
                     SetId set) {
  const size_t size = h.SizeOf(set);
  if (size == 1) {
    return domain.label(h.set(set).Values()[0]);
  }
  if (size == domain.size()) {
    return "*";
  }
  std::string out = "{";
  bool first = true;
  for (ValueCode v : h.set(set).Values()) {
    if (!first) out += ";";
    out += domain.label(v);
    first = false;
  }
  out += "}";
  return out;
}

Result<SetId> ParseCell(const Hierarchy& h, const AttributeDomain& domain,
                        const std::string& text) {
  if (text == "*") {
    return h.FullSetId();
  }
  if (!text.empty() && text.front() == '{' && text.back() == '}') {
    ValueSet set(domain.size());
    for (const std::string& part :
         Split(text.substr(1, text.size() - 2), ';')) {
      KANON_ASSIGN_OR_RETURN(ValueCode code,
                             domain.CodeOf(std::string(Trim(part))));
      set.Insert(code);
    }
    Result<SetId> id = h.IdOf(set);
    if (!id.ok()) {
      return Status::InvalidArgument("subset " + text +
                                     " is not permissible for attribute '" +
                                     domain.name() + "'");
    }
    return id;
  }
  KANON_ASSIGN_OR_RETURN(ValueCode code, domain.CodeOf(text));
  return h.LeafOf(code);
}

}  // namespace

Status WriteGeneralizedCsv(const GeneralizedTable& table,
                           std::ostream& output) {
  const GeneralizationScheme& scheme = table.scheme();
  const Schema& schema = scheme.schema();
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j > 0) output << ',';
    output << schema.attribute(j).name();
  }
  output << '\n';
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j > 0) output << ',';
      output << CellText(scheme.hierarchy(j), schema.attribute(j),
                         table.at(i, j));
    }
    output << '\n';
  }
  if (!output) {
    return Status::IOError("failed writing generalized CSV output");
  }
  return Status::OK();
}

Status WriteGeneralizedCsvFile(const GeneralizedTable& table,
                               const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteGeneralizedCsv(table, file);
}

Result<GeneralizedTable> ReadGeneralizedCsv(
    std::shared_ptr<const GeneralizationScheme> scheme, std::istream& input) {
  if (scheme == nullptr) {
    return Status::InvalidArgument("scheme must not be null");
  }
  const Schema& schema = scheme->schema();
  GeneralizedTable table(scheme);

  std::string line;
  bool saw_header = false;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    for (std::string& f : fields) f = std::string(Trim(f));
    if (!saw_header) {
      if (fields.size() != schema.num_attributes()) {
        return Status::InvalidArgument("header has " +
                                       std::to_string(fields.size()) +
                                       " columns; expected " +
                                       std::to_string(schema.num_attributes()));
      }
      for (size_t j = 0; j < fields.size(); ++j) {
        if (fields[j] != schema.attribute(j).name()) {
          return Status::InvalidArgument(
              "header column '" + fields[j] + "' does not match attribute '" +
              schema.attribute(j).name() + "'");
        }
      }
      saw_header = true;
      continue;
    }
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     " has " + std::to_string(fields.size()) +
                                     " fields; expected " +
                                     std::to_string(schema.num_attributes()));
    }
    GeneralizedRecord record(fields.size());
    for (size_t j = 0; j < fields.size(); ++j) {
      Result<SetId> id =
          ParseCell(scheme->hierarchy(j), schema.attribute(j), fields[j]);
      if (!id.ok()) {
        return Status(id.status().code(), "line " +
                                              std::to_string(line_number) +
                                              ": " + id.status().message());
      }
      record[j] = id.value();
    }
    table.AppendRecord(record);
  }
  if (!saw_header) {
    return Status::IOError("generalized CSV input is empty");
  }
  return table;
}

Result<GeneralizedTable> ReadGeneralizedCsvFile(
    std::shared_ptr<const GeneralizationScheme> scheme,
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadGeneralizedCsv(std::move(scheme), file);
}

}  // namespace kanon
