#include "kanon/generalization/value_set.h"

#include <bit>

namespace kanon {

ValueSet ValueSet::Of(size_t universe_size,
                      const std::vector<ValueCode>& values) {
  ValueSet set(universe_size);
  for (ValueCode v : values) {
    KANON_CHECK(v < universe_size, "value out of universe");
    set.Insert(v);
  }
  return set;
}

ValueSet ValueSet::All(size_t universe_size) {
  ValueSet set(universe_size);
  for (size_t v = 0; v < universe_size; ++v) {
    set.Insert(static_cast<ValueCode>(v));
  }
  return set;
}

ValueSet ValueSet::Singleton(size_t universe_size, ValueCode value) {
  ValueSet set(universe_size);
  set.Insert(value);
  return set;
}

size_t ValueSet::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) {
    count += static_cast<size_t>(std::popcount(w));
  }
  return count;
}

ValueSet ValueSet::Union(const ValueSet& other) const {
  KANON_CHECK(universe_size_ == other.universe_size_,
              "ValueSet universe mismatch");
  ValueSet out(universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] | other.words_[i];
  }
  return out;
}

ValueSet ValueSet::Intersect(const ValueSet& other) const {
  KANON_CHECK(universe_size_ == other.universe_size_,
              "ValueSet universe mismatch");
  ValueSet out(universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

bool ValueSet::IsSubsetOf(const ValueSet& other) const {
  KANON_CHECK(universe_size_ == other.universe_size_,
              "ValueSet universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool ValueSet::DisjointFrom(const ValueSet& other) const {
  KANON_CHECK(universe_size_ == other.universe_size_,
              "ValueSet universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

bool ValueSet::operator<(const ValueSet& other) const {
  const size_t a = Count();
  const size_t b = other.Count();
  if (a != b) return a < b;
  const std::vector<ValueCode> va = Values();
  const std::vector<ValueCode> vb = other.Values();
  return va < vb;
}

std::vector<ValueCode> ValueSet::Values() const {
  std::vector<ValueCode> out;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      int bit = std::countr_zero(w);
      out.push_back(static_cast<ValueCode>(i * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

std::string ValueSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (ValueCode v : Values()) {
    if (!first) out += ",";
    out += std::to_string(v);
    first = false;
  }
  out += "}";
  return out;
}

std::string ValueSet::ToString(const AttributeDomain& domain) const {
  const std::vector<ValueCode> values = Values();
  if (values.size() == 1) {
    return domain.label(values[0]);
  }
  if (values.size() == domain.size()) {
    return "*";
  }
  std::string out = "{";
  bool first = true;
  for (ValueCode v : values) {
    if (!first) out += ",";
    out += domain.label(v);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace kanon
