#ifndef KANON_GENERALIZATION_VALUE_SET_H_
#define KANON_GENERALIZATION_VALUE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/common/check.h"
#include "kanon/data/attribute.h"

namespace kanon {

/// A subset B_j ⊆ A_j of an attribute domain, represented as a bitset.
/// Generalized table entries are permissible ValueSets (Definition 3.1).
class ValueSet {
 public:
  ValueSet() : universe_size_(0) {}

  /// Empty set over a domain of `universe_size` values.
  explicit ValueSet(size_t universe_size)
      : universe_size_(universe_size), words_((universe_size + 63) / 64, 0) {}

  /// Set containing exactly `values`.
  static ValueSet Of(size_t universe_size,
                     const std::vector<ValueCode>& values);

  /// The full domain A_j.
  static ValueSet All(size_t universe_size);

  /// Singleton {value}.
  static ValueSet Singleton(size_t universe_size, ValueCode value);

  size_t universe_size() const { return universe_size_; }

  void Insert(ValueCode value) {
    KANON_DCHECK(value < universe_size_);
    words_[value >> 6] |= uint64_t{1} << (value & 63);
  }

  bool Contains(ValueCode value) const {
    KANON_DCHECK(value < universe_size_);
    return (words_[value >> 6] >> (value & 63)) & 1;
  }

  /// Number of values in the set.
  size_t Count() const;

  bool Empty() const { return Count() == 0; }

  /// Set union / intersection (both operands must share a universe).
  ValueSet Union(const ValueSet& other) const;
  ValueSet Intersect(const ValueSet& other) const;

  /// True iff this ⊆ other.
  bool IsSubsetOf(const ValueSet& other) const;

  /// True iff the intersection is empty.
  bool DisjointFrom(const ValueSet& other) const;

  bool operator==(const ValueSet& other) const {
    return universe_size_ == other.universe_size_ && words_ == other.words_;
  }
  bool operator!=(const ValueSet& other) const { return !(*this == other); }

  /// Deterministic ordering: by cardinality, then lexicographically by
  /// member values. Used to assign stable ids in Hierarchy.
  bool operator<(const ValueSet& other) const;

  /// Member values in increasing order.
  std::vector<ValueCode> Values() const;

  /// "{a,b,c}" using the codes, or the labels when a domain is given.
  std::string ToString() const;
  std::string ToString(const AttributeDomain& domain) const;

 private:
  size_t universe_size_;
  std::vector<uint64_t> words_;
};

}  // namespace kanon

#endif  // KANON_GENERALIZATION_VALUE_SET_H_
