#include "kanon/generalization/scheme.h"

#include "kanon/common/check.h"

namespace kanon {

Result<GeneralizationScheme> GeneralizationScheme::Create(
    Schema schema, std::vector<Hierarchy> hierarchies) {
  if (hierarchies.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "scheme needs one hierarchy per attribute: got " +
        std::to_string(hierarchies.size()) + " for " +
        std::to_string(schema.num_attributes()) + " attributes");
  }
  for (size_t j = 0; j < hierarchies.size(); ++j) {
    if (hierarchies[j].domain_size() != schema.attribute(j).size()) {
      return Status::InvalidArgument(
          "hierarchy domain size mismatch for attribute '" +
          schema.attribute(j).name() + "'");
    }
  }
  return GeneralizationScheme(std::move(schema), std::move(hierarchies));
}

Result<GeneralizationScheme> GeneralizationScheme::SuppressionOnly(
    Schema schema) {
  std::vector<Hierarchy> hierarchies;
  hierarchies.reserve(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    KANON_ASSIGN_OR_RETURN(
        Hierarchy h, Hierarchy::SuppressionOnly(schema.attribute(j).size()));
    hierarchies.push_back(std::move(h));
  }
  return Create(std::move(schema), std::move(hierarchies));
}

const Hierarchy& GeneralizationScheme::hierarchy(size_t attr) const {
  KANON_CHECK(attr < hierarchies_.size(), "attribute index out of range");
  return hierarchies_[attr];
}

GeneralizedRecord GeneralizationScheme::Identity(RowView record) const {
  KANON_CHECK(record.size() == hierarchies_.size(), "record arity mismatch");
  GeneralizedRecord out(record.size());
  for (size_t j = 0; j < record.size(); ++j) {
    out[j] = hierarchies_[j].LeafOf(record[j]);
  }
  return out;
}

GeneralizedRecord GeneralizationScheme::Suppressed() const {
  GeneralizedRecord out(hierarchies_.size());
  for (size_t j = 0; j < hierarchies_.size(); ++j) {
    out[j] = hierarchies_[j].FullSetId();
  }
  return out;
}

GeneralizedRecord GeneralizationScheme::JoinRecords(
    const GeneralizedRecord& a, const GeneralizedRecord& b) const {
  KANON_CHECK(a.size() == hierarchies_.size() && b.size() == a.size(),
              "record arity mismatch");
  GeneralizedRecord out(a.size());
  for (size_t j = 0; j < a.size(); ++j) {
    out[j] = hierarchies_[j].Join(a[j], b[j]);
  }
  return out;
}

GeneralizedRecord GeneralizationScheme::JoinWithOriginal(
    RowView record, const GeneralizedRecord& gen) const {
  KANON_CHECK(record.size() == hierarchies_.size() &&
                  gen.size() == record.size(),
              "record arity mismatch");
  GeneralizedRecord out(gen.size());
  for (size_t j = 0; j < gen.size(); ++j) {
    out[j] = hierarchies_[j].JoinValue(gen[j], record[j]);
  }
  return out;
}

GeneralizedRecord GeneralizationScheme::ClosureOfRows(
    const Dataset& dataset, const std::vector<uint32_t>& rows) const {
  KANON_CHECK(!rows.empty(), "closure of an empty cluster is undefined");
  KANON_CHECK(dataset.num_attributes() == hierarchies_.size(),
              "dataset arity mismatch");
  GeneralizedRecord out(hierarchies_.size());
  const size_t r = hierarchies_.size();
  for (size_t j = 0; j < r; ++j) {
    // Raw leaf/join tables: this fold runs once per cluster mutation in
    // every pipeline, so the per-step accessor checks add up.
    const Hierarchy& h = hierarchies_[j];
    const SetId* leaf = h.leaf_table();
    const SetId* join = h.join_table();
    const size_t num_sets = h.num_sets();
    SetId acc = leaf[dataset.at(rows[0], j)];
    for (size_t i = 1; i < rows.size(); ++i) {
      acc = join[static_cast<size_t>(acc) * num_sets +
                 leaf[dataset.at(rows[i], j)]];
    }
    out[j] = acc;
  }
  return out;
}

bool GeneralizationScheme::Consistent(RowView record,
                                      const GeneralizedRecord& gen) const {
  KANON_CHECK(record.size() == hierarchies_.size() &&
                  gen.size() == record.size(),
              "record arity mismatch");
  for (size_t j = 0; j < record.size(); ++j) {
    if (!hierarchies_[j].Contains(gen[j], record[j])) return false;
  }
  return true;
}

bool GeneralizationScheme::ConsistentRow(const Dataset& dataset, size_t row,
                                         const GeneralizedRecord& gen) const {
  KANON_DCHECK(gen.size() == hierarchies_.size());
  for (size_t j = 0; j < gen.size(); ++j) {
    if (!hierarchies_[j].Contains(gen[j], dataset.at(row, j))) return false;
  }
  return true;
}

bool GeneralizationScheme::Generalizes(const GeneralizedRecord& a,
                                       const GeneralizedRecord& b) const {
  KANON_CHECK(a.size() == hierarchies_.size() && b.size() == a.size(),
              "record arity mismatch");
  for (size_t j = 0; j < a.size(); ++j) {
    if (!hierarchies_[j].set(b[j]).IsSubsetOf(hierarchies_[j].set(a[j]))) {
      return false;
    }
  }
  return true;
}

std::string GeneralizationScheme::Format(const GeneralizedRecord& gen) const {
  KANON_CHECK(gen.size() == hierarchies_.size(), "record arity mismatch");
  std::string out;
  for (size_t j = 0; j < gen.size(); ++j) {
    if (j > 0) out += " | ";
    out += hierarchies_[j].set(gen[j]).ToString(schema_.attribute(j));
  }
  return out;
}

}  // namespace kanon
