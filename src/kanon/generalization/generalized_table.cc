#include "kanon/generalization/generalized_table.h"

namespace kanon {

GeneralizedTable GeneralizedTable::Identity(
    std::shared_ptr<const GeneralizationScheme> scheme,
    const Dataset& dataset) {
  KANON_CHECK(scheme != nullptr, "scheme must not be null");
  KANON_CHECK(dataset.num_attributes() == scheme->num_attributes(),
              "dataset arity mismatch");
  GeneralizedTable table(std::move(scheme));
  const size_t r = dataset.num_attributes();
  table.cells_.resize(dataset.num_rows() * r);
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    for (size_t j = 0; j < r; ++j) {
      table.cells_[i * r + j] =
          table.scheme_->hierarchy(j).LeafOf(dataset.at(i, j));
    }
  }
  return table;
}

GeneralizedRecord GeneralizedTable::record(size_t row) const {
  KANON_CHECK(row < num_rows(), "row index out of range");
  const size_t r = num_attributes();
  return GeneralizedRecord(cells_.begin() + row * r,
                           cells_.begin() + (row + 1) * r);
}

void GeneralizedTable::SetRecord(size_t row, const GeneralizedRecord& record) {
  KANON_CHECK(row < num_rows(), "row index out of range");
  KANON_CHECK(record.size() == num_attributes(), "record arity mismatch");
  const size_t r = num_attributes();
  for (size_t j = 0; j < r; ++j) {
    KANON_DCHECK(record[j] < scheme_->hierarchy(j).num_sets());
    cells_[row * r + j] = record[j];
  }
}

void GeneralizedTable::AppendRecord(const GeneralizedRecord& record) {
  KANON_CHECK(record.size() == num_attributes(), "record arity mismatch");
  for (size_t j = 0; j < record.size(); ++j) {
    KANON_CHECK(record[j] < scheme_->hierarchy(j).num_sets(),
                "set id out of range");
  }
  cells_.insert(cells_.end(), record.begin(), record.end());
}

void GeneralizedTable::GeneralizeToCover(size_t row, RowView record) {
  KANON_CHECK(row < num_rows(), "row index out of range");
  KANON_CHECK(record.size() == num_attributes(), "record arity mismatch");
  const size_t r = num_attributes();
  for (size_t j = 0; j < r; ++j) {
    cells_[row * r + j] =
        scheme_->hierarchy(j).JoinValue(cells_[row * r + j], record[j]);
  }
}

bool GeneralizedTable::RowwiseGeneralizes(const GeneralizedTable& other) const {
  if (num_rows() != other.num_rows() ||
      num_attributes() != other.num_attributes()) {
    return false;
  }
  for (size_t i = 0; i < num_rows(); ++i) {
    for (size_t j = 0; j < num_attributes(); ++j) {
      const Hierarchy& h = scheme_->hierarchy(j);
      if (!h.set(other.at(i, j)).IsSubsetOf(h.set(at(i, j)))) {
        return false;
      }
    }
  }
  return true;
}

std::string GeneralizedTable::ToString() const {
  std::string out;
  for (size_t i = 0; i < num_rows(); ++i) {
    out += scheme_->Format(record(i));
    out += '\n';
  }
  return out;
}

}  // namespace kanon
