#ifndef KANON_GENERALIZATION_GENERALIZED_TABLE_H_
#define KANON_GENERALIZATION_GENERALIZED_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/scheme.h"

namespace kanon {

/// A generalization g(D) = {R̄_1, ..., R̄_n} of a table (Definition 3.2):
/// one generalized record per original row, under local recoding (each row
/// may be generalized differently).
class GeneralizedTable {
 public:
  /// Empty table over a scheme.
  explicit GeneralizedTable(std::shared_ptr<const GeneralizationScheme> scheme)
      : scheme_(std::move(scheme)) {
    KANON_CHECK(scheme_ != nullptr, "scheme must not be null");
  }

  /// The identity generalization of `dataset`: R̄_i = R_i with every value
  /// mapped to its singleton subset.
  static GeneralizedTable Identity(
      std::shared_ptr<const GeneralizationScheme> scheme,
      const Dataset& dataset);

  const GeneralizationScheme& scheme() const { return *scheme_; }
  std::shared_ptr<const GeneralizationScheme> scheme_ptr() const {
    return scheme_;
  }

  size_t num_rows() const {
    const size_t r = scheme_->num_attributes();
    return r == 0 ? 0 : cells_.size() / r;
  }
  size_t num_attributes() const { return scheme_->num_attributes(); }

  SetId at(size_t row, size_t attr) const {
    KANON_DCHECK(row < num_rows() && attr < num_attributes());
    return cells_[row * num_attributes() + attr];
  }

  /// Copies out row `row` (R̄_row).
  GeneralizedRecord record(size_t row) const;

  /// Overwrites row `row`.
  void SetRecord(size_t row, const GeneralizedRecord& record);

  /// Appends a row.
  void AppendRecord(const GeneralizedRecord& record);

  /// Further generalizes row `row` to also cover the original `record`
  /// (R̄_row := record + R̄_row). Takes a view so dataset rows pass through
  /// without a copy.
  void GeneralizeToCover(size_t row, RowView record);

  /// True iff dataset row `original_row` is consistent with generalized row
  /// `generalized_row` (Definition 3.3).
  bool ConsistentPair(const Dataset& dataset, size_t original_row,
                      size_t generalized_row) const {
    // Hot path of the consistency-graph construction; inlined deliberately.
    const size_t r = num_attributes();
    const size_t base = generalized_row * r;
    for (size_t j = 0; j < r; ++j) {
      if (!scheme_->hierarchy(j).Contains(cells_[base + j],
                                          dataset.at(original_row, j))) {
        return false;
      }
    }
    return true;
  }

  /// True iff every row of this table generalizes the matching row of
  /// `other` (used to assert that an anonymizer only coarsens a table).
  bool RowwiseGeneralizes(const GeneralizedTable& other) const;

  /// Cell-wise equality (set ids compared row-major). This is the
  /// determinism contract's notion of "byte-identical": two runs agree iff
  /// they publish exactly the same subset for every cell.
  friend bool operator==(const GeneralizedTable& a,
                         const GeneralizedTable& b) {
    return a.cells_ == b.cells_;
  }
  friend bool operator!=(const GeneralizedTable& a,
                         const GeneralizedTable& b) {
    return !(a == b);
  }

  /// Renders the table with labels, one formatted record per line.
  std::string ToString() const;

 private:
  std::shared_ptr<const GeneralizationScheme> scheme_;
  std::vector<SetId> cells_;  // Row-major, n x r.
};

}  // namespace kanon

#endif  // KANON_GENERALIZATION_GENERALIZED_TABLE_H_
