#ifndef KANON_GENERALIZATION_SCHEME_SPEC_H_
#define KANON_GENERALIZATION_SCHEME_SPEC_H_

#include <iosfwd>
#include <string>

#include "kanon/common/result.h"
#include "kanon/generalization/scheme.h"

namespace kanon {

/// Parses a plain-text generalization specification against a schema, the
/// format used by the kanon_cli tool:
///
///   # lines starting with '#' are comments
///   attribute age {
///     intervals 5 10 20        # nested aligned bands (integer domains)
///   }
///   attribute education {
///     group Preschool 1st-4th 5th-6th
///     group Masters Doctorate
///   }
///   attribute sex {
///     suppression-only         # optional: this is also the default
///   }
///
/// Every schema attribute not mentioned gets the suppression-only
/// hierarchy (singletons + full domain). Value labels are
/// whitespace-separated tokens, so labels must not contain spaces.
Result<GeneralizationScheme> ParseSchemeSpec(const Schema& schema,
                                             std::istream& input);
Result<GeneralizationScheme> ParseSchemeSpecFile(const Schema& schema,
                                                 const std::string& path);

/// Renders a scheme back into the spec format (groups listed per
/// attribute; singletons and the full set are implicit).
std::string FormatSchemeSpec(const GeneralizationScheme& scheme);

}  // namespace kanon

#endif  // KANON_GENERALIZATION_SCHEME_SPEC_H_
