#include "kanon/generalization/hierarchy.h"

#include <algorithm>
#include <limits>
#include <set>

#include "kanon/common/check.h"
#include "kanon/common/parallel.h"

namespace kanon {

Result<Hierarchy> Hierarchy::Build(size_t domain_size,
                                   std::vector<ValueSet> subsets,
                                   int num_threads) {
  if (domain_size == 0) {
    return Status::InvalidArgument("hierarchy domain must be non-empty");
  }
  for (const ValueSet& s : subsets) {
    if (s.universe_size() != domain_size) {
      return Status::InvalidArgument(
          "subset universe size does not match the domain");
    }
    if (s.Empty()) {
      return Status::InvalidArgument("empty subsets are not permissible");
    }
  }

  // Deduplicate and complete with singletons and the full set, keeping a
  // deterministic (size, values) order so that set ids are stable.
  std::set<ValueSet> unique(subsets.begin(), subsets.end());
  for (size_t v = 0; v < domain_size; ++v) {
    unique.insert(ValueSet::Singleton(domain_size, static_cast<ValueCode>(v)));
  }
  unique.insert(ValueSet::All(domain_size));

  if (unique.size() > std::numeric_limits<SetId>::max()) {
    return Status::InvalidArgument("too many permissible subsets");
  }

  Hierarchy h;
  h.domain_size_ = domain_size;
  h.sets_.assign(unique.begin(), unique.end());
  const size_t num = h.sets_.size();

  h.set_sizes_.resize(num);
  for (size_t i = 0; i < num; ++i) {
    h.set_sizes_[i] = static_cast<uint32_t>(h.sets_[i].Count());
  }

  h.leaf_of_value_.assign(domain_size, 0);
  for (size_t i = 0; i < num; ++i) {
    if (h.set_sizes_[i] == 1) {
      h.leaf_of_value_[h.sets_[i].Values()[0]] = static_cast<SetId>(i);
    }
    if (h.set_sizes_[i] == domain_size) {
      h.full_set_id_ = static_cast<SetId>(i);
    }
  }

  // Join table: for each pair, the unique minimal permissible superset of
  // the union. Sets are sorted by size, so the first superset found has
  // minimum cardinality; it is the join iff it is contained in every other
  // superset of the union. Precomputing all O(num²) pairs is the hierarchy
  // construction hot spot, so rows of the upper triangle fan out over the
  // worker threads (each row a writes only cells [a][b], b > a); the lower
  // triangle is mirrored serially afterwards. Ambiguity findings land in
  // per-row slots and the smallest offending row is reported, matching the
  // serial scan's first error.
  h.join_.assign(num * num, 0);
  std::vector<std::string> ambiguous(num);
  ParallelChunks(
      num, num_threads, nullptr, "hierarchy/join-table",
      [&](size_t /*chunk*/, size_t begin, size_t end) {
        for (size_t a = begin; a < end; ++a) {
          h.join_[a * num + a] = static_cast<SetId>(a);
          for (size_t b = a + 1; b < num; ++b) {
            const ValueSet u = h.sets_[a].Union(h.sets_[b]);
            SetId join_id = h.full_set_id_;
            bool found = false;
            for (size_t c = 0; c < num && !found; ++c) {
              if (u.IsSubsetOf(h.sets_[c])) {
                join_id = static_cast<SetId>(c);
                found = true;
              }
            }
            KANON_CHECK(found, "full set must contain every union");
            // Verify uniqueness of the minimal superset (join-consistency).
            for (size_t c = join_id + 1; c < num; ++c) {
              if (u.IsSubsetOf(h.sets_[c]) &&
                  !h.sets_[join_id].IsSubsetOf(h.sets_[c])) {
                ambiguous[a] = "ambiguous closure: subsets " +
                               h.sets_[join_id].ToString() + " and " +
                               h.sets_[c].ToString() +
                               " are incomparable minimal supersets of " +
                               u.ToString();
                return;
              }
            }
            h.join_[a * num + b] = join_id;
          }
        }
      });
  for (const std::string& message : ambiguous) {
    if (!message.empty()) {
      return Status::InvalidArgument(message);
    }
  }
  for (size_t a = 0; a < num; ++a) {
    for (size_t b = a + 1; b < num; ++b) {
      h.join_[b * num + a] = h.join_[a * num + b];
    }
  }
  return h;
}

Result<Hierarchy> Hierarchy::FromGroups(
    size_t domain_size, const std::vector<std::vector<ValueCode>>& groups) {
  std::vector<ValueSet> subsets;
  subsets.reserve(groups.size());
  for (const auto& group : groups) {
    for (ValueCode v : group) {
      if (v >= domain_size) {
        return Status::OutOfRange("group value out of the domain");
      }
    }
    subsets.push_back(ValueSet::Of(domain_size, group));
  }
  return Build(domain_size, std::move(subsets));
}

Result<Hierarchy> Hierarchy::FromLabelGroups(
    const AttributeDomain& domain,
    const std::vector<std::vector<std::string>>& groups) {
  std::vector<std::vector<ValueCode>> code_groups;
  code_groups.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<ValueCode> codes;
    codes.reserve(group.size());
    for (const std::string& label : group) {
      KANON_ASSIGN_OR_RETURN(ValueCode code, domain.CodeOf(label));
      codes.push_back(code);
    }
    code_groups.push_back(std::move(codes));
  }
  return FromGroups(domain.size(), code_groups);
}

Result<Hierarchy> Hierarchy::SuppressionOnly(size_t domain_size) {
  return Build(domain_size, {});
}

Result<Hierarchy> Hierarchy::Intervals(size_t domain_size,
                                       const std::vector<int>& widths) {
  std::vector<int> sorted = widths;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] < 1) {
      return Status::InvalidArgument("interval widths must be >= 1");
    }
    if (i > 0 && sorted[i] % sorted[i - 1] != 0) {
      return Status::InvalidArgument(
          "each interval width must divide the next (got " +
          std::to_string(sorted[i - 1]) + " and " + std::to_string(sorted[i]) +
          "); unaligned bands would make closures ambiguous");
    }
  }
  std::vector<ValueSet> subsets;
  for (int w : sorted) {
    const size_t width = static_cast<size_t>(w);
    for (size_t start = 0; start < domain_size; start += width) {
      ValueSet band(domain_size);
      for (size_t v = start; v < std::min(start + width, domain_size); ++v) {
        band.Insert(static_cast<ValueCode>(v));
      }
      subsets.push_back(std::move(band));
    }
  }
  return Build(domain_size, std::move(subsets));
}

const ValueSet& Hierarchy::set(SetId id) const {
  KANON_CHECK(id < sets_.size(), "set id out of range");
  return sets_[id];
}

size_t Hierarchy::SizeOf(SetId id) const {
  KANON_CHECK(id < set_sizes_.size(), "set id out of range");
  return set_sizes_[id];
}

bool Hierarchy::Contains(SetId id, ValueCode value) const {
  KANON_DCHECK(id < sets_.size() && value < domain_size_);
  return sets_[id].Contains(value);
}

SetId Hierarchy::LeafOf(ValueCode value) const {
  KANON_CHECK(value < domain_size_, "value out of the domain");
  return leaf_of_value_[value];
}

Result<SetId> Hierarchy::IdOf(const ValueSet& set) const {
  if (set.universe_size() != domain_size_) {
    return Status::InvalidArgument("set universe size mismatch");
  }
  auto it = std::lower_bound(sets_.begin(), sets_.end(), set);
  if (it != sets_.end() && *it == set) {
    return static_cast<SetId>(it - sets_.begin());
  }
  return Status::NotFound("subset " + set.ToString() + " is not permissible");
}

bool Hierarchy::IsLaminar() const {
  for (size_t a = 0; a < sets_.size(); ++a) {
    for (size_t b = a + 1; b < sets_.size(); ++b) {
      if (!sets_[a].IsSubsetOf(sets_[b]) && !sets_[b].IsSubsetOf(sets_[a]) &&
          !sets_[a].DisjointFrom(sets_[b])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace kanon
