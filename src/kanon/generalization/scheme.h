#ifndef KANON_GENERALIZATION_SCHEME_H_
#define KANON_GENERALIZATION_SCHEME_H_

#include <memory>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/data/schema.h"
#include "kanon/generalization/hierarchy.h"

namespace kanon {

/// A generalized record: one permissible subset id per attribute.
/// This is the type of the rows R̄_i of a generalized table g(D).
using GeneralizedRecord = std::vector<SetId>;

/// One Hierarchy per schema attribute: the full specification of the
/// permissible generalizations of a table (the collections A_1, ..., A_r).
class GeneralizationScheme {
 public:
  /// `hierarchies[j]` must cover schema attribute j exactly.
  static Result<GeneralizationScheme> Create(
      Schema schema, std::vector<Hierarchy> hierarchies);

  /// Suppression-only scheme (singletons + full set per attribute).
  static Result<GeneralizationScheme> SuppressionOnly(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_attributes() const { return hierarchies_.size(); }
  const Hierarchy& hierarchy(size_t attr) const;

  /// The identity generalization of a record: each value mapped to its
  /// singleton subset. Takes a view, so dataset rows pass through without
  /// materializing a Record (a plain Record converts implicitly).
  GeneralizedRecord Identity(RowView record) const;

  /// The fully suppressed record R* (every attribute = full domain).
  GeneralizedRecord Suppressed() const;

  /// Attribute-wise join of two generalized records: the minimal record
  /// generalizing both.
  GeneralizedRecord JoinRecords(const GeneralizedRecord& a,
                                const GeneralizedRecord& b) const;

  /// R_i + R̄ in the paper's notation: the minimal generalized record that
  /// generalizes both the original record `record` and `gen`.
  GeneralizedRecord JoinWithOriginal(RowView record,
                                     const GeneralizedRecord& gen) const;

  /// Closure of a set of dataset rows (Section V-A.1): the minimal
  /// generalized record consistent with all of them. `rows` must not be
  /// empty.
  GeneralizedRecord ClosureOfRows(const Dataset& dataset,
                                  const std::vector<uint32_t>& rows) const;

  /// True iff the original record is consistent with the generalized one
  /// (Definition 3.3): record[j] ∈ gen[j] for every attribute j.
  bool Consistent(RowView record, const GeneralizedRecord& gen) const;

  /// Consistency against a dataset row without materializing the Record.
  bool ConsistentRow(const Dataset& dataset, size_t row,
                     const GeneralizedRecord& gen) const;

  /// True iff gen_a generalizes gen_b attribute-wise (set containment).
  bool Generalizes(const GeneralizedRecord& a,
                   const GeneralizedRecord& b) const;

  /// Renders a generalized record with value labels, e.g. "34 | {M,F}".
  std::string Format(const GeneralizedRecord& gen) const;

 private:
  GeneralizationScheme(Schema schema, std::vector<Hierarchy> hierarchies)
      : schema_(std::move(schema)), hierarchies_(std::move(hierarchies)) {}

  Schema schema_;
  std::vector<Hierarchy> hierarchies_;
};

}  // namespace kanon

#endif  // KANON_GENERALIZATION_SCHEME_H_
