#include "kanon/shard/partition.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "kanon/common/failpoint.h"
#include "kanon/common/text.h"

namespace kanon {
namespace shard {

namespace {

constexpr char kDelimiter = ',';
constexpr size_t kMaxShards = 4096;

Status CheckLabel(const std::string& label) {
  if (label.find(kDelimiter) != std::string::npos ||
      label.find('\n') != std::string::npos ||
      label.find('\r') != std::string::npos) {
    return Status::InvalidArgument("label '" + label +
                                   "' contains a delimiter or newline and "
                                   "cannot be spilled");
  }
  return Status::OK();
}

}  // namespace

size_t ShardOfLabels(const std::vector<std::string>& labels, size_t prefix,
                     size_t num_shards) {
  if (num_shards <= 1) return 0;
  Hasher hasher;
  const size_t width = prefix < labels.size() ? prefix : labels.size();
  for (size_t j = 0; j < width; ++j) {
    const uint32_t size = static_cast<uint32_t>(labels[j].size());
    hasher.Update(&size, sizeof(size));
    hasher.Update(labels[j]);
  }
  return static_cast<size_t>(hasher.digest() % num_shards);
}

size_t DeriveNumShards(uint64_t rows, size_t memory_budget_mb) {
  if (memory_budget_mb == 0 || rows == 0) return 1;
  const double budget_bytes = static_cast<double>(memory_budget_mb) * 1e6;
  double max_rows = std::sqrt(budget_bytes / 16.0);
  if (max_rows < 1.0) max_rows = 1.0;
  const uint64_t shards = static_cast<uint64_t>(std::ceil(
      static_cast<double>(rows) / max_rows));
  if (shards <= 1) return 1;
  if (shards > kMaxShards) return kMaxShards;
  return static_cast<size_t>(shards);
}

SpillWriter::SpillWriter(std::string dir, size_t num_shards, size_t prefix,
                         uint64_t max_rows_per_shard)
    : dir_(std::move(dir)),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      prefix_(prefix),
      max_rows_per_shard_(max_rows_per_shard) {}

Status SpillWriter::Open() {
  // Sweep stale temporaries from an earlier abandoned partitioning so a
  // crashed run cannot leak half-written spills into this one.
  KANON_RETURN_NOT_OK(RemoveFilesWithSuffix(dir_, ".spill.tmp"));
  streams_.resize(num_shards_);
  hashers_.assign(num_shards_, Hasher());
  rows_per_shard_.assign(num_shards_, 0);
  for (size_t s = 0; s < num_shards_; ++s) {
    const std::string tmp = SpillPath(dir_, s) + ".tmp";
    streams_[s].open(tmp, std::ios::binary | std::ios::trunc);
    if (!streams_[s]) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
  }
  return Status::OK();
}

size_t SpillWriter::RouteRow(const std::vector<std::string>& labels) const {
  const size_t primary = ShardOfLabels(labels, prefix_, num_shards_);
  if (max_rows_per_shard_ == 0 || num_shards_ <= 1 ||
      rows_per_shard_[primary] < max_rows_per_shard_) {
    return primary;
  }
  // The primary shard is full: its quasi-identifier prefix is heavier than
  // the per-shard budget (skew). Spill the overflow elsewhere — k-anonymity
  // composes across *any* row partition (Definition 4.1), so co-locating a
  // prefix is only a utility optimization, never a validity requirement.
  // The escape hatch hashes the full label tuple and probes linearly from
  // there, a pure function of (labels, occupancy) and therefore of the
  // input content and order — reruns repartition identically.
  Hasher hasher;
  for (const std::string& label : labels) {
    const uint32_t size = static_cast<uint32_t>(label.size());
    hasher.Update(&size, sizeof(size));
    hasher.Update(label);
  }
  size_t s = static_cast<size_t>(hasher.digest() % num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    const size_t probe = (s + i) % num_shards_;
    if (rows_per_shard_[probe] < max_rows_per_shard_) return probe;
  }
  // Every shard is at the cap (cap * num_shards rows written — possible
  // only when the caller under-provisioned the cap). Fall back to the
  // primary: a lopsided spill is still a correct one.
  return primary;
}

Status SpillWriter::Append(uint64_t global_row,
                           const std::vector<std::string>& labels) {
  KANON_FAILPOINT("shard.spill_write");
  const size_t s = RouteRow(labels);
  std::string line = std::to_string(global_row);
  for (const std::string& label : labels) {
    KANON_RETURN_NOT_OK(CheckLabel(label));
    line += kDelimiter;
    line += label;
  }
  line += '\n';
  streams_[s].write(line.data(), static_cast<std::streamsize>(line.size()));
  if (!streams_[s]) {
    return Status::IOError("write error on spill " + std::to_string(s) +
                           " at input row " + std::to_string(global_row));
  }
  hashers_[s].Update(line);
  ++rows_per_shard_[s];
  ++rows_written_;
  return Status::OK();
}

Result<std::vector<ShardEntry>> SpillWriter::Commit() {
  std::vector<ShardEntry> entries(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    KANON_FAILPOINT("shard.spill_commit");
    streams_[s].flush();
    if (!streams_[s]) {
      return Status::IOError("flush error on spill " + std::to_string(s));
    }
    streams_[s].close();
    const std::string path = SpillPath(dir_, s);
    KANON_RETURN_NOT_OK(CommitFile(path + ".tmp", path));
    entries[s].rows = rows_per_shard_[s];
    entries[s].spill_checksum = hashers_[s].digest();
  }
  return entries;
}

Result<SpillRows> ReadSpill(const std::string& path, size_t expected_columns) {
  KANON_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  SpillRows rows;
  size_t begin = 0;
  size_t line_number = 0;
  while (begin < content.size()) {
    size_t end = content.find('\n', begin);
    if (end == std::string::npos) end = content.size();
    ++line_number;
    const std::string line = content.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, kDelimiter);
    if (fields.size() != expected_columns + 1) {
      return Status::IOError("spill '" + path + "' line " +
                             std::to_string(line_number) + " has " +
                             std::to_string(fields.size()) +
                             " fields; expected " +
                             std::to_string(expected_columns + 1));
    }
    char* parse_end = nullptr;
    errno = 0;
    const unsigned long long index =
        std::strtoull(fields[0].c_str(), &parse_end, 10);
    if (errno != 0 || parse_end == nullptr || *parse_end != '\0' ||
        fields[0].empty()) {
      return Status::IOError("spill '" + path + "' line " +
                             std::to_string(line_number) +
                             " has a bad row index '" + fields[0] + "'");
    }
    rows.global_rows.push_back(static_cast<uint64_t>(index));
    fields.erase(fields.begin());
    rows.labels.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace shard
}  // namespace kanon
