#include "kanon/shard/shard_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "kanon/common/failpoint.h"

namespace kanon {
namespace shard {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

namespace fs = std::filesystem;

}  // namespace

void Hasher::Update(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  state_ = h;
}

std::string ChecksumHex(uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buffer);
}

Result<uint64_t> ChecksumFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for checksumming");
  }
  Hasher hasher;
  char buffer[1 << 16];
  while (file) {
    file.read(buffer, sizeof(buffer));
    hasher.Update(buffer, static_cast<size_t>(file.gcount()));
  }
  if (file.bad()) {
    return Status::IOError("read error while checksumming '" + path + "'");
  }
  return hasher.digest();
}

Result<std::string> ReadFileToString(const std::string& path) {
  KANON_FAILPOINT("shard.file_read");
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  if (file.bad()) {
    return Status::IOError("read error on '" + path + "'");
  }
  return content;
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + tmp + "' for writing");
  }
  // Torn-write injection: half the payload lands in the temporary, the
  // write fails, and no rename happens — exactly what a full disk or a
  // kill mid-write leaves behind. Resume must treat the .tmp as garbage.
  if (failpoint::AnyArmed()) {
    Status injected = failpoint::Check("shard.file_write");
    if (!injected.ok()) {
      out.write(content.data(),
                static_cast<std::streamsize>(content.size() / 2));
      out.flush();
      return Status::IOError("short write on '" + tmp +
                             "' (injected): " + injected.message());
    }
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    return Status::IOError("write error on '" + tmp + "'");
  }
  out.close();
  return CommitFile(tmp, path);
}

Status CommitFile(const std::string& from, const std::string& to) {
  KANON_FAILPOINT("shard.file_commit");
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("cannot commit '" + from + "' -> '" + to +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status VerifyChecksum(const std::string& path, uint64_t expected) {
  KANON_ASSIGN_OR_RETURN(uint64_t actual, ChecksumFile(path));
  if (failpoint::AnyArmed() && !failpoint::Check("shard.checksum").ok()) {
    actual = ~actual;  // Simulated corruption: report a mismatching digest.
  }
  if (actual != expected) {
    return Status::IOError("checksum mismatch on '" + path + "': expected " +
                           ChecksumHex(expected) + ", found " +
                           ChecksumHex(actual));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::IOError("cannot remove '" + path + "': " + ec.message());
  }
  return Status::OK();
}

Status RemoveFilesWithSuffix(const std::string& dir,
                             const std::string& suffix) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return Status::OK();
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
      if (remove_ec) {
        return Status::IOError("cannot remove '" + entry.path().string() +
                               "': " + remove_ec.message());
      }
    }
  }
  if (ec) {
    return Status::IOError("cannot list '" + dir + "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace shard
}  // namespace kanon
