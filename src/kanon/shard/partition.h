#ifndef KANON_SHARD_PARTITION_H_
#define KANON_SHARD_PARTITION_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/shard/manifest.h"
#include "kanon/shard/shard_io.h"

namespace kanon {
namespace shard {

/// Hash partitioning of the input rows into shard spill files
/// (docs/sharding.md).
///
/// Rows are routed by an FNV-1a hash of their first `prefix` attribute
/// labels — a quasi-identifier prefix — so records that agree on those
/// attributes (the likeliest k-anonymity group mates) land in the same
/// shard and the cross-shard boundary-repair pass has less to do, with a
/// per-shard row cap that spreads skew-heavy prefixes (see SpillWriter).
/// Routing is a pure function of the input's content and order, the
/// prefix width, the shard count, and the cap (itself derived from the
/// recorded row count and geometry); prefix and shard count are folded
/// into the manifest fingerprint, so a resume can prove the spills on
/// disk were produced by the same partitioning.

/// Shard index of a row: FNV-1a over the first min(prefix, r) labels
/// (length-delimited, so {"ab","c"} and {"a","bc"} hash apart), mod
/// `num_shards`.
size_t ShardOfLabels(const std::vector<std::string>& labels, size_t prefix,
                     size_t num_shards);

/// Picks a shard count for `rows` under a per-shard memory budget of
/// `memory_budget_mb`. The dominant working-set term of the clustering
/// engines is quadratic in the shard's row count (candidate scans, closure
/// caches), so the budget maps to a max rows-per-shard of roughly
/// sqrt(budget_bytes / 16); the shard count is ceil(rows / that), clamped
/// to [1, 4096]. A zero budget yields 1 (sharding off unless --shards is
/// set explicitly).
size_t DeriveNumShards(uint64_t rows, size_t memory_budget_mb);

/// Streams rows into `num_shards` spill files, one open stream per shard,
/// with a running content checksum per stream (no second read pass).
///
/// Spill row format: `<global_row_index>,<label>,...,<label>` — no header.
/// Labels are the trimmed CSV tokens; a label containing the delimiter or
/// a newline is rejected (InvalidArgument) rather than silently corrupting
/// the spill.
///
/// Skew protection: with `max_rows_per_shard` > 0, a row whose prefix
/// shard is already at the cap overflows to another shard (full-label
/// hash, then linear probing for free capacity). A quasi-identifier
/// prefix heavier than the per-shard budget therefore cannot concentrate
/// the whole input in one shard and defeat the memory bound — per-shard
/// k-anonymity composes across any row partition, so spreading a heavy
/// prefix costs utility (more boundary repair), never validity. Routing
/// stays a pure function of the input content and order. 0 = uncapped
/// (pure prefix routing).
///
/// Lifecycle: Open() creates `<dir>/shard-NNNN.spill.tmp` streams;
/// Append() routes rows; Commit() flushes every stream and renames each
/// temporary over its final name, returning the per-shard row counts and
/// checksums for the manifest. A SpillWriter abandoned before Commit()
/// leaves only .tmp files, which the next partitioning sweeps away.
///
/// Failpoints: `shard.spill_write` (a row write fails mid-stream),
/// `shard.spill_commit` (flush-or-rename of a finished spill fails).
class SpillWriter {
 public:
  SpillWriter(std::string dir, size_t num_shards, size_t prefix,
              uint64_t max_rows_per_shard = 0);

  Status Open();
  Status Append(uint64_t global_row, const std::vector<std::string>& labels);
  Result<std::vector<ShardEntry>> Commit();

  uint64_t rows_written() const { return rows_written_; }

 private:
  /// Prefix shard, or the deterministic overflow shard once the prefix
  /// shard is at `max_rows_per_shard_`.
  size_t RouteRow(const std::vector<std::string>& labels) const;

  const std::string dir_;
  const size_t num_shards_;
  const size_t prefix_;
  const uint64_t max_rows_per_shard_;
  uint64_t rows_written_ = 0;
  std::vector<std::ofstream> streams_;
  std::vector<Hasher> hashers_;
  std::vector<uint64_t> rows_per_shard_;
};

/// One spill file read back: per-row global indices and labels, in the
/// order the partitioner wrote them.
struct SpillRows {
  std::vector<uint64_t> global_rows;
  std::vector<std::vector<std::string>> labels;
};

/// Reads a committed spill. `expected_columns` is the schema's attribute
/// count; every row must carry exactly that many labels after the index.
/// Read failures surface the `shard.file_read` failpoint via the shared
/// file reader.
Result<SpillRows> ReadSpill(const std::string& path, size_t expected_columns);

}  // namespace shard
}  // namespace kanon

#endif  // KANON_SHARD_PARTITION_H_
