#include "kanon/shard/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "kanon/common/text.h"
#include "kanon/shard/shard_io.h"

namespace kanon {
namespace shard {

namespace {

constexpr char kManifestMagic[] = "kanon-shard-manifest";
constexpr char kMetaMagic[] = "kanon-shard-meta";

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

Result<uint64_t> ParseU64(const std::string& token, const char* what) {
  if (token.empty()) {
    return Status::InvalidArgument(std::string("missing ") + what);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what + " '" +
                                   token + "'");
  }
  return static_cast<uint64_t>(value);
}

Result<uint64_t> ParseHex64(const std::string& token, const char* what) {
  if (token.empty()) {
    return Status::InvalidArgument(std::string("missing ") + what);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what + " '" +
                                   token + "'");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseDoubleToken(const std::string& token, const char* what) {
  if (token.empty()) {
    return Status::InvalidArgument(std::string("missing ") + what);
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("bad ") + what + " '" +
                                   token + "'");
  }
  return value;
}

Result<StopReason> ParseStopReason(const std::string& name) {
  for (StopReason reason :
       {StopReason::kNone, StopReason::kDeadline, StopReason::kCancelled,
        StopReason::kStepBudget}) {
    if (name == StopReasonName(reason)) return reason;
  }
  return Status::InvalidArgument("bad stop reason '" + name + "'");
}

// Splits one "key value..." line into (key, rest-of-line tokens).
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& raw : Split(line, ' ')) {
    std::string token(Trim(raw));
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string SpillPath(const std::string& dir, size_t shard) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "/shard-%04zu.spill", shard);
  return dir + buffer;
}

std::string ShardOutPath(const std::string& dir, size_t shard) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "/shard-%04zu.out", shard);
  return dir + buffer;
}

std::string ShardMetaPath(const std::string& dir, size_t shard) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "/shard-%04zu.meta", shard);
  return dir + buffer;
}

std::string Manifest::Format() const {
  std::ostringstream out;
  out << kManifestMagic << " " << version << "\n";
  out << "input " << ChecksumHex(input_checksum) << "\n";
  out << "rows " << rows << "\n";
  out << "fingerprint " << fingerprint << "\n";
  for (const ShardEntry& entry : shards) {
    out << "shard " << entry.rows << " " << ChecksumHex(entry.spill_checksum)
        << "\n";
  }
  return out.str();
}

Result<Manifest> Manifest::Parse(const std::string& text) {
  Manifest manifest;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  bool saw_input = false, saw_rows = false, saw_fingerprint = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;
    if (!saw_magic) {
      if (tokens.size() != 2 || tokens[0] != kManifestMagic) {
        return Status::InvalidArgument("not a shard manifest");
      }
      KANON_ASSIGN_OR_RETURN(manifest.version,
                             ParseU64(tokens[1], "manifest version"));
      if (manifest.version != 1) {
        return Status::InvalidArgument("unsupported manifest version " +
                                       tokens[1]);
      }
      saw_magic = true;
      continue;
    }
    if (tokens[0] == "input" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(manifest.input_checksum,
                             ParseHex64(tokens[1], "input checksum"));
      saw_input = true;
    } else if (tokens[0] == "rows" && tokens.size() == 2) {
      KANON_ASSIGN_OR_RETURN(manifest.rows, ParseU64(tokens[1], "row count"));
      saw_rows = true;
    } else if (tokens[0] == "fingerprint" && tokens.size() == 2) {
      manifest.fingerprint = tokens[1];
      saw_fingerprint = true;
    } else if (tokens[0] == "shard" && tokens.size() == 3) {
      ShardEntry entry;
      KANON_ASSIGN_OR_RETURN(entry.rows, ParseU64(tokens[1], "shard rows"));
      KANON_ASSIGN_OR_RETURN(entry.spill_checksum,
                             ParseHex64(tokens[2], "shard checksum"));
      manifest.shards.push_back(entry);
    } else {
      return Status::InvalidArgument("bad manifest line '" + line + "'");
    }
  }
  if (!saw_magic || !saw_input || !saw_rows || !saw_fingerprint ||
      manifest.shards.empty()) {
    return Status::InvalidArgument("incomplete shard manifest");
  }
  uint64_t total = 0;
  for (const ShardEntry& entry : manifest.shards) total += entry.rows;
  if (total != manifest.rows) {
    return Status::InvalidArgument("manifest row counts do not add up");
  }
  return manifest;
}

std::string ShardMeta::Format() const {
  std::ostringstream out;
  out << kMetaMagic << " 1\n";
  out << "rows " << rows << "\n";
  out << "checksum " << ChecksumHex(out_checksum) << "\n";
  out << "loss " << FormatDouble(loss) << "\n";
  out << "attempts " << attempts << "\n";
  out << "degraded " << (degraded ? 1 : 0) << "\n";
  out << "stop_reason " << StopReasonName(stop_reason) << "\n";
  out << "suppressed " << (suppressed ? 1 : 0) << "\n";
  out << "engine_suppressed " << engine_suppressed << "\n";
  out << "steps " << steps << "\n";
  return out.str();
}

Result<ShardMeta> ShardMeta::Parse(const std::string& text) {
  ShardMeta meta;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  bool saw_rows = false, saw_checksum = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;
    if (!saw_magic) {
      if (tokens.size() != 2 || tokens[0] != kMetaMagic || tokens[1] != "1") {
        return Status::InvalidArgument("not a shard meta file");
      }
      saw_magic = true;
      continue;
    }
    if (tokens.size() != 2) {
      return Status::InvalidArgument("bad meta line '" + line + "'");
    }
    const std::string& key = tokens[0];
    const std::string& value = tokens[1];
    if (key == "rows") {
      KANON_ASSIGN_OR_RETURN(meta.rows, ParseU64(value, "meta rows"));
      saw_rows = true;
    } else if (key == "checksum") {
      KANON_ASSIGN_OR_RETURN(meta.out_checksum,
                             ParseHex64(value, "meta checksum"));
      saw_checksum = true;
    } else if (key == "loss") {
      KANON_ASSIGN_OR_RETURN(meta.loss, ParseDoubleToken(value, "meta loss"));
    } else if (key == "attempts") {
      KANON_ASSIGN_OR_RETURN(meta.attempts, ParseU64(value, "meta attempts"));
    } else if (key == "degraded") {
      meta.degraded = value != "0";
    } else if (key == "stop_reason") {
      KANON_ASSIGN_OR_RETURN(meta.stop_reason, ParseStopReason(value));
    } else if (key == "suppressed") {
      meta.suppressed = value != "0";
    } else if (key == "engine_suppressed") {
      KANON_ASSIGN_OR_RETURN(meta.engine_suppressed,
                             ParseU64(value, "meta engine_suppressed"));
    } else if (key == "steps") {
      KANON_ASSIGN_OR_RETURN(meta.steps, ParseU64(value, "meta steps"));
    } else {
      return Status::InvalidArgument("bad meta key '" + key + "'");
    }
  }
  if (!saw_magic || !saw_rows || !saw_checksum) {
    return Status::InvalidArgument("incomplete shard meta file");
  }
  return meta;
}

}  // namespace shard
}  // namespace kanon
