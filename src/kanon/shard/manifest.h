#ifndef KANON_SHARD_MANIFEST_H_
#define KANON_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/common/run_context.h"

namespace kanon {
namespace shard {

/// On-disk layout of one sharded run (docs/sharding.md):
///
///   <work_dir>/MANIFEST                    — this file, committed once the
///                                            partitioning phase finished
///   <work_dir>/shard-NNNN.spill            — shard inputs (committed before
///                                            the manifest)
///   <work_dir>/shard-NNNN.out              — per-shard anonymized output
///   <work_dir>/shard-NNNN.meta             — per-shard outcome + checksum
///                                            of the .out (committed after)
///
/// Every file is committed with write-temp + rename and carries (or is
/// covered by) a content checksum, so a resume can classify each shard as
/// done / partial / untouched from the file system alone.

/// One shard's partitioning record.
struct ShardEntry {
  uint64_t rows = 0;
  uint64_t spill_checksum = 0;
};

/// The run manifest: everything a resume needs to validate that the
/// directory belongs to the same (input, configuration) pair and that the
/// spill files are intact. `fingerprint` folds in the determinism-relevant
/// configuration (k, method, measure, distance, shard count, partition
/// prefix); the worker thread count is deliberately excluded — output is
/// thread-count invariant, so a run may be resumed at a different
/// --threads setting and still reproduce byte-identical output.
struct Manifest {
  uint64_t version = 1;
  uint64_t input_checksum = 0;
  uint64_t rows = 0;
  std::string fingerprint;
  std::vector<ShardEntry> shards;

  std::string Format() const;
  static Result<Manifest> Parse(const std::string& text);
};

/// File-name helpers for the layout above.
std::string ManifestPath(const std::string& dir);
std::string SpillPath(const std::string& dir, size_t shard);
std::string ShardOutPath(const std::string& dir, size_t shard);
std::string ShardMetaPath(const std::string& dir, size_t shard);

/// One finished shard's committed outcome. The checksum covers the .out
/// file; a meta whose checksum does not match its .out is treated as a torn
/// checkpoint and the shard is re-run.
struct ShardMeta {
  uint64_t rows = 0;
  uint64_t out_checksum = 0;
  double loss = 0.0;
  uint64_t attempts = 1;
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
  /// Whole-shard suppression: the degradation ladder's last resort.
  bool suppressed = false;
  /// Rows the *engine's* fallback coarsened inside this shard.
  uint64_t engine_suppressed = 0;
  /// Deterministic engine steps the shard consumed (charged to the parent
  /// budget on both fresh runs and resumes, keeping accounting identical).
  uint64_t steps = 0;

  std::string Format() const;
  static Result<ShardMeta> Parse(const std::string& text);
};

}  // namespace shard
}  // namespace kanon

#endif  // KANON_SHARD_MANIFEST_H_
