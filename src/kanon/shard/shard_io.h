#ifndef KANON_SHARD_SHARD_IO_H_
#define KANON_SHARD_SHARD_IO_H_

#include <cstdint>
#include <string>

#include "kanon/common/result.h"

namespace kanon {
namespace shard {

/// File I/O primitives for the out-of-core sharded driver
/// (docs/sharding.md): every spill file, checkpoint, and manifest goes
/// through the commit protocol here, so a run killed at *any* instruction
/// leaves either the previous committed state or a detectably-partial
/// temporary — never a torn file that a resume would trust.
///
/// Durability model: contents are flushed before the rename and checksummed
/// end to end; a torn or bit-flipped file fails its checksum on resume and
/// the unit of work it belonged to is simply redone. There is no fsync —
/// crash-consistency across power loss is out of scope, process death (the
/// common case: deadline kill, OOM kill, crash) is fully covered.
///
/// Failpoints (docs/robustness.md) wired into every path:
///   shard.file_write    — torn write: half the payload reaches the .tmp
///                         file, the write reports an IOError (disk full /
///                         short write), and no rename happens.
///   shard.file_commit   — the payload is fully written but the commit
///                         rename is denied (crash between write and
///                         publish).
///   shard.file_read     — read failure on a committed file.
///   shard.checksum      — checksum verification reports an injected
///                         mismatch even on good bytes.

/// FNV-1a 64-bit running hash — the content checksum of every committed
/// file, cheap enough to pay on the 1M-row path.
class Hasher {
 public:
  void Update(const void* data, size_t size);
  void Update(const std::string& text) { Update(text.data(), text.size()); }
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 14695981039346656037ULL;  // FNV offset basis.
};

/// Lower-case hex rendering of a checksum, fixed 16 digits.
std::string ChecksumHex(uint64_t digest);

/// Checksum of a whole file's bytes.
Result<uint64_t> ChecksumFile(const std::string& path);

/// Reads a whole (small) committed file.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` atomically: the bytes go to `path + ".tmp"`,
/// are flushed, and the temporary is renamed over `path` only when every
/// byte made it. Readers therefore see the old state or the new state,
/// never a prefix.
Status WriteFileAtomic(const std::string& path, const std::string& content);

/// Renames `from` over `to` (the commit step for streamed files whose
/// contents were written incrementally). Same failpoint as
/// WriteFileAtomic's commit.
Status CommitFile(const std::string& from, const std::string& to);

/// Verifies that `path`'s checksum equals `expected`. A mismatch (or an
/// armed shard.checksum failpoint) reports the actual digest in the error.
Status VerifyChecksum(const std::string& path, uint64_t expected);

bool FileExists(const std::string& path);

/// Recursively creates `dir` (OK if it already exists).
Status EnsureDir(const std::string& dir);

/// Deletes every regular file directly inside `dir` whose name ends with
/// `suffix` (no recursion). Missing dir is OK. Used to clear stale state
/// when a run is (re)partitioned from scratch.
Status RemoveFilesWithSuffix(const std::string& dir,
                             const std::string& suffix);

/// Deletes `path` if it exists (missing file is OK).
Status RemoveFileIfExists(const std::string& path);

}  // namespace shard
}  // namespace kanon

#endif  // KANON_SHARD_SHARD_IO_H_
