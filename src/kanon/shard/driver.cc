#include "kanon/shard/driver.h"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "kanon/common/failpoint.h"
#include "kanon/generalization/generalized_csv.h"
#include "kanon/loss/precomputed_loss.h"
#include "kanon/shard/manifest.h"
#include "kanon/shard/partition.h"
#include "kanon/shard/shard_io.h"
#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {
namespace shard {

namespace {

/// Merging per-shard k-anonymous tables preserves Definition 4.1 only for
/// the per-record notion: identical-record groups can only grow in a
/// union. The relational notions compare against the *original* dataset,
/// which a shard does not see in full.
bool MethodComposes(AnonymizationMethod method) {
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative:
    case AnonymizationMethod::kForest:
    case AnonymizationMethod::kFullDomain:
      return true;
    case AnonymizationMethod::kKKNearestNeighbors:
    case AnonymizationMethod::kKKGreedyExpansion:
    case AnonymizationMethod::kGlobal:
      return false;
  }
  return false;
}

/// Everything that must match between the run that wrote a work dir and
/// the run trying to resume it. The thread count is deliberately absent:
/// output is thread-count invariant (docs/parallelism.md), so a resume may
/// use a different --threads.
std::string FingerprintOf(const AnonymizerConfig& base,
                          const LossMeasure& measure, size_t num_shards,
                          size_t prefix) {
  std::ostringstream out;
  out << "k=" << base.k << ";method=" << AnonymizationMethodName(base.method)
      << ";distance=" << static_cast<int>(base.distance)
      << ";measure=" << measure.name() << ";shards=" << num_shards
      << ";prefix=" << prefix;
  return out.str();
}

uint64_t DatasetChecksum(const Dataset& dataset) {
  Hasher hasher;
  const Schema& schema = dataset.schema();
  const uint32_t r = static_cast<uint32_t>(schema.num_attributes());
  hasher.Update(&r, sizeof(r));
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    for (size_t j = 0; j < r; ++j) {
      const std::string& label = schema.attribute(j).label(dataset.at(i, j));
      const uint32_t size = static_cast<uint32_t>(label.size());
      hasher.Update(&size, sizeof(size));
      hasher.Update(label);
    }
  }
  return hasher.digest();
}

Status CheckCsvHeader(const Schema& schema,
                      const std::vector<std::string>& header) {
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema has " + std::to_string(schema.num_attributes()));
  }
  for (size_t j = 0; j < header.size(); ++j) {
    if (header[j] != schema.attribute(j).name()) {
      return Status::InvalidArgument("CSV column '" + header[j] +
                                     "' does not match schema attribute '" +
                                     schema.attribute(j).name() + "'");
    }
  }
  return Status::OK();
}

/// Streams every data row of the CSV through `sink(row_index, fields)`.
Status ForEachCsvRow(
    const std::string& path, const Schema& schema,
    const CsvOptions& options,
    const std::function<Status(uint64_t, const std::vector<std::string>&)>&
        sink) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  RowReader reader(file, options);
  std::vector<std::string> fields;
  bool header_checked = !options.has_header;
  uint64_t row = 0;
  while (true) {
    KANON_ASSIGN_OR_RETURN(bool got, reader.Next(&fields));
    if (!header_checked && reader.header_seen()) {
      KANON_RETURN_NOT_OK(CheckCsvHeader(schema, reader.header()));
      header_checked = true;
    }
    if (!got) break;
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "line " + std::to_string(reader.line_number()) + " has " +
          std::to_string(fields.size()) + " fields; schema has " +
          std::to_string(schema.num_attributes()));
    }
    Status s = sink(row, fields);
    if (!s.ok()) {
      return Status(s.code(), "line " + std::to_string(reader.line_number()) +
                                  ": " + s.message());
    }
    ++row;
  }
  return Status::OK();
}

/// One shard checkpoint loaded back from disk, or nothing when the files
/// are absent, torn, or fail their checksum — in which case the shard is
/// simply re-run; a damaged checkpoint is never an error.
struct LoadedShard {
  GeneralizedTable table;
  ShardMeta meta;
};

Result<GeneralizedTable> LoadShardTable(
    const std::shared_ptr<const GeneralizationScheme>& scheme,
    const std::string& out_path) {
  return ReadGeneralizedCsvFile(scheme, out_path);
}

bool TryLoadCheckpoint(const std::shared_ptr<const GeneralizationScheme>&
                           scheme,
                       const std::string& dir, size_t s,
                       uint64_t expected_rows, LoadedShard* loaded) {
  const std::string meta_path = ShardMetaPath(dir, s);
  const std::string out_path = ShardOutPath(dir, s);
  if (!FileExists(meta_path) || !FileExists(out_path)) return false;
  Result<std::string> text = ReadFileToString(meta_path);
  if (!text.ok()) return false;
  Result<ShardMeta> meta = ShardMeta::Parse(text.value());
  if (!meta.ok()) return false;
  if (meta.value().rows != expected_rows) return false;
  if (!VerifyChecksum(out_path, meta.value().out_checksum).ok()) return false;
  Result<GeneralizedTable> table = LoadShardTable(scheme, out_path);
  if (!table.ok()) return false;
  if (table.value().num_rows() != expected_rows) return false;
  loaded->table = std::move(table.value());
  loaded->meta = meta.value();
  return true;
}

/// Builds the shard's coded dataset from its spill rows.
Result<Dataset> ShardDataset(const Schema& schema, const SpillRows& rows,
                             size_t s) {
  Dataset dataset(schema);
  for (size_t i = 0; i < rows.labels.size(); ++i) {
    Status status = dataset.AppendRowLabels(rows.labels[i]);
    if (!status.ok()) {
      return Status(status.code(),
                    "shard " + std::to_string(s) + " spill row " +
                        std::to_string(i) + ": " + status.message());
    }
  }
  return dataset;
}

GeneralizedTable SuppressedTable(
    const std::shared_ptr<const GeneralizationScheme>& scheme, size_t rows) {
  GeneralizedTable table(scheme);
  const GeneralizedRecord suppressed = scheme->Suppressed();
  for (size_t i = 0; i < rows; ++i) table.AppendRecord(suppressed);
  return table;
}

/// The per-shard degradation ladder: engine under a forked child budget,
/// retries with a halved share on error, whole-shard suppression as the
/// last resort. A budget stop is accepted as a degraded-but-valid result.
Result<LoadedShard> RunShardFresh(
    const Dataset& shard_dataset,
    const std::shared_ptr<const GeneralizationScheme>& scheme,
    const PrecomputedLoss& loss, const AnonymizerConfig& base,
    size_t max_attempts, double budget_share, size_t* retries) {
  LoadedShard out{GeneralizedTable(scheme), ShardMeta()};
  RunContext* parent = base.run_context;
  double fraction = budget_share;
  Status last_error = Status::OK();
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    out.meta.attempts = attempt;
    // Injected shard crash (CI fault matrix): the attempt fails outright,
    // exercising the retry ladder and, when armed sticky, the suppression
    // last resort.
    Status injected = Status::OK();
    if (failpoint::AnyArmed()) injected = failpoint::Check("shard.run");
    Result<AnonymizationResult> run = injected.ok()
        ? [&]() -> Result<AnonymizationResult> {
            RunContext child;
            AnonymizerConfig config = base;
            if (parent != nullptr) {
              child = parent->Fork(fraction);
              config.run_context = &child;
            } else {
              config.run_context = nullptr;
            }
            Result<AnonymizationResult> r =
                Anonymize(shard_dataset, loss, config);
            if (r.ok() && parent != nullptr) {
              parent->ChargeSteps(r.value().iterations_completed);
            }
            return r;
          }()
        : Result<AnonymizationResult>(injected);
    if (run.ok()) {
      AnonymizationResult& result = run.value();
      out.table = std::move(result.table);
      out.meta.rows = out.table.num_rows();
      out.meta.loss = result.loss;
      out.meta.degraded = result.degraded;
      out.meta.stop_reason = result.stop_reason;
      out.meta.engine_suppressed = result.records_suppressed;
      out.meta.steps = result.iterations_completed;
      return out;
    }
    last_error = run.status();
    const bool parent_cancelled =
        parent != nullptr && parent->StopRequested() == StopReason::kCancelled;
    if (attempt < max_attempts && !parent_cancelled) {
      ++*retries;
      fraction *= 0.5;
      continue;
    }
    break;
  }
  // Last resort: publish the shard fully suppressed. Lossy, but every row
  // is R* — k-anonymous within any group of >= k suppressed rows, and the
  // boundary-repair pass guarantees the global group size.
  out.table = SuppressedTable(scheme, shard_dataset.num_rows());
  out.meta.rows = shard_dataset.num_rows();
  out.meta.loss = loss.TableLoss(out.table);
  out.meta.degraded = true;
  out.meta.suppressed = true;
  out.meta.stop_reason =
      base.run_context != nullptr ? base.run_context->stop_reason()
                                  : StopReason::kNone;
  out.meta.engine_suppressed = 0;
  out.meta.steps = 0;
  (void)last_error;
  return out;
}

/// Commits one finished shard: the .out table, then (after the
/// checkpoint-commit failpoint — the crash window the resume test kills
/// in) the .meta outcome record.
Status CommitCheckpoint(const std::string& dir, size_t s,
                        const GeneralizedTable& table, ShardMeta* meta) {
  std::ostringstream out;
  KANON_RETURN_NOT_OK(WriteGeneralizedCsv(table, out));
  const std::string content = out.str();
  Hasher hasher;
  hasher.Update(content);
  meta->out_checksum = hasher.digest();
  KANON_RETURN_NOT_OK(WriteFileAtomic(ShardOutPath(dir, s), content));
  KANON_FAILPOINT("shard.checkpoint_commit");
  return WriteFileAtomic(ShardMetaPath(dir, s), meta->Format());
}

/// Restores the global k-guarantee on the merged table: identical-record
/// groups smaller than k (undersized boundary groups from suppressed or
/// degraded shards) are pooled and joined; an undersized pool absorbs the
/// smallest regular group. Deterministic: groups are visited in record
/// order. Returns the number of rows coarsened.
Result<size_t> RepairBoundaries(GeneralizedTable* table,
                                const GeneralizationScheme& scheme,
                                size_t k) {
  const size_t n = table->num_rows();
  if (n == 0) return static_cast<size_t>(0);
  if (n < k) {
    return Status::InvalidArgument("table has " + std::to_string(n) +
                                   " rows; cannot be " + std::to_string(k) +
                                   "-anonymous");
  }
  std::map<GeneralizedRecord, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) groups[table->record(i)].push_back(i);
  std::vector<size_t> pool;
  GeneralizedRecord joined;
  for (const auto& group : groups) {
    if (group.second.size() >= k) continue;
    joined = joined.empty() ? group.first
                            : scheme.JoinRecords(joined, group.first);
    pool.insert(pool.end(), group.second.begin(), group.second.end());
  }
  if (pool.empty()) return static_cast<size_t>(0);
  if (pool.size() < k) {
    // Absorb the smallest regular group (ties: first in record order) so
    // the pooled group reaches k. The absorbed rows coarsen to the join.
    const std::vector<size_t>* best = nullptr;
    const GeneralizedRecord* best_record = nullptr;
    for (const auto& group : groups) {
      if (group.second.size() < k) continue;
      if (best == nullptr || group.second.size() < best->size()) {
        best = &group.second;
        best_record = &group.first;
      }
    }
    if (best == nullptr) {
      // Every row is already in the pool, and the pool is the whole table
      // (n >= k was checked above) — impossible to be here with pool < k.
      return Status::InvalidArgument(
          "boundary repair cannot reach a group of " + std::to_string(k));
    }
    joined = scheme.JoinRecords(joined, *best_record);
    pool.insert(pool.end(), best->begin(), best->end());
  }
  for (size_t row : pool) table->SetRecord(row, joined);
  return pool.size();
}

struct RunInputs {
  std::shared_ptr<const GeneralizationScheme> scheme;
  const LossMeasure* measure = nullptr;
  const AnonymizerConfig* base = nullptr;
  const ShardOptions* options = nullptr;
  uint64_t input_checksum = 0;
  uint64_t rows = 0;
  /// Streams every input row into the writer (partition phase).
  std::function<Status(SpillWriter*)> partition;
  /// The full dataset when the caller has it in memory; null on the CSV
  /// path (the cost dataset is then rebuilt from the spills).
  const Dataset* dataset = nullptr;
};

Result<ShardedResult> Run(const RunInputs& in) {
  const AnonymizerConfig& base = *in.base;
  const ShardOptions& options = *in.options;
  if (in.scheme == nullptr) {
    return Status::InvalidArgument("scheme must not be null");
  }
  if (base.k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (!MethodComposes(base.method)) {
    return Status::InvalidArgument(
        std::string(AnonymizationMethodName(base.method)) +
        " does not compose across shards; sharded runs require a "
        "per-record k-anonymity method (agglomerative, modified, forest, "
        "full-domain)");
  }
  if (options.work_dir.empty()) {
    return Status::InvalidArgument("sharded runs require a work directory");
  }
  if (options.max_attempts == 0) {
    return Status::InvalidArgument("max_attempts must be at least 1");
  }
  KANON_RETURN_NOT_OK(EnsureDir(options.work_dir));
  const std::string& dir = options.work_dir;
  size_t num_shards = options.num_shards != 0
                          ? options.num_shards
                          : DeriveNumShards(in.rows, options.memory_budget_mb);
  if (num_shards == 0) num_shards = 1;
  const std::string manifest_path = ManifestPath(dir);
  Tracer* tracer = base.tracer;

  // --- Phase 1: partition (or validate and adopt a previous run). -------
  Manifest manifest;
  bool have_manifest = false;
  if (options.resume && FileExists(manifest_path)) {
    KANON_ASSIGN_OR_RETURN(std::string text, ReadFileToString(manifest_path));
    Result<Manifest> parsed = Manifest::Parse(text);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    "cannot resume from '" + dir +
                        "': " + parsed.status().message());
    }
    manifest = std::move(parsed.value());
    have_manifest = true;
    // A bare resume (no explicit shard count) adopts the recorded
    // geometry — the original count may have been derived from a memory
    // budget the resuming invocation no longer states.
    if (options.num_shards == 0 && !manifest.shards.empty()) {
      num_shards = manifest.shards.size();
    }
  }
  const std::string fingerprint =
      FingerprintOf(base, *in.measure, num_shards, options.prefix_attributes);
  bool resumed_manifest = false;
  if (have_manifest) {
    if (manifest.fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "cannot resume from '" + dir + "': configuration changed (was '" +
          manifest.fingerprint + "', now '" + fingerprint + "')");
    }
    if (manifest.input_checksum != in.input_checksum) {
      return Status::InvalidArgument(
          "cannot resume from '" + dir + "': input changed (checksum " +
          ChecksumHex(manifest.input_checksum) + " -> " +
          ChecksumHex(in.input_checksum) + ")");
    }
    if (manifest.rows != in.rows || manifest.shards.size() != num_shards) {
      return Status::InvalidArgument("cannot resume from '" + dir +
                                     "': manifest geometry does not match");
    }
    for (size_t s = 0; s < num_shards; ++s) {
      Status spill_ok =
          VerifyChecksum(SpillPath(dir, s), manifest.shards[s].spill_checksum);
      if (!spill_ok.ok()) {
        return Status(spill_ok.code(), "cannot resume from '" + dir +
                                           "': " + spill_ok.message());
      }
    }
    resumed_manifest = true;
  }
  if (!resumed_manifest) {
    PhaseSpan span(tracer, "shard/partition");
    // A fresh partition invalidates everything downstream: stale
    // checkpoints from an earlier geometry must not be mistaken for
    // progress.
    KANON_RETURN_NOT_OK(RemoveFileIfExists(manifest_path));
    for (const char* suffix : {".spill", ".out", ".meta", ".tmp"}) {
      KANON_RETURN_NOT_OK(RemoveFilesWithSuffix(dir, suffix));
    }
    // Per-shard row cap at 2× the even split: a quasi-identifier prefix
    // heavier than that overflows to other shards instead of defeating
    // the memory budget (the engines' working set is quadratic in the
    // shard's row count, so one skew-heavy shard would dominate the whole
    // run). Slack factor 2 leaves mild imbalance alone.
    const uint64_t cap =
        num_shards > 1 ? 2 * ((in.rows + num_shards - 1) / num_shards) : 0;
    SpillWriter writer(dir, num_shards, options.prefix_attributes, cap);
    KANON_RETURN_NOT_OK(writer.Open());
    KANON_RETURN_NOT_OK(in.partition(&writer));
    if (writer.rows_written() != in.rows) {
      return Status::IOError("input changed between passes: counted " +
                             std::to_string(in.rows) + " rows, partitioned " +
                             std::to_string(writer.rows_written()));
    }
    KANON_ASSIGN_OR_RETURN(manifest.shards, writer.Commit());
    manifest.version = 1;
    manifest.input_checksum = in.input_checksum;
    manifest.rows = in.rows;
    manifest.fingerprint = fingerprint;
    KANON_RETURN_NOT_OK(WriteFileAtomic(manifest_path, manifest.Format()));
    span.set_items(in.rows);
  }

  // --- Phase 2: global cost tables. -------------------------------------
  // Loss costs must reflect the *global* value distribution (the measures
  // are frequency-dependent), so every shard optimizes — and the final
  // loss is reported — against one shared table, not per-shard
  // approximations. On the CSV path the coded dataset is rebuilt from the
  // spills: row order differs from the input, which is irrelevant to the
  // per-(attribute, subset) costs.
  Dataset rebuilt(in.scheme->schema());
  const Dataset* cost_dataset = in.dataset;
  if (cost_dataset == nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      KANON_ASSIGN_OR_RETURN(
          SpillRows rows,
          ReadSpill(SpillPath(dir, s), in.scheme->num_attributes()));
      for (size_t i = 0; i < rows.labels.size(); ++i) {
        Status status = rebuilt.AppendRowLabels(rows.labels[i]);
        if (!status.ok()) {
          return Status(status.code(), "shard " + std::to_string(s) +
                                           " spill row " + std::to_string(i) +
                                           ": " + status.message());
        }
      }
    }
    cost_dataset = &rebuilt;
  }
  PrecomputedLoss loss(in.scheme, *cost_dataset, *in.measure,
                       base.num_threads);

  // --- Phase 3: per-shard runs with checkpoint/resume. -------------------
  ShardedResult result(in.scheme);
  result.rows = in.rows;
  result.num_shards = num_shards;
  std::vector<GeneralizedRecord> merged(in.rows);
  std::vector<uint8_t> placed(in.rows, 0);
  RunContext* parent = base.run_context;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardOutcome outcome;
    outcome.rows = manifest.shards[s].rows;
    if (outcome.rows == 0) {
      result.shards.push_back(outcome);
      continue;
    }
    PhaseSpan run_span(tracer, "shard/run");
    run_span.set_items(outcome.rows);
    LoadedShard shard{GeneralizedTable(in.scheme), ShardMeta()};
    bool loaded = resumed_manifest &&
                  TryLoadCheckpoint(in.scheme, dir, s, outcome.rows, &shard);
    KANON_ASSIGN_OR_RETURN(
        SpillRows spill_rows,
        ReadSpill(SpillPath(dir, s), in.scheme->num_attributes()));
    if (spill_rows.global_rows.size() != outcome.rows) {
      return Status::IOError(
          "spill for shard " + std::to_string(s) + " has " +
          std::to_string(spill_rows.global_rows.size()) +
          " rows; manifest says " + std::to_string(outcome.rows));
    }
    if (loaded) {
      outcome.resumed = true;
      ++result.shards_resumed;
      if (parent != nullptr) {
        // Charge the steps the original run spent on this shard, so the
        // budget accounting of a resumed run matches a fresh one and later
        // shards fork identical budget shares.
        parent->ChargeSteps(static_cast<size_t>(shard.meta.steps));
      }
    } else {
      KANON_ASSIGN_OR_RETURN(
          Dataset shard_dataset,
          ShardDataset(in.scheme->schema(), spill_rows, s));
      const double budget_share =
          1.0 / static_cast<double>(num_shards - s);
      KANON_ASSIGN_OR_RETURN(
          shard, RunShardFresh(shard_dataset, in.scheme, loss, base,
                               options.max_attempts, budget_share,
                               &result.shard_retries));
      PhaseSpan checkpoint_span(tracer, "shard/checkpoint");
      KANON_RETURN_NOT_OK(CommitCheckpoint(dir, s, shard.table, &shard.meta));
    }
    if (shard.meta.suppressed) ++result.shards_suppressed;
    result.degraded = result.degraded || shard.meta.degraded;
    if (result.stop_reason == StopReason::kNone) {
      result.stop_reason = shard.meta.stop_reason;
    }
    outcome.attempts = shard.meta.attempts;
    outcome.suppressed = shard.meta.suppressed;
    outcome.degraded = shard.meta.degraded;
    outcome.stop_reason = shard.meta.stop_reason;
    result.shards.push_back(outcome);
    for (size_t i = 0; i < spill_rows.global_rows.size(); ++i) {
      const uint64_t row = spill_rows.global_rows[i];
      if (row >= in.rows || placed[row]) {
        return Status::IOError("spill for shard " + std::to_string(s) +
                               " places row " + std::to_string(row) +
                               (row < in.rows ? " twice" : " out of range"));
      }
      placed[row] = 1;
      merged[row] = shard.table.record(i);
    }
  }

  // --- Phase 4: merge in input row order. --------------------------------
  {
    PhaseSpan span(tracer, "shard/merge");
    span.set_items(in.rows);
    for (size_t i = 0; i < in.rows; ++i) {
      if (!placed[i]) {
        return Status::IOError("row " + std::to_string(i) +
                               " missing from every shard");
      }
      result.table.AppendRecord(merged[i]);
    }
    merged.clear();
  }

  // --- Phase 5: cross-shard boundary repair. -----------------------------
  {
    PhaseSpan span(tracer, "shard/repair");
    KANON_ASSIGN_OR_RETURN(
        result.boundary_repaired,
        RepairBoundaries(&result.table, *in.scheme, base.k));
    span.set_items(result.boundary_repaired);
    if (result.boundary_repaired > 0) result.degraded = true;
  }

  const GeneralizedRecord suppressed_record = in.scheme->Suppressed();
  for (size_t i = 0; i < result.table.num_rows(); ++i) {
    if (result.table.record(i) == suppressed_record) {
      ++result.records_suppressed;
    }
  }
  result.loss = loss.TableLoss(result.table);

  if (base.metrics != nullptr) {
    base.metrics->GetCounter("shard.shards")->Set(num_shards);
    base.metrics->GetCounter("shard.retries")->Set(result.shard_retries);
    base.metrics->GetCounter("shard.suppressed")
        ->Set(result.shards_suppressed);
    // Resumption depends on what a previous run left on disk, not on this
    // run's input — outside the thread-determinism contract's scope but
    // flagged nondeterministic to keep fingerprints portable.
    base.metrics->GetCounter("shard.resumed", /*deterministic=*/false)
        ->Set(result.shards_resumed);
    base.metrics->GetCounter("shard.repaired_rows")
        ->Set(result.boundary_repaired);
  }
  return result;
}

}  // namespace

Result<ShardedResult> ShardedAnonymize(
    const Dataset& dataset,
    std::shared_ptr<const GeneralizationScheme> scheme,
    const LossMeasure& measure, const AnonymizerConfig& base,
    const ShardOptions& options) {
  RunInputs in;
  in.scheme = std::move(scheme);
  in.measure = &measure;
  in.base = &base;
  in.options = &options;
  in.rows = dataset.num_rows();
  in.dataset = &dataset;
  in.input_checksum = DatasetChecksum(dataset);
  const Schema& schema = dataset.schema();
  in.partition = [&dataset, &schema](SpillWriter* writer) -> Status {
    std::vector<std::string> labels(schema.num_attributes());
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      for (size_t j = 0; j < schema.num_attributes(); ++j) {
        labels[j] = schema.attribute(j).label(dataset.at(i, j));
      }
      KANON_RETURN_NOT_OK(writer->Append(i, labels));
    }
    return Status::OK();
  };
  return Run(in);
}

Result<ShardedResult> ShardedAnonymizeCsvFile(
    const std::string& csv_path,
    std::shared_ptr<const GeneralizationScheme> scheme,
    const CsvOptions& csv_options, const LossMeasure& measure,
    const AnonymizerConfig& base, const ShardOptions& options) {
  if (scheme == nullptr) {
    return Status::InvalidArgument("scheme must not be null");
  }
  RunInputs in;
  in.scheme = scheme;
  in.measure = &measure;
  in.base = &base;
  in.options = &options;
  in.dataset = nullptr;
  KANON_ASSIGN_OR_RETURN(in.input_checksum, ChecksumFile(csv_path));
  // Counting pass: the shard count (and the manifest) need the row count
  // before partitioning starts. One extra streaming read of the text —
  // nothing is held in memory.
  uint64_t rows = 0;
  KANON_RETURN_NOT_OK(ForEachCsvRow(
      csv_path, scheme->schema(), csv_options,
      [&rows](uint64_t, const std::vector<std::string>&) -> Status {
        ++rows;
        return Status::OK();
      }));
  in.rows = rows;
  in.partition = [&csv_path, &scheme, &csv_options](
                     SpillWriter* writer) -> Status {
    return ForEachCsvRow(
        csv_path, scheme->schema(), csv_options,
        [writer](uint64_t row, const std::vector<std::string>& fields)
            -> Status { return writer->Append(row, fields); });
  };
  return Run(in);
}

}  // namespace shard
}  // namespace kanon
