#ifndef KANON_SHARD_DRIVER_H_
#define KANON_SHARD_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kanon/algo/anonymizer.h"
#include "kanon/common/result.h"
#include "kanon/data/csv.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/measure.h"

namespace kanon {
namespace shard {

/// Out-of-core sharded anonymization (docs/sharding.md).
///
/// The driver splits the input into hash-partitioned shards, anonymizes
/// each shard independently with the configured engine under a forked
/// child budget, journals every intermediate to `work_dir` through the
/// atomic-commit protocol of shard_io.h, and merges the per-shard tables
/// into one output. A killed run resumes from its checkpoints and
/// reproduces byte-identical output (same cells; see the determinism
/// contract in docs/parallelism.md — the worker thread count may even
/// change between the original run and the resume).
///
/// Only the per-record k-anonymity methods (agglomerative, modified
/// agglomerative, forest, full-domain) are accepted: a union of
/// k-anonymous tables is k-anonymous under Definition 4.1 (identical-
/// record groups only grow when tables merge), so per-shard runs compose
/// into a global guarantee. The relational notions ((1,k), (k,1), (k,k),
/// global) do not compose this way and are rejected up front.
///
/// Per-shard fault isolation — the degradation ladder:
///   1. run the engine with a child context holding this shard's share of
///      the remaining parent budget;
///   2. on an error (including injected faults), retry up to
///      `max_attempts` times, halving the budget share each retry;
///   3. as a last resort, publish the shard fully suppressed (every row
///      R*) — lossy but k-anonymous, and the run completes.
/// A deadline/step-budget stop is not an error: the engine finalizes a
/// degraded-but-valid table, which the driver accepts without retry.
///
/// After the merge, a boundary-repair pass restores the *global*
/// guarantee: rows whose merged identical-record group is smaller than k
/// (possible when a suppressed or degraded shard published undersized
/// groups) are pooled, joined, and — if the pool itself is undersized —
/// absorbed into the smallest regular group. The published table is
/// k-anonymous whenever it has at least k rows, no matter which shards
/// failed.

struct ShardOptions {
  /// Shard count; 0 derives it from `memory_budget_mb` (see
  /// DeriveNumShards) or falls back to 1.
  size_t num_shards = 0;
  /// Approximate per-shard engine working-set budget. Only consulted when
  /// `num_shards` is 0.
  size_t memory_budget_mb = 0;
  /// Journal directory (spills, checkpoints, manifest). Required.
  std::string work_dir;
  /// Continue a previous run in `work_dir`: a valid manifest reuses the
  /// spills and every committed shard checkpoint. A missing manifest
  /// silently starts fresh (the previous run died before partitioning
  /// committed); a *corrupt* manifest or mismatched input/configuration is
  /// an error, never silently clobbered. When `num_shards` is 0 the resume
  /// adopts the manifest's recorded shard count, so `--resume=DIR` alone
  /// continues a run whose geometry was chosen explicitly or derived from a
  /// memory budget; an explicit `num_shards` that disagrees with the
  /// manifest is still rejected.
  bool resume = false;
  /// Engine attempts per shard before the shard is suppressed outright.
  size_t max_attempts = 3;
  /// Quasi-identifier prefix width for the hash partitioner.
  size_t prefix_attributes = 3;
};

/// Per-shard outcome, in shard order.
struct ShardOutcome {
  uint64_t rows = 0;
  uint64_t attempts = 0;
  bool resumed = false;
  bool suppressed = false;
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
};

struct ShardedResult {
  explicit ShardedResult(std::shared_ptr<const GeneralizationScheme> scheme)
      : table(std::move(scheme)) {}

  /// The merged, boundary-repaired table over all input rows, in input
  /// row order.
  GeneralizedTable table;
  /// Π(D, g(D)) of `table` under the requested measure (computed on the
  /// global cost tables, not a per-shard approximation).
  double loss = 0.0;
  size_t rows = 0;
  size_t num_shards = 0;
  /// True when any shard degraded, was suppressed, or the parent budget
  /// ran out: the output is valid but lossier than a clean run's.
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
  size_t shards_resumed = 0;
  size_t shards_suppressed = 0;
  size_t shard_retries = 0;
  /// Rows coarsened by the cross-shard boundary-repair pass.
  size_t boundary_repaired = 0;
  /// Rows published fully suppressed (R*) in the final table. This is a
  /// recount on the merged table, so the accounting is exact at every
  /// shard count — the invariant kanon_check's sharding properties pin.
  size_t records_suppressed = 0;
  std::vector<ShardOutcome> shards;
};

/// Sharded anonymization of an in-memory dataset. `base` supplies the
/// engine configuration (k, method, distance, threads, telemetry, and the
/// optional parent RunContext whose budget the shards share).
Result<ShardedResult> ShardedAnonymize(
    const Dataset& dataset,
    std::shared_ptr<const GeneralizationScheme> scheme,
    const LossMeasure& measure, const AnonymizerConfig& base,
    const ShardOptions& options);

/// Sharded anonymization streaming straight from a CSV file: rows flow
/// from the file into the shard spills without the text table ever being
/// resident; the coded working set (one shard's dataset plus the output
/// cells) is what the memory budget bounds.
Result<ShardedResult> ShardedAnonymizeCsvFile(
    const std::string& csv_path,
    std::shared_ptr<const GeneralizationScheme> scheme,
    const CsvOptions& csv_options, const LossMeasure& measure,
    const AnonymizerConfig& base, const ShardOptions& options);

}  // namespace shard
}  // namespace kanon

#endif  // KANON_SHARD_DRIVER_H_
