#include "kanon/serve/protocol.h"

namespace kanon {
namespace serve {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kInvalidRequest:
      return "invalid_request";
    case ErrorCode::kUnknownMethod:
      return "unknown_method";
    case ErrorCode::kInvalidParams:
      return "invalid_params";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kFrameTooLarge:
      return "frame_too_large";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

Result<Request> DecodeRequest(const std::string& payload, ErrorCode* code) {
  *code = ErrorCode::kParseError;
  KANON_ASSIGN_OR_RETURN(Json doc, Json::Parse(payload));
  *code = ErrorCode::kInvalidRequest;
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const Json* method = doc.Find("method");
  if (method == nullptr || !method->is_string() ||
      method->string_value().empty()) {
    return Status::InvalidArgument("request needs a string \"method\"");
  }
  Request request;
  if (const Json* id = doc.Find("id"); id != nullptr) request.id = *id;
  request.method = method->string_value();
  if (const Json* params = doc.Find("params"); params != nullptr) {
    if (!params->is_object()) {
      return Status::InvalidArgument("\"params\" must be an object");
    }
    request.params = *params;
  } else {
    request.params = Json::Object();
  }
  return request;
}

std::string OkResponse(const Json& id, Json result) {
  Json response = Json::Object();
  response.Set("id", id);
  response.Set("ok", Json::Bool(true));
  response.Set("result", std::move(result));
  return response.Dump();
}

std::string ErrorResponse(const Json& id, ErrorCode code,
                          const std::string& message) {
  Json error = Json::Object();
  error.Set("code", Json::Str(ErrorCodeName(code)));
  error.Set("message", Json::Str(message));
  Json response = Json::Object();
  response.Set("id", id);
  response.Set("ok", Json::Bool(false));
  response.Set("error", std::move(error));
  return response.Dump();
}

}  // namespace serve
}  // namespace kanon
