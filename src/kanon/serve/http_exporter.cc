#include "kanon/serve/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "kanon/telemetry/prometheus.h"

namespace kanon {
namespace serve {
namespace {

/// A scrape request fits in one line; anything bigger is not a scraper.
constexpr size_t kMaxRequestBytes = 4096;

void WriteResponse(int fd, const char* status_line,
                   const std::string& content_type,
                   const std::string& body) {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.0 ");
  out.append(status_line);
  out.append("\r\nContent-Type: ");
  out.append(content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

HttpExporter::HttpExporter(HttpExporterOptions options)
    : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Served inline: a scrape is one short exchange, and serializing
    // scrapes keeps the exporter from ever amplifying an overload.
    timeval timeout;
    timeout.tv_sec = 2;
    timeout.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ServeClient(fd);
    ::close(fd);
  }
}

void HttpExporter::ServeClient(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    // A bare "GET /path\r\n" (HTTP/0.9 style, what a plain netcat probe
    // sends) has no header block; one complete line is enough to route.
    if (request.find('\n') != std::string::npos) break;
  }
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") != 0) {
    WriteResponse(fd, "405 Method Not Allowed", "text/plain",
                  "only GET is served\n");
    return;
  }
  const size_t path_end = line.find(' ', 4);
  const std::string path = line.substr(
      4, path_end == std::string::npos ? std::string::npos : path_end - 4);

  if (path == "/healthz") {
    WriteResponse(fd, "200 OK", "text/plain", "ok\n");
    return;
  }
  if (path == "/metrics") {
    if (options_.before_scrape) options_.before_scrape();
    const std::string body = options_.metrics != nullptr
                                 ? WritePrometheusText(*options_.metrics)
                                 : std::string();
    WriteResponse(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                  body);
    return;
  }
  if (path == "/flight" && options_.flight != nullptr) {
    std::string body;
    for (const std::string& event : options_.flight->Snapshot()) {
      body.append(event);
      body.push_back('\n');
    }
    WriteResponse(fd, "200 OK", "application/x-ndjson", body);
    return;
  }
  WriteResponse(fd, "404 Not Found", "text/plain", "not found\n");
}

}  // namespace serve
}  // namespace kanon
