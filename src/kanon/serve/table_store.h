#ifndef KANON_SERVE_TABLE_STORE_H_
#define KANON_SERVE_TABLE_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/generalized_table.h"

namespace kanon {
namespace serve {

/// One published anonymization: the original dataset D, the released table
/// g(D), and the scheme both are coded against. This is what the fast
/// read-path queries (`verify`, `attack`) run over — the paper's
/// Definitions 4.1/4.4/4.6 checks and the Section IV-A match-reduction
/// attack all take exactly this triple.
struct PublishedTable {
  std::shared_ptr<const GeneralizationScheme> scheme;
  Dataset dataset;
  GeneralizedTable table;

  PublishedTable(std::shared_ptr<const GeneralizationScheme> scheme_in,
                 Dataset dataset_in, GeneralizedTable table_in)
      : scheme(std::move(scheme_in)),
        dataset(std::move(dataset_in)),
        table(std::move(table_in)) {}
};

/// A bounded, thread-safe, in-memory registry of published tables, keyed
/// by client-chosen names. Entries are immutable once registered (lookups
/// hand out shared_ptr<const>, so a re-registration never invalidates a
/// query already running against the old table).
class TableStore {
 public:
  explicit TableStore(size_t capacity) : capacity_(capacity) {}

  /// Registers (or replaces) `name`. Fails with FailedPrecondition once
  /// the store holds `capacity` distinct names — the read path's
  /// admission bound, mirroring the job queue's.
  Status Register(const std::string& name,
                  std::shared_ptr<const PublishedTable> table);

  /// nullptr when `name` was never registered.
  std::shared_ptr<const PublishedTable> Find(const std::string& name) const;

  bool Remove(const std::string& name);
  size_t size() const;
  std::vector<std::string> Names() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const PublishedTable>> tables_;
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_TABLE_STORE_H_
