#include "kanon/serve/job_manager.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "kanon/generalization/generalized_csv.h"
#include "kanon/serve/params.h"
#include "kanon/telemetry/trace_export.h"

namespace kanon {
namespace serve {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// Internal job record. The manager's mutex orders queue membership and
/// state transitions; the job's own mutex guards the fields `poll` reads,
/// so a running job's progress updates never contend with the queue.
struct JobManager::Job {
  explicit Job(uint64_t id_in, JobRequest request_in)
      : id(id_in), request(std::move(request_in)) {}

  const uint64_t id;
  JobRequest request;
  std::shared_ptr<CancellationToken> cancel;

  mutable std::mutex mu;
  JobState state = JobState::kQueued;
  std::string progress_stage;
  size_t progress_steps = 0;
  JobSnapshot outcome;  // Filled when the job reaches kDone/kFailed.
  std::string table_csv;
};

JobManager::JobManager(const JobManagerOptions& options,
                       RunContext* server_context, MetricsRegistry* metrics,
                       TableStore* store)
    : options_(options),
      server_context_(server_context),
      metrics_(metrics),
      store_(store) {
  if (metrics_ != nullptr) {
    jobs_accepted_ = metrics_->GetCounter("serve.jobs_accepted");
    jobs_rejected_ = metrics_->GetCounter("serve.jobs_rejected");
    jobs_completed_ = metrics_->GetCounter("serve.jobs_completed");
    jobs_failed_ = metrics_->GetCounter("serve.jobs_failed");
    jobs_degraded_ = metrics_->GetCounter("serve.jobs_degraded");
    jobs_deadline_expired_ =
        metrics_->GetCounter("serve.jobs_deadline_expired");
    jobs_cancelled_ = metrics_->GetCounter("serve.jobs_cancelled");
    loss_cache_hits_ = metrics_->GetCounter("serve.loss_cache_hits");
    loss_cache_misses_ = metrics_->GetCounter("serve.loss_cache_misses");
    queue_depth_gauge_ =
        metrics_->GetGauge("serve.queue_depth", /*deterministic=*/false);
    jobs_running_gauge_ =
        metrics_->GetGauge("serve.jobs_running", /*deterministic=*/false);
    job_seconds_ = metrics_->GetHistogram(
        "serve.job_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0},
        /*deterministic=*/false);
    job_seconds_window_ = metrics_->GetRollingHistogram(
        "serve.job_seconds_window", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0});
  }
  const size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobManager::~JobManager() { Shutdown(); }

Result<uint64_t> JobManager::Submit(JobRequest request, SubmitDenied* denied) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    *denied = SubmitDenied::kDraining;
    if (jobs_rejected_ != nullptr) jobs_rejected_->Add();
    KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kWarn,
                    "job.rejected", LogField::Str("reason", "draining"));
    return Status::FailedPrecondition("server is draining");
  }
  if (queue_.size() >= options_.queue_bound) {
    *denied = SubmitDenied::kOverloaded;
    if (jobs_rejected_ != nullptr) jobs_rejected_->Add();
    KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kWarn,
                    "job.rejected", LogField::Str("reason", "overloaded"),
                    LogField::U64("queue_depth", queue_.size()));
    return Status::FailedPrecondition(
        "job queue is full (" + std::to_string(queue_.size()) + " of " +
        std::to_string(options_.queue_bound) + " slots)");
  }
  *denied = SubmitDenied::kNone;
  const uint64_t id = next_id_++;
  auto job = std::make_shared<Job>(id, std::move(request));
  // The token exists from admission on (a queued job must be cancellable)
  // and chains to the server's root token, so a server-level cancel stops
  // every job while cancelling one job touches nothing else.
  std::shared_ptr<const CancellationToken> parent;
  if (server_context_ != nullptr) parent = server_context_->cancel_token();
  job->cancel = std::make_shared<CancellationToken>(std::move(parent));
  job->outcome.id = id;
  job->outcome.rows = job->request.dataset.num_rows();
  jobs_.emplace(id, job);
  queue_.push_back(std::move(job));
  if (jobs_accepted_ != nullptr) jobs_accepted_->Add();
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  {
    const Job& admitted = *jobs_.at(id);
    KANON_LOG_EVENT(
        options_.logger, options_.flight, LogLevel::kInfo, "job.admitted",
        LogField::U64("job_id", id),
        LogField::U64("rows", admitted.request.dataset.num_rows()),
        LogField::U64("k", admitted.request.k),
        LogField::Str("method",
                      AnonymizationMethodName(admitted.request.method)),
        LogField::U64("queue_depth", queue_.size()),
        LogField::Bool("capture_trace", admitted.request.capture_trace));
  }
  work_available_.notify_one();
  return id;
}

void JobManager::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      ++running_;
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
      if (jobs_running_gauge_ != nullptr) {
        jobs_running_gauge_->Set(static_cast<double>(running_));
      }
    }
    RunJob(job.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (jobs_running_gauge_ != nullptr) {
        jobs_running_gauge_->Set(static_cast<double>(running_));
      }
    }
    job_finished_.notify_all();
  }
}

std::shared_ptr<const PrecomputedLoss> JobManager::LossFor(
    const JobRequest& request) {
  // Key the memo on scheme *identity* (the SchemeCache interns schemes, so
  // equal spec+schema shapes share a pointer), the exact cell contents, and
  // the measure. A miss can never alias: a different scheme object hashes
  // differently even when semantically equal, which only costs a rebuild.
  const GeneralizationScheme* scheme_ptr = request.scheme.get();
  uint64_t key = Fnv1a(&scheme_ptr, sizeof(scheme_ptr));
  key = Fnv1a(request.measure_name.data(), request.measure_name.size(), key);
  key ^= DatasetFingerprint(request.dataset);
  {
    std::lock_guard<std::mutex> lock(loss_mu_);
    for (const LossEntry& entry : loss_cache_) {
      if (entry.key == key) {
        if (loss_cache_hits_ != nullptr) loss_cache_hits_->Add();
        return entry.loss;
      }
    }
  }
  if (loss_cache_misses_ != nullptr) loss_cache_misses_->Add();
  Result<std::unique_ptr<LossMeasure>> measure =
      MakeMeasure(request.measure_name);
  if (!measure.ok()) return nullptr;
  auto loss = std::make_shared<const PrecomputedLoss>(
      request.scheme, request.dataset, *measure.value(),
      options_.job_threads);
  std::lock_guard<std::mutex> lock(loss_mu_);
  if (loss_cache_.size() >= options_.loss_cache_capacity &&
      !loss_cache_.empty()) {
    loss_cache_.pop_front();
  }
  loss_cache_.push_back(LossEntry{key, loss});
  return loss;
}

void JobManager::RunJob(Job* job) {
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = JobState::kRunning;
  }
  KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kInfo,
                  "job.started", LogField::U64("job_id", job->id));

  // Per-job trace capture. The Tracer is constructed here, on the worker
  // thread, because construction binds lane 0 — the deterministic
  // coordinator lane — to the constructing thread, and this thread is the
  // one that runs the pipeline.
  std::unique_ptr<Tracer> tracer;
  if (job->request.capture_trace) tracer = std::make_unique<Tracer>();

  // Execution controls: fork the server's root budget (linked cancellation,
  // child deadline/steps can never exceed what the server has left), then
  // intersect with the per-request bounds.
  RunContext ctx;
  if (server_context_ != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ctx = server_context_->Fork(1.0);
  }
  ctx.set_cancel_token(job->cancel);
  int64_t timeout_ms = job->request.timeout_ms;
  if (timeout_ms <= 0) timeout_ms = options_.default_timeout_ms;
  if (timeout_ms > 0) {
    const double limit = static_cast<double>(timeout_ms) / 1000.0;
    ctx.ArmDeadline(std::min(limit, ctx.RemainingSeconds()));
  }
  if (job->request.max_steps > 0) {
    const size_t steps = static_cast<size_t>(job->request.max_steps);
    if (steps < ctx.RemainingSteps()) ctx.set_step_budget(steps);
  }
  Logger* const logger = options_.logger;
  FlightRecorder* const flight = options_.flight;
  ctx.set_progress_observer(
      [job, logger, flight](const RunProgress& progress) {
        bool stage_changed = false;
        {
          std::lock_guard<std::mutex> lock(job->mu);
          stage_changed = job->progress_stage != progress.stage;
          job->progress_stage = progress.stage;
          job->progress_steps = progress.steps;
        }
        // Stage transitions (not every checkpoint — the observer fires
        // every 64 steps) go to the flight recorder: they are exactly
        // what a post-mortem needs to place the crash inside the run.
        if (stage_changed) {
          KANON_LOG_EVENT(logger, flight, LogLevel::kDebug, "job.stage",
                          LogField::U64("job_id", job->id),
                          LogField::Str("stage", progress.stage),
                          LogField::U64("steps", progress.steps));
        }
      },
      /*interval_steps=*/64);

  // Test hook: occupy the worker slot, cancellably, before running — how
  // the concurrency suite makes "queue full" a deterministic state.
  if (options_.enable_test_hooks && job->request.debug_sleep_ms > 0) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(job->request.debug_sleep_ms);
    while (std::chrono::steady_clock::now() < until &&
           ctx.StopRequested() == StopReason::kNone) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  AnonymizerConfig config;
  config.k = job->request.k;
  config.method = job->request.method;
  config.distance = job->request.distance;
  config.attr_weights = job->request.attr_weights;
  config.num_threads = options_.job_threads;
  config.run_context = &ctx;
  config.metrics = metrics_;  // Service-wide engine.*/run.* aggregates.
  config.tracer = tracer.get();

  const std::shared_ptr<const PrecomputedLoss> loss =
      LossFor(job->request);
  Result<AnonymizationResult> result =
      loss == nullptr
          ? Result<AnonymizationResult>(Status::InvalidArgument(
                "unknown measure '" + job->request.measure_name + "'"))
          : Anonymize(job->request.dataset, *loss, config);

  // From here on the run is finished, so reading the tracer is safe; the
  // trace is rendered and cached for every terminal state — the trace of
  // a failed job is precisely the one worth retrieving.
  if (!result.ok()) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->state = JobState::kFailed;
      job->outcome.state = JobState::kFailed;
      job->outcome.error = result.status().ToString();
    }
    if (jobs_failed_ != nullptr) jobs_failed_->Add();
    if (tracer != nullptr) StoreTrace(job->id, ChromeTraceJson(*tracer));
    KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kError,
                    "job.failed", LogField::U64("job_id", job->id),
                    LogField::Str("error", result.status().ToString()));
    return;
  }

  std::ostringstream csv;
  const Status csv_status = WriteGeneralizedCsv(result->table, csv);
  if (!csv_status.ok()) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->state = JobState::kFailed;
      job->outcome.state = JobState::kFailed;
      job->outcome.error = csv_status.ToString();
    }
    if (jobs_failed_ != nullptr) jobs_failed_->Add();
    if (tracer != nullptr) StoreTrace(job->id, ChromeTraceJson(*tracer));
    KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kError,
                    "job.failed", LogField::U64("job_id", job->id),
                    LogField::Str("error", csv_status.ToString()));
    return;
  }

  if (!job->request.publish_as.empty() && store_ != nullptr) {
    // Publishing moves the dataset and table into the read-path store; the
    // job keeps only the serialized CSV. A full store is not a job failure
    // — the result is still fetchable — so it only logs as one would.
    Status published = store_->Register(
        job->request.publish_as,
        std::make_shared<PublishedTable>(job->request.scheme,
                                         std::move(job->request.dataset),
                                         result->table));
    if (!published.ok()) {
      std::lock_guard<std::mutex> lock(job->mu);
      job->outcome.error = "publish failed: " + published.ToString();
    }
  }

  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = JobState::kDone;
    job->table_csv = csv.str();
    JobSnapshot& out = job->outcome;
    out.state = JobState::kDone;
    out.loss = result->loss;
    out.elapsed_seconds = result->elapsed_seconds;
    out.degraded = result->degraded;
    out.degraded_stage = result->degraded_stage;
    out.stop_reason = StopReasonName(result->stop_reason);
    out.iterations_completed = result->iterations_completed;
    out.records_suppressed = result->records_suppressed;
  }
  if (jobs_completed_ != nullptr) jobs_completed_->Add();
  if (result->degraded && jobs_degraded_ != nullptr) jobs_degraded_->Add();
  if (result->stop_reason == StopReason::kDeadline &&
      jobs_deadline_expired_ != nullptr) {
    jobs_deadline_expired_->Add();
  }
  if (result->stop_reason == StopReason::kCancelled &&
      jobs_cancelled_ != nullptr) {
    jobs_cancelled_->Add();
  }
  if (job_seconds_ != nullptr) job_seconds_->Observe(result->elapsed_seconds);
  if (job_seconds_window_ != nullptr) {
    job_seconds_window_->Observe(result->elapsed_seconds);
  }
  if (tracer != nullptr) StoreTrace(job->id, ChromeTraceJson(*tracer));
  KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kInfo,
                  "job.done", LogField::U64("job_id", job->id),
                  LogField::Dbl("seconds", result->elapsed_seconds),
                  LogField::Dbl("loss", result->loss),
                  LogField::Bool("degraded", result->degraded),
                  LogField::Str("stop_reason",
                                StopReasonName(result->stop_reason)));
  if (result->degraded) {
    KANON_LOG_EVENT(options_.logger, options_.flight, LogLevel::kWarn,
                    "job.degraded", LogField::U64("job_id", job->id),
                    LogField::Str("stage", result->degraded_stage),
                    LogField::Str("stop_reason",
                                  StopReasonName(result->stop_reason)));
  }
}

void JobManager::StoreTrace(uint64_t job_id, std::string trace_json) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (trace_cache_.size() >= options_.trace_cache_capacity &&
      !trace_cache_.empty()) {
    trace_cache_.pop_front();
  }
  trace_cache_.push_back(TraceEntry{
      job_id, std::make_shared<const std::string>(std::move(trace_json))});
}

Result<std::string> JobManager::FetchTrace(uint64_t id) const {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(id));
    }
    job = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (!job->request.capture_trace) {
      return Status::FailedPrecondition(
          "job " + std::to_string(id) +
          " did not capture a trace; submit with capture_trace");
    }
    if (job->state != JobState::kDone && job->state != JobState::kFailed) {
      return Status::FailedPrecondition(
          std::string("job is still ") + JobStateName(job->state));
    }
  }
  std::lock_guard<std::mutex> lock(trace_mu_);
  for (auto it = trace_cache_.begin(); it != trace_cache_.end(); ++it) {
    if (it->job_id == id) {
      // Refresh recency so repeatedly inspected traces survive churn.
      trace_cache_.splice(trace_cache_.end(), trace_cache_, it);
      return std::string(*trace_cache_.back().trace_json);
    }
  }
  return Status::NotFound("trace for job " + std::to_string(id) +
                          " was evicted (trace cache holds " +
                          std::to_string(options_.trace_cache_capacity) +
                          ")");
}

bool JobManager::Snapshot(uint64_t id, JobSnapshot* out) const {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
  }
  std::lock_guard<std::mutex> lock(job->mu);
  *out = job->outcome;
  out->id = id;
  out->state = job->state;
  out->progress_stage = job->progress_stage;
  out->progress_steps = job->progress_steps;
  return true;
}

Result<std::string> JobManager::FetchCsv(uint64_t id) const {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(id));
    }
    job = it->second;
  }
  std::lock_guard<std::mutex> lock(job->mu);
  if (job->state == JobState::kFailed) {
    return Status::FailedPrecondition("job failed: " + job->outcome.error);
  }
  if (job->state != JobState::kDone) {
    return Status::FailedPrecondition(
        std::string("job is still ") + JobStateName(job->state));
  }
  return job->table_csv;
}

bool JobManager::Cancel(uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
  }
  job->cancel->Cancel();
  return true;
}

void JobManager::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  work_available_.notify_all();
}

bool JobManager::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void JobManager::Shutdown() {
  BeginDrain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (workers_joined_) return;
    workers_joined_ = true;
  }
  for (std::thread& worker : workers_) worker.join();
}

bool JobManager::AllTerminal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() && running_ == 0;
}

size_t JobManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace serve
}  // namespace kanon
