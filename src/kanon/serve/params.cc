#include "kanon/serve/params.h"

#include <sstream>

#include "kanon/data/csv.h"
#include "kanon/generalization/scheme_spec.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"
#include "kanon/loss/suppression_measure.h"
#include "kanon/loss/tree_measure.h"

namespace kanon {
namespace serve {

Result<AnonymizationMethod> ParseMethodName(const std::string& name) {
  if (name == "agglomerative") return AnonymizationMethod::kAgglomerative;
  if (name == "modified") return AnonymizationMethod::kModifiedAgglomerative;
  if (name == "forest") return AnonymizationMethod::kForest;
  if (name == "kk-nn") return AnonymizationMethod::kKKNearestNeighbors;
  if (name == "kk-greedy") return AnonymizationMethod::kKKGreedyExpansion;
  if (name == "global") return AnonymizationMethod::kGlobal;
  if (name == "full-domain") return AnonymizationMethod::kFullDomain;
  return Status::InvalidArgument("unknown method '" + name + "'");
}

Result<DistanceFunction> ParseDistanceName(const std::string& name) {
  if (name == "1") return DistanceFunction::kWeighted;
  if (name == "2") return DistanceFunction::kPlain;
  if (name == "3") return DistanceFunction::kLogWeighted;
  if (name == "4") return DistanceFunction::kRatio;
  if (name == "nc") return DistanceFunction::kNergizClifton;
  return Status::InvalidArgument("unknown distance '" + name + "'");
}

Result<AnonymityNotion> ParseNotionName(const std::string& name) {
  if (name == "k-anonymity") return AnonymityNotion::kKAnonymity;
  if (name == "1k") return AnonymityNotion::kOneK;
  if (name == "k1") return AnonymityNotion::kKOne;
  if (name == "kk") return AnonymityNotion::kKK;
  if (name == "global-1k") return AnonymityNotion::kGlobalOneK;
  return Status::InvalidArgument("unknown notion '" + name + "'");
}

Result<std::unique_ptr<LossMeasure>> MakeMeasure(const std::string& name) {
  std::unique_ptr<LossMeasure> measure;
  if (name == "EM") measure = std::make_unique<EntropyMeasure>();
  if (name == "LM") measure = std::make_unique<LmMeasure>();
  if (name == "TM") measure = std::make_unique<TreeMeasure>();
  if (name == "SUP") measure = std::make_unique<SuppressionMeasure>();
  if (measure == nullptr) {
    return Status::InvalidArgument("unknown measure '" + name + "'");
  }
  return measure;
}

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t DatasetFingerprint(const Dataset& dataset) {
  const size_t n = dataset.num_rows();
  const size_t r = dataset.num_attributes();
  uint64_t hash = Fnv1a(&n, sizeof(n));
  hash = Fnv1a(&r, sizeof(r), hash);
  hash = Fnv1a(nullptr, 0, SchemaFingerprint(dataset.schema()) ^ hash);
  for (size_t i = 0; i < n; ++i) {
    const RowView row = dataset.row_view(i);
    hash = Fnv1a(row.data(), r * sizeof(ValueCode), hash);
  }
  return hash;
}

uint64_t SchemaFingerprint(const Schema& schema) {
  uint64_t hash = Fnv1a(nullptr, 0);
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const AttributeDomain& domain = schema.attribute(j);
    hash = Fnv1a(domain.name().data(), domain.name().size(), hash);
    for (const std::string& label : domain.labels()) {
      hash = Fnv1a(label.data(), label.size(), hash);
      hash = Fnv1a("\x1f", 1, hash);  // Separator so labels cannot run together.
    }
    hash = Fnv1a("\x1e", 1, hash);
  }
  return hash;
}

Result<ParsedTable> ParseCsvAndSpec(const std::string& csv_text,
                                    const std::string& spec_text,
                                    SchemeCache* cache) {
  std::istringstream csv_stream(csv_text);
  KANON_ASSIGN_OR_RETURN(Dataset dataset, ReadCsvInferSchema(csv_stream));
  std::shared_ptr<const GeneralizationScheme> scheme;
  if (cache != nullptr) {
    KANON_ASSIGN_OR_RETURN(scheme, cache->Get(spec_text, dataset.schema()));
  } else if (spec_text.empty()) {
    KANON_ASSIGN_OR_RETURN(
        GeneralizationScheme parsed,
        GeneralizationScheme::SuppressionOnly(dataset.schema()));
    scheme =
        std::make_shared<const GeneralizationScheme>(std::move(parsed));
  } else {
    std::istringstream spec_stream(spec_text);
    KANON_ASSIGN_OR_RETURN(GeneralizationScheme parsed,
                           ParseSchemeSpec(dataset.schema(), spec_stream));
    scheme =
        std::make_shared<const GeneralizationScheme>(std::move(parsed));
  }
  return ParsedTable(std::move(dataset), std::move(scheme));
}

SchemeCache::SchemeCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (metrics != nullptr) {
    hits_ = metrics->GetCounter("serve.scheme_cache_hits");
    misses_ = metrics->GetCounter("serve.scheme_cache_misses");
  }
}

Result<std::shared_ptr<const GeneralizationScheme>> SchemeCache::Get(
    const std::string& spec_text, const Schema& schema) {
  uint64_t key = Fnv1a(spec_text.data(), spec_text.size());
  key ^= SchemaFingerprint(schema);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = schemes_.find(key);
    if (it != schemes_.end()) {
      if (hits_ != nullptr) hits_->Add();
      return it->second;
    }
  }
  if (misses_ != nullptr) misses_->Add();
  Result<GeneralizationScheme> parsed = Status::Internal("unset");
  if (spec_text.empty()) {
    parsed = GeneralizationScheme::SuppressionOnly(schema);
  } else {
    std::istringstream spec_stream(spec_text);
    parsed = ParseSchemeSpec(schema, spec_stream);
  }
  if (!parsed.ok()) return parsed.status();
  auto scheme = std::make_shared<const GeneralizationScheme>(
      std::move(parsed).value());
  std::lock_guard<std::mutex> lock(mu_);
  // Full cache: drop everything rather than track recency — the store is
  // tiny and a refill costs one spec parse per shape.
  if (schemes_.size() >= capacity_ && schemes_.find(key) == schemes_.end()) {
    schemes_.clear();
  }
  schemes_.emplace(key, scheme);
  return scheme;
}

size_t SchemeCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schemes_.size();
}

}  // namespace serve
}  // namespace kanon
