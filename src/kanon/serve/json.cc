#include "kanon/serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace kanon {
namespace serve {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> Run() {
    SkipWs();
    Json value;
    KANON_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWs();
    if (pos_ != s_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status ParseValue(Json* out, size_t depth) {
    if (depth > Json::kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string str;
        KANON_RETURN_NOT_OK(ParseString(&str));
        *out = Json::Str(std::move(str));
        return Status::OK();
      }
      case 't':
        KANON_RETURN_NOT_OK(Literal("true"));
        *out = Json::Bool(true);
        return Status::OK();
      case 'f':
        KANON_RETURN_NOT_OK(Literal("false"));
        *out = Json::Bool(false);
        return Status::OK();
      case 'n':
        KANON_RETURN_NOT_OK(Literal("null"));
        *out = Json::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return Status::OK();
  }

  Status ParseObject(Json* out, size_t depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      KANON_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      Json value;
      KANON_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWs();
      if (pos_ >= s_.size()) return Fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, size_t depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      Json value;
      KANON_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Push(std::move(value));
      SkipWs();
      if (pos_ >= s_.size()) return Fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Fail("unterminated escape");
        switch (s_[pos_]) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            KANON_RETURN_NOT_OK(ParseHex4(&code));
            // Surrogate pair: a high surrogate must be followed by \uDC00..
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 6 >= s_.size() || s_[pos_ + 1] != '\\' ||
                  s_[pos_ + 2] != 'u') {
                return Fail("unpaired surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              KANON_RETURN_NOT_OK(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("bad low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("unpaired surrogate");
            }
            AppendUtf8(code, out);
            break;
          }
          default:
            return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      if (c < 0x20) return Fail("raw control character in string");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Fail("unterminated string");
  }

  /// Reads the 4 hex digits after "\u"; pos_ ends on the last digit.
  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 >= s_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_ + 1 + i];
      value <<= 4;
      if (h >= '0' && h <= '9') {
        value |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        value |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        value |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(value)) {
      return Status::InvalidArgument("json: bad number '" + text + "'");
    }
    *out = Json::Number(value);
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(const std::string& key,
                            const std::string& default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : default_value;
}

int64_t Json::GetInt(const std::string& key, int64_t default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<int64_t>(v->number_value())
             : default_value;
}

double Json::GetDouble(const std::string& key, double default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : default_value;
}

bool Json::GetBool(const std::string& key, bool default_value) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : default_value;
}

Json& Json::Set(const std::string& key, Json value) {
  KANON_CHECK(type_ == Type::kObject, "Json::Set on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  KANON_CHECK(type_ == Type::kArray, "Json::Push on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber: {
      char buf[32];
      if (number_ == static_cast<double>(static_cast<int64_t>(number_))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      out->append(buf);
      return;
    }
    case Type::kString:
      EscapeInto(string_, out);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace serve
}  // namespace kanon
