#ifndef KANON_SERVE_JSON_H_
#define KANON_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kanon/common/result.h"

namespace kanon {
namespace serve {

/// A small self-contained JSON document model for the kanond wire protocol
/// (docs/serving.md). The service embeds whole CSV tables as JSON strings,
/// so the parser is hardened the same way the CSV/spec parsers are: depth
/// and size limits, full escape handling (including \uXXXX surrogate
/// pairs), and Status errors — never aborts — on malformed input. Object
/// keys keep insertion order so serialized responses are byte-stable.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Deepest accepted nesting; protects the recursive parser's stack.
  static constexpr size_t kMaxDepth = 64;

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = value;
    return j;
  }
  static Json Number(double value) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = value;
    return j;
  }
  static Json Number(int64_t value) {
    return Number(static_cast<double>(value));
  }
  static Json Str(std::string value) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Parses one complete JSON document (trailing bytes are an error).
  static Result<Json> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& object_items() const {
    return object_;
  }

  /// Object lookup; nullptr when absent or when this is not an object.
  const Json* Find(const std::string& key) const;

  /// Typed object getters with defaults (missing key or wrong type returns
  /// the default) — what the request handlers use for optional params.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Sets `key` in an object (appends; replaces an existing key in place).
  Json& Set(const std::string& key, Json value);
  /// Appends to an array.
  Json& Push(Json value);

  /// Serializes. Integral numbers print without a decimal point, doubles
  /// with enough digits to round-trip; strings escape control characters,
  /// quotes and backslashes and pass UTF-8 bytes through untouched.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_JSON_H_
