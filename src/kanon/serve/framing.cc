#include "kanon/serve/framing.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "kanon/common/failpoint.h"

namespace kanon {
namespace serve {
namespace {

/// Reads exactly `len` bytes. Returns the byte count actually read: `len`
/// on success, less on EOF, or an IOError Status on a socket error.
Result<size_t> ReadFull(int fd, char* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buffer + done, len - done);
    if (n == 0) return done;  // EOF.
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return done;
}

}  // namespace

Result<std::string> ReadFrame(int fd, size_t max_payload) {
  KANON_FAILPOINT("serve.read_frame");
  char prefix[4];
  KANON_ASSIGN_OR_RETURN(size_t got, ReadFull(fd, prefix, sizeof(prefix)));
  if (got == 0) return Status::NotFound("clean eof");
  if (got < sizeof(prefix)) {
    return Status::IOError("truncated length prefix (" + std::to_string(got) +
                           " of 4 bytes)");
  }
  const uint32_t length = (static_cast<uint32_t>(
                               static_cast<unsigned char>(prefix[0]))
                           << 24) |
                          (static_cast<uint32_t>(
                               static_cast<unsigned char>(prefix[1]))
                           << 16) |
                          (static_cast<uint32_t>(
                               static_cast<unsigned char>(prefix[2]))
                           << 8) |
                          static_cast<uint32_t>(
                              static_cast<unsigned char>(prefix[3]));
  if (length > max_payload) {
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(length) + " > " +
        std::to_string(max_payload) + " bytes");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    KANON_ASSIGN_OR_RETURN(size_t body,
                           ReadFull(fd, payload.data(), payload.size()));
    if (body < payload.size()) {
      return Status::IOError("mid-frame disconnect (" + std::to_string(body) +
                             " of " + std::to_string(length) + " bytes)");
    }
  }
  return payload;
}

Status WriteFrame(int fd, const std::string& payload) {
  KANON_FAILPOINT("serve.write_frame");
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("frame payload too large to encode");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string wire;
  wire.reserve(4 + payload.size());
  wire.push_back(static_cast<char>((length >> 24) & 0xFF));
  wire.push_back(static_cast<char>((length >> 16) & 0xFF));
  wire.push_back(static_cast<char>((length >> 8) & 0xFF));
  wire.push_back(static_cast<char>(length & 0xFF));
  wire.append(payload);
  size_t done = 0;
  while (done < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + done, wire.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace kanon
