#ifndef KANON_SERVE_PROTOCOL_H_
#define KANON_SERVE_PROTOCOL_H_

#include <string>

#include "kanon/serve/json.h"

namespace kanon {
namespace serve {

/// The typed error vocabulary of the kanond protocol (docs/serving.md).
/// Every failed request names exactly one of these in `error.code`, so
/// clients can branch on the string without parsing prose — the admission
/// controller's `overloaded` and the drain path's `shutting_down` are the
/// two that production callers are expected to retry on.
enum class ErrorCode {
  kParseError,      // Frame payload was not valid JSON.
  kInvalidRequest,  // JSON was valid but not a request object.
  kUnknownMethod,   // Request named a method the server does not serve.
  kInvalidParams,   // Method known, params missing/ill-typed/unusable.
  kNotFound,        // Job id or published-table name does not exist.
  kOverloaded,      // Admission control: the bounded job queue is full.
  kShuttingDown,    // Server is draining; no new work is admitted.
  kFrameTooLarge,   // Announced frame length exceeds the server limit.
  kInternal,        // Anything else (engine failure, injected fault, ...).
};

/// The wire name, e.g. "overloaded".
const char* ErrorCodeName(ErrorCode code);

/// A request envelope as decoded from one frame:
///   {"id": <any JSON value, echoed back>, "method": "...", "params": {...}}
/// `params` defaults to an empty object when absent.
struct Request {
  Json id;      // Echoed verbatim; null when the client sent none.
  std::string method;
  Json params;  // Always an object after Decode succeeds.
};

/// Decodes a frame payload into a Request. On failure returns the
/// ErrorCode the reply should carry (parse_error / invalid_request).
Result<Request> DecodeRequest(const std::string& payload, ErrorCode* code);

/// {"id":<id>,"ok":true,"result":<result>}
std::string OkResponse(const Json& id, Json result);

/// {"id":<id>,"ok":false,"error":{"code":"...","message":"..."}}
std::string ErrorResponse(const Json& id, ErrorCode code,
                          const std::string& message);

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_PROTOCOL_H_
