#ifndef KANON_SERVE_PARAMS_H_
#define KANON_SERVE_PARAMS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/result.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/measure.h"
#include "kanon/telemetry/metrics.h"

namespace kanon {
namespace serve {

/// Wire-name parsing shared by the request handlers and the client CLI.
/// The names match kanon_cli's flags exactly (docs/serving.md), so a job
/// submitted over the wire and a CLI run with the same arguments produce
/// byte-identical tables — the e2e harness's core assertion.
Result<AnonymizationMethod> ParseMethodName(const std::string& name);
Result<DistanceFunction> ParseDistanceName(const std::string& name);
Result<AnonymityNotion> ParseNotionName(const std::string& name);
Result<std::unique_ptr<LossMeasure>> MakeMeasure(const std::string& name);

/// FNV-1a 64-bit over a byte range, chainable via `seed`.
uint64_t Fnv1a(const void* data, size_t len,
               uint64_t seed = 14695981039346656037ull);

/// Fingerprint of a dataset's coded cells plus its shape — the key the
/// hot-state caches use to recognize a resubmitted table.
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Fingerprint of a schema (attribute names and domain sizes).
uint64_t SchemaFingerprint(const Schema& schema);

/// A dataset and the scheme it is coded against, built from inline CSV and
/// spec text — the ingestion step shared by `submit` and `register_table`.
struct ParsedTable {
  Dataset dataset;
  std::shared_ptr<const GeneralizationScheme> scheme;

  ParsedTable(Dataset dataset_in,
              std::shared_ptr<const GeneralizationScheme> scheme_in)
      : dataset(std::move(dataset_in)), scheme(std::move(scheme_in)) {}
};

/// Parses `csv_text` (schema inferred) and codes a scheme from `spec_text`
/// (empty = suppression-only hierarchies everywhere). When `cache` is
/// non-null the parsed scheme is interned there, so resubmissions of the
/// same (spec, schema) shape share one hierarchy object — the
/// "load schemas/hierarchies once" half of the service's hot-state story.
class SchemeCache;
Result<ParsedTable> ParseCsvAndSpec(const std::string& csv_text,
                                    const std::string& spec_text,
                                    SchemeCache* cache);

/// A bounded intern table for parsed generalization schemes, keyed by
/// (spec text, schema) fingerprints. Thread-safe. Hits mean a request
/// reuses hierarchies (join tables included) built by an earlier request.
class SchemeCache {
 public:
  /// `metrics` (optional) receives serve.scheme_cache_{hits,misses}.
  SchemeCache(size_t capacity, MetricsRegistry* metrics);

  /// Returns the cached scheme for (spec_text, schema), parsing and
  /// inserting on miss. Parse errors are returned, never cached.
  Result<std::shared_ptr<const GeneralizationScheme>> Get(
      const std::string& spec_text, const Schema& schema);

  size_t size() const;

 private:
  const size_t capacity_;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const GeneralizationScheme>>
      schemes_;
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_PARAMS_H_
