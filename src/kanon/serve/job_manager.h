#ifndef KANON_SERVE_JOB_MANAGER_H_
#define KANON_SERVE_JOB_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kanon/algo/anonymizer.h"
#include "kanon/common/result.h"
#include "kanon/common/run_context.h"
#include "kanon/data/dataset.h"
#include "kanon/generalization/scheme.h"
#include "kanon/loss/precomputed_loss.h"
#include "kanon/serve/table_store.h"
#include "kanon/telemetry/flight_recorder.h"
#include "kanon/telemetry/log.h"
#include "kanon/telemetry/metrics.h"
#include "kanon/telemetry/tracer.h"

namespace kanon {
namespace serve {

/// One queued anonymize-table job, as decoded from a `submit` request.
struct JobRequest {
  Dataset dataset;
  std::shared_ptr<const GeneralizationScheme> scheme;
  std::string measure_name = "EM";
  size_t k = 5;
  AnonymizationMethod method = AnonymizationMethod::kAgglomerative;
  DistanceFunction distance = DistanceFunction::kRatio;
  std::vector<double> attr_weights;
  /// Per-request execution bounds, intersected with whatever budget is
  /// left on the server's root RunContext.
  int64_t timeout_ms = 0;
  int64_t max_steps = 0;
  /// Milliseconds the worker idles (cancellably) before running — a test
  /// hook for pinning a worker slot; only honored when the manager was
  /// built with `enable_test_hooks`.
  int64_t debug_sleep_ms = 0;
  /// When non-empty, a successful result is registered in the table store
  /// under this name, making it queryable by `verify`/`attack`.
  std::string publish_as;
  /// Attach a per-job Tracer; once the job is terminal, `fetch_trace`
  /// returns its Chrome-trace JSON (bounded LRU — old traces evict).
  bool capture_trace = false;

  explicit JobRequest(Dataset dataset_in) : dataset(std::move(dataset_in)) {}
};

enum class JobState { kQueued, kRunning, kDone, kFailed };
const char* JobStateName(JobState state);

/// What `poll` reports: one consistent copy of a job's externally visible
/// state, taken under the job's lock.
struct JobSnapshot {
  uint64_t id = 0;
  JobState state = JobState::kQueued;
  /// Live progress (meaningful while kRunning): the stage the run last
  /// checkpointed in and how many checkpoints it has passed.
  std::string progress_stage;
  size_t progress_steps = 0;
  /// Outcome (meaningful once kDone) — mirrors AnonymizationResult and the
  /// CLI's reporting vocabulary exactly (StopReasonName etc.).
  double loss = 0.0;
  double elapsed_seconds = 0.0;
  bool degraded = false;
  std::string degraded_stage;
  std::string stop_reason = "none";
  size_t iterations_completed = 0;
  size_t records_suppressed = 0;
  size_t rows = 0;
  /// Why the job failed (meaningful once kFailed).
  std::string error;
};

/// Why Submit() refused a job.
enum class SubmitDenied {
  kNone,
  kOverloaded,  // The bounded queue is full — the typed admission error.
  kDraining,    // The server is shutting down.
};

struct JobManagerOptions {
  size_t workers = 1;
  /// Jobs allowed to *wait* (running jobs are not counted). One more
  /// submission past this bound is denied kOverloaded.
  size_t queue_bound = 8;
  /// config.num_threads each job runs with.
  int job_threads = 1;
  /// Default per-job wall-clock budget when a request names none (0 = none).
  int64_t default_timeout_ms = 0;
  /// Honor JobRequest::debug_sleep_ms (tests only; kanond --test-hooks).
  bool enable_test_hooks = false;
  /// Distinct (scheme, dataset, measure) PrecomputedLoss tables kept hot.
  size_t loss_cache_capacity = 4;
  /// Completed capture_trace renderings kept for fetch_trace (LRU).
  size_t trace_cache_capacity = 8;
  /// Observability sinks (not owned, may be null): the structured log and
  /// the crash flight recorder receive one record per job lifecycle event.
  Logger* logger = nullptr;
  FlightRecorder* flight = nullptr;
};

/// The service's execution core: a bounded FIFO of jobs drained by a fixed
/// worker pool. Each job runs the existing Anonymize() pipelines under a
/// RunContext forked from the server's root context (linked cancellation,
/// budget intersection), publishes progress through the RunContext
/// observer, and lands its outcome — including the serialized CSV — in an
/// in-memory job record that `poll`/`fetch` read.
///
/// Hot-state caching: PrecomputedLoss tables are memoized across jobs by
/// (scheme identity, dataset fingerprint, measure), so resubmitting a
/// table skips the cost-table build entirely (serve.loss_cache_hits).
class JobManager {
 public:
  /// `server_context` (not owned, may be null) is the root every job forks
  /// from; `metrics` (not owned, may be null) receives the serve.* catalog;
  /// `store` (not owned, may be null) receives publish_as results.
  JobManager(const JobManagerOptions& options, RunContext* server_context,
             MetricsRegistry* metrics, TableStore* store);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Admits or denies a job. On denial `*denied` says which typed error to
  /// return; on success it is kNone and the job id is returned.
  Result<uint64_t> Submit(JobRequest request, SubmitDenied* denied);

  /// False when the id is unknown.
  bool Snapshot(uint64_t id, JobSnapshot* out) const;

  /// The serialized generalized table of a completed job.
  Result<std::string> FetchCsv(uint64_t id) const;

  /// The Chrome-trace JSON of a terminal job submitted with
  /// capture_trace. kNotFound for unknown ids and evicted traces,
  /// kFailedPrecondition while the job still runs or when it never
  /// captured one.
  Result<std::string> FetchTrace(uint64_t id) const;

  /// Cancels a queued or running job (cooperative: the pipeline finalizes
  /// a degraded-but-valid table). False when the id is unknown.
  bool Cancel(uint64_t id);

  /// Stops admitting; queued and running jobs still complete.
  void BeginDrain();
  bool draining() const;

  /// BeginDrain + run every already-admitted job to completion + join the
  /// workers. Idempotent; called by the destructor.
  void Shutdown();

  /// True when no admitted job is still queued or running.
  bool AllTerminal() const;

  size_t queue_depth() const;

 private:
  struct Job;

  void WorkerLoop();
  void RunJob(Job* job);
  std::shared_ptr<const PrecomputedLoss> LossFor(const JobRequest& request);

  const JobManagerOptions options_;
  RunContext* const server_context_;
  MetricsRegistry* const metrics_;
  TableStore* const store_;

  // serve.* metrics, registered once (null when metrics_ is null).
  Counter* jobs_accepted_ = nullptr;
  Counter* jobs_rejected_ = nullptr;
  Counter* jobs_completed_ = nullptr;
  Counter* jobs_failed_ = nullptr;
  Counter* jobs_degraded_ = nullptr;
  Counter* jobs_deadline_expired_ = nullptr;
  Counter* jobs_cancelled_ = nullptr;
  Counter* loss_cache_hits_ = nullptr;
  Counter* loss_cache_misses_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* jobs_running_gauge_ = nullptr;
  Histogram* job_seconds_ = nullptr;
  RollingHistogram* job_seconds_window_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable job_finished_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  size_t running_ = 0;
  bool draining_ = false;
  bool workers_joined_ = false;
  std::vector<std::thread> workers_;

  // PrecomputedLoss memo: key -> entry; insertion-ordered eviction.
  struct LossEntry {
    uint64_t key;
    std::shared_ptr<const PrecomputedLoss> loss;
  };
  mutable std::mutex loss_mu_;
  std::list<LossEntry> loss_cache_;

  // Rendered capture_trace results: job id -> Chrome-trace JSON, most
  // recently used at the back; lookups refresh recency, inserts evict
  // from the front.
  struct TraceEntry {
    uint64_t job_id;
    std::shared_ptr<const std::string> trace_json;
  };
  mutable std::mutex trace_mu_;
  mutable std::list<TraceEntry> trace_cache_;
  void StoreTrace(uint64_t job_id, std::string trace_json);
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_JOB_MANAGER_H_
