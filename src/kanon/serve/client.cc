#include "kanon/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace kanon {
namespace serve {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, int port,
                               int recv_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect to " + host + ":" +
                           std::to_string(port) + ": " + error);
  }
  if (recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Client(fd);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendBytes(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendFrame(const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return WriteFrame(fd_, payload);
}

Result<std::string> Client::ReadResponseFrame(size_t max_payload) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return ReadFrame(fd_, max_payload);
}

Result<Json> Client::CallRaw(const std::string& method, Json params) {
  Json request = Json::Object();
  request.Set("id", Json::Number(next_id_++));
  request.Set("method", Json::Str(method));
  request.Set("params", std::move(params));
  KANON_RETURN_NOT_OK(SendFrame(request.Dump()));
  KANON_ASSIGN_OR_RETURN(std::string payload, ReadResponseFrame());
  return Json::Parse(payload);
}

Result<Json> Client::Call(const std::string& method, Json params) {
  KANON_ASSIGN_OR_RETURN(Json response, CallRaw(method, std::move(params)));
  if (response.GetBool("ok", false)) {
    const Json* result = response.Find("result");
    return result == nullptr ? Json::Object() : *result;
  }
  const Json* error = response.Find("error");
  const std::string code =
      error == nullptr ? "invalid_response" : error->GetString("code", "?");
  const std::string message =
      error == nullptr ? response.Dump() : error->GetString("message", "");
  // The typed code leads the message so callers (and test assertions) can
  // branch on it even through the Status path.
  return Status::Internal(code + ": " + message);
}

Result<Json> Client::WaitJob(uint64_t job_id, int poll_interval_ms,
                             int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    Json params = Json::Object();
    params.Set("job_id", Json::Number(static_cast<int64_t>(job_id)));
    KANON_ASSIGN_OR_RETURN(Json snapshot, Call("poll", std::move(params)));
    const std::string state = snapshot.GetString("state", "");
    if (state == "done" || state == "failed") return snapshot;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IOError("job " + std::to_string(job_id) +
                             " still '" + state + "' after " +
                             std::to_string(timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_interval_ms));
  }
}

}  // namespace serve
}  // namespace kanon
