#ifndef KANON_SERVE_SERVER_H_
#define KANON_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "kanon/common/run_context.h"
#include "kanon/common/status.h"
#include "kanon/serve/framing.h"
#include "kanon/serve/job_manager.h"
#include "kanon/serve/params.h"
#include "kanon/serve/protocol.h"
#include "kanon/serve/table_store.h"
#include "kanon/telemetry/metrics.h"

namespace kanon {
namespace serve {

struct ServerOptions {
  /// Loopback by default: kanond has no authentication layer.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via Server::port().
  int port = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Distinct published tables the read path admits (verify/attack targets).
  size_t table_store_capacity = 32;
  /// Distinct (spec, schema) shapes whose parsed hierarchies stay interned.
  size_t scheme_cache_capacity = 16;
  /// After drain completes, how long existing connections may linger (e.g.
  /// to fetch a result that finished during drain) before being severed.
  int64_t drain_grace_ms = 5000;
  /// Observability sinks (not owned, may be null). They are also handed
  /// to the JobManager unless options.jobs names its own.
  Logger* logger = nullptr;
  FlightRecorder* flight = nullptr;
  JobManagerOptions jobs;
};

/// The kanond service core: a blocking TCP server speaking length-prefixed
/// JSON frames (docs/serving.md). One OS thread per connection (the
/// protocol is request/response, connections are few and long-lived), one
/// bounded JobManager pool for the write path, and lock-free reads of the
/// shared hot state (scheme cache, loss memo, published tables) for the
/// fast query path.
///
/// Lifecycle: Start() binds and listens; Run() serves until
/// RequestShutdown() (async-signal-safe, called from SIGTERM/SIGINT
/// handlers or the `shutdown` method), then drains: stop accepting, run
/// every admitted job to completion, give connections `drain_grace_ms` to
/// collect results, sever stragglers, join everything, return.
class Server {
 public:
  /// `server_context` (not owned, may be null) is the root RunContext every
  /// job forks from — arm a deadline on it to give the whole server a
  /// budget. `metrics` (not owned, may be null) receives the serve.*
  /// catalog and each job's engine.*/run.* publications.
  Server(const ServerOptions& options, RunContext* server_context,
         MetricsRegistry* metrics);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. After this, port() is the actual bound port.
  Status Start();
  int port() const { return port_; }

  /// Serves until shutdown, then drains. Blocks; returns once drained.
  Status Run();

  /// Only stores an atomic flag — safe from signal handlers and any thread.
  void RequestShutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  JobManager& jobs() { return *jobs_; }
  TableStore& tables() { return tables_; }

  /// Recomputes the serve.uptime_seconds gauge. Called on every metrics
  /// render (protocol method, Prometheus scrape, exit snapshot) so the
  /// gauge is fresh without a background ticker.
  void RefreshUptime();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void ServeConnection(Connection* conn);
  /// Decodes and dispatches one frame; returns the serialized response.
  /// Sets *close_connection when the connection must drop after replying.
  /// `request_id` is the server-assigned correlation id carried by every
  /// log record this request emits.
  std::string DispatchFrame(const std::string& payload, uint64_t request_id,
                            bool* close_connection);
  std::string Dispatch(const Request& request, uint64_t request_id,
                       bool* close_connection);

  std::string HandleSubmit(const Request& request, uint64_t request_id);
  std::string HandlePoll(const Request& request);
  std::string HandleFetch(const Request& request);
  std::string HandleCancel(const Request& request);
  std::string HandleRegisterTable(const Request& request);
  std::string HandleVerify(const Request& request);
  std::string HandleAttack(const Request& request);
  std::string HandleMetrics(const Request& request);
  std::string HandleFetchTrace(const Request& request);
  std::string HandleFlightRecorder(const Request& request);

  /// Joins finished connection threads (all of them when `join_all`) and
  /// closes their fds. Fds are only closed here, after the join, so a
  /// concurrent force-shutdown can never hit a recycled descriptor.
  void ReapConnections(bool join_all);
  /// Severs every still-open connection (shutdown(2), unblocking reads).
  void SeverConnections();

  const ServerOptions options_;
  RunContext* const server_context_;
  MetricsRegistry* const metrics_;
  TableStore tables_;
  SchemeCache schemes_;
  std::unique_ptr<JobManager> jobs_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> shutdown_requested_{false};

  Counter* connections_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* request_errors_ = nullptr;
  Gauge* connections_open_ = nullptr;
  Gauge* uptime_seconds_ = nullptr;
  Histogram* request_seconds_ = nullptr;
  RollingHistogram* request_seconds_window_ = nullptr;

  Logger* const logger_;
  FlightRecorder* const flight_;
  const std::chrono::steady_clock::time_point start_time_;
  std::atomic<uint64_t> next_request_id_{1};

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_SERVER_H_
