#include "kanon/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "kanon/anonymity/attack.h"
#include "kanon/anonymity/verify.h"
#include "kanon/common/failpoint.h"
#include "kanon/generalization/generalized_csv.h"

namespace kanon {
namespace serve {
namespace {

/// Largest id list an attack/verify response embeds; the full counts are
/// always present, so truncation loses detail, not information.
constexpr size_t kMaxReportedIds = 256;

ErrorCode CodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return ErrorCode::kInvalidParams;
    default:
      return ErrorCode::kInternal;
  }
}

/// Fetches a required positive integer param; a kNone error code on success.
bool GetJobId(const Json& params, uint64_t* out, std::string* error) {
  const Json* value = params.Find("job_id");
  if (value == nullptr || !value->is_number() || value->number_value() < 1) {
    *error = "params.job_id (positive integer) is required";
    return false;
  }
  *out = static_cast<uint64_t>(value->number_value());
  return true;
}

Json SnapshotToJson(const JobSnapshot& snapshot) {
  Json out = Json::Object();
  out.Set("job_id", Json::Number(static_cast<int64_t>(snapshot.id)));
  out.Set("state", Json::Str(JobStateName(snapshot.state)));
  out.Set("progress_stage", Json::Str(snapshot.progress_stage));
  out.Set("progress_steps",
          Json::Number(static_cast<int64_t>(snapshot.progress_steps)));
  out.Set("rows", Json::Number(static_cast<int64_t>(snapshot.rows)));
  if (snapshot.state == JobState::kDone) {
    out.Set("loss", Json::Number(snapshot.loss));
    out.Set("elapsed_seconds", Json::Number(snapshot.elapsed_seconds));
    out.Set("degraded", Json::Bool(snapshot.degraded));
    out.Set("degraded_stage", Json::Str(snapshot.degraded_stage));
    out.Set("stop_reason", Json::Str(snapshot.stop_reason));
    out.Set("iterations_completed",
            Json::Number(static_cast<int64_t>(snapshot.iterations_completed)));
    out.Set("records_suppressed",
            Json::Number(static_cast<int64_t>(snapshot.records_suppressed)));
  }
  if (!snapshot.error.empty()) out.Set("error", Json::Str(snapshot.error));
  return out;
}

Json IdList(const std::vector<uint32_t>& ids) {
  Json out = Json::Array();
  const size_t n = std::min(ids.size(), kMaxReportedIds);
  for (size_t i = 0; i < n; ++i) {
    out.Push(Json::Number(static_cast<int64_t>(ids[i])));
  }
  return out;
}

JobManagerOptions JobOptionsWithSinks(const ServerOptions& options) {
  JobManagerOptions jobs = options.jobs;
  if (jobs.logger == nullptr) jobs.logger = options.logger;
  if (jobs.flight == nullptr) jobs.flight = options.flight;
  return jobs;
}

}  // namespace

Server::Server(const ServerOptions& options, RunContext* server_context,
               MetricsRegistry* metrics)
    : options_(options),
      server_context_(server_context),
      metrics_(metrics),
      tables_(options.table_store_capacity),
      schemes_(options.scheme_cache_capacity, metrics),
      jobs_(std::make_unique<JobManager>(JobOptionsWithSinks(options),
                                         server_context, metrics, &tables_)),
      logger_(options.logger),
      flight_(options.flight),
      start_time_(std::chrono::steady_clock::now()) {
  if (metrics_ != nullptr) {
    connections_ = metrics_->GetCounter("serve.connections");
    requests_ = metrics_->GetCounter("serve.requests");
    request_errors_ = metrics_->GetCounter("serve.request_errors");
    connections_open_ =
        metrics_->GetGauge("serve.connections_open", /*deterministic=*/false);
    uptime_seconds_ =
        metrics_->GetGauge("serve.uptime_seconds", /*deterministic=*/false);
    request_seconds_ = metrics_->GetHistogram(
        "serve.request_seconds", {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0},
        /*deterministic=*/false);
    request_seconds_window_ = metrics_->GetRollingHistogram(
        "serve.request_seconds_window",
        {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0});
  }
}

void Server::RefreshUptime() {
  if (uptime_seconds_ != nullptr) {
    uptime_seconds_->Set(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_time_)
                             .count());
  }
}

Server::~Server() {
  RequestShutdown();
  jobs_->Shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  SeverConnections();
  ReapConnections(/*join_all=*/true);
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status Server::Run() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Start() was not called");
  }
  while (!shutdown_requested()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // A bounded poll so the shutdown flag (set from a signal handler) is
    // observed within ~100ms even on an idle server.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        if (connections_ != nullptr) connections_->Add();
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.push_back(std::move(conn));
        raw->thread = std::thread([this, raw] { ServeConnection(raw); });
        if (connections_open_ != nullptr) {
          connections_open_->Set(static_cast<double>(conns_.size()));
        }
      }
    }
    ReapConnections(/*join_all=*/false);
  }

  // Drain. Order matters: stop accepting first, then stop admitting, then
  // run everything already admitted to completion. Existing connections
  // keep being served throughout (their threads are independent), so a
  // client can poll an in-flight job across the SIGTERM and still fetch
  // its result.
  ::close(listen_fd_);
  listen_fd_ = -1;
  jobs_->BeginDrain();
  jobs_->Shutdown();

  const auto grace_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_grace_ms);
  for (;;) {
    ReapConnections(/*join_all=*/false);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
    }
    if (std::chrono::steady_clock::now() >= grace_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  SeverConnections();
  ReapConnections(/*join_all=*/true);
  return Status::OK();
}

void Server::ServeConnection(Connection* conn) {
  for (;;) {
    Result<std::string> payload = ReadFrame(conn->fd, options_.max_frame_bytes);
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kInvalidArgument) {
        // Oversized announced length: the payload cannot be skipped, so the
        // connection is done for — but a typed reply still fits first.
        WriteFrame(conn->fd,
                   ErrorResponse(Json::Null(), ErrorCode::kFrameTooLarge,
                                 payload.status().message()));
        if (request_errors_ != nullptr) request_errors_->Add();
      }
      break;  // Clean EOF, truncation, or socket error: drop silently.
    }
    const auto start = std::chrono::steady_clock::now();
    const uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    bool close_connection = false;
    const std::string response =
        DispatchFrame(*payload, request_id, &close_connection);
    if (requests_ != nullptr) requests_->Add();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (request_seconds_ != nullptr) request_seconds_->Observe(seconds);
    if (request_seconds_window_ != nullptr) {
      request_seconds_window_->Observe(seconds);
    }
    KANON_LOG_EVENT(logger_, flight_, LogLevel::kDebug, "request.done",
                    LogField::U64("request_id", request_id),
                    LogField::Dbl("seconds", seconds),
                    LogField::U64("response_bytes", response.size()));
    if (!WriteFrame(conn->fd, response).ok()) break;
    if (close_connection) break;
  }
  // The fd is NOT closed here: the reaper closes it after joining this
  // thread, so a concurrent SeverConnections() cannot race a recycled fd.
  conn->done.store(true, std::memory_order_release);
}

std::string Server::DispatchFrame(const std::string& payload,
                                  uint64_t request_id,
                                  bool* close_connection) {
  ErrorCode code = ErrorCode::kParseError;
  Result<Request> request = DecodeRequest(payload, &code);
  if (!request.ok()) {
    if (request_errors_ != nullptr) request_errors_->Add();
    KANON_LOG_EVENT(logger_, flight_, LogLevel::kWarn, "request.invalid",
                    LogField::U64("request_id", request_id),
                    LogField::Str("code", ErrorCodeName(code)));
    return ErrorResponse(Json::Null(), code, request.status().message());
  }
  return Dispatch(*request, request_id, close_connection);
}

std::string Server::Dispatch(const Request& request, uint64_t request_id,
                             bool* close_connection) {
  KANON_LOG_EVENT(logger_, flight_, LogLevel::kDebug, "request",
                  LogField::U64("request_id", request_id),
                  LogField::Str("method", request.method));
  {
    // Crash-rehearsal hook: an armed serve.crash failpoint flight-records
    // the hit and dies by abort, exactly like a real fatal bug would —
    // the path the flight-recorder dump test drives end to end.
    const Status crash = failpoint::Check("serve.crash");
    if (!crash.ok()) {
      KANON_LOG_EVENT(logger_, flight_, LogLevel::kError, "serve.crash",
                      LogField::U64("request_id", request_id),
                      LogField::Str("method", request.method));
      std::abort();
    }
  }
  {
    // Robustness-test hook: an armed serve.dispatch failpoint turns into a
    // typed internal error, proving injected dispatch faults cannot crash
    // or desync the connection.
    const Status injected = failpoint::Check("serve.dispatch");
    if (!injected.ok()) {
      if (request_errors_ != nullptr) request_errors_->Add();
      KANON_LOG_EVENT(logger_, flight_, LogLevel::kWarn, "serve.failpoint",
                      LogField::U64("request_id", request_id),
                      LogField::Str("name", "serve.dispatch"));
      return ErrorResponse(request.id, ErrorCode::kInternal,
                           injected.ToString());
    }
  }
  if (request.method == "ping") {
    Json result = Json::Object();
    result.Set("pong", Json::Bool(true));
    result.Set("draining", Json::Bool(jobs_->draining()));
    return OkResponse(request.id, std::move(result));
  }
  if (request.method == "submit") return HandleSubmit(request, request_id);
  if (request.method == "poll") return HandlePoll(request);
  if (request.method == "fetch") return HandleFetch(request);
  if (request.method == "fetch_trace") return HandleFetchTrace(request);
  if (request.method == "flight_recorder") return HandleFlightRecorder(request);
  if (request.method == "cancel") return HandleCancel(request);
  if (request.method == "register_table") return HandleRegisterTable(request);
  if (request.method == "verify") return HandleVerify(request);
  if (request.method == "attack") return HandleAttack(request);
  if (request.method == "metrics") return HandleMetrics(request);
  if (request.method == "shutdown") {
    RequestShutdown();
    *close_connection = true;
    Json result = Json::Object();
    result.Set("draining", Json::Bool(true));
    return OkResponse(request.id, std::move(result));
  }
  if (request_errors_ != nullptr) request_errors_->Add();
  return ErrorResponse(request.id, ErrorCode::kUnknownMethod,
                       "unknown method '" + request.method + "'");
}

std::string Server::HandleSubmit(const Request& request, uint64_t request_id) {
  // Admission stops the instant shutdown is requested (the signal handler
  // stores the flag synchronously) — not 100ms later when the accept loop
  // notices and begins the drain proper.
  if (shutdown_requested()) {
    return ErrorResponse(request.id, ErrorCode::kShuttingDown,
                         "server is draining; no new work is admitted");
  }
  const Json& params = request.params;
  const Json* csv = params.Find("csv");
  if (csv == nullptr || !csv->is_string()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         "params.csv (string) is required");
  }
  Result<ParsedTable> parsed = ParseCsvAndSpec(
      csv->string_value(), params.GetString("spec", ""), &schemes_);
  if (!parsed.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         parsed.status().ToString());
  }
  JobRequest job(std::move(parsed->dataset));
  job.scheme = std::move(parsed->scheme);

  const int64_t k = params.GetInt("k", 5);
  if (k < 1) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         "params.k must be a positive integer");
  }
  job.k = static_cast<size_t>(k);
  Result<AnonymizationMethod> method =
      ParseMethodName(params.GetString("method", "agglomerative"));
  if (!method.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         method.status().message());
  }
  job.method = *method;
  Result<DistanceFunction> distance =
      ParseDistanceName(params.GetString("distance", "4"));
  if (!distance.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         distance.status().message());
  }
  job.distance = *distance;
  job.measure_name = params.GetString("measure", "EM");
  // Validated here so a bad measure is a typed request error, not a job
  // that fails later.
  if (!MakeMeasure(job.measure_name).ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         "unknown measure '" + job.measure_name + "'");
  }
  if (const Json* weights = params.Find("attr_weights");
      weights != nullptr && weights->is_array()) {
    for (const Json& w : weights->array_items()) {
      if (!w.is_number()) {
        return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                             "params.attr_weights must be numbers");
      }
      job.attr_weights.push_back(w.number_value());
    }
  }
  job.timeout_ms = params.GetInt("timeout_ms", 0);
  job.max_steps = params.GetInt("max_steps", 0);
  job.debug_sleep_ms = params.GetInt("debug_sleep_ms", 0);
  job.publish_as = params.GetString("publish_as", "");
  job.capture_trace = params.GetBool("capture_trace", false);

  SubmitDenied denied = SubmitDenied::kNone;
  Result<uint64_t> job_id = jobs_->Submit(std::move(job), &denied);
  if (!job_id.ok()) {
    const ErrorCode code = denied == SubmitDenied::kOverloaded
                               ? ErrorCode::kOverloaded
                               : denied == SubmitDenied::kDraining
                                     ? ErrorCode::kShuttingDown
                                     : ErrorCode::kInternal;
    return ErrorResponse(request.id, code, job_id.status().message());
  }
  // The request_id -> job_id edge: the one record that lets an operator
  // walk from a connection's request log into the job's lifecycle log.
  KANON_LOG_EVENT(logger_, flight_, LogLevel::kInfo, "request.submit",
                  LogField::U64("request_id", request_id),
                  LogField::U64("job_id", *job_id));
  Json result = Json::Object();
  result.Set("job_id", Json::Number(static_cast<int64_t>(*job_id)));
  result.Set("queue_depth",
             Json::Number(static_cast<int64_t>(jobs_->queue_depth())));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandlePoll(const Request& request) {
  uint64_t job_id = 0;
  std::string error;
  if (!GetJobId(request.params, &job_id, &error)) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams, error);
  }
  JobSnapshot snapshot;
  if (!jobs_->Snapshot(job_id, &snapshot)) {
    return ErrorResponse(request.id, ErrorCode::kNotFound,
                         "no job " + std::to_string(job_id));
  }
  return OkResponse(request.id, SnapshotToJson(snapshot));
}

std::string Server::HandleFetch(const Request& request) {
  uint64_t job_id = 0;
  std::string error;
  if (!GetJobId(request.params, &job_id, &error)) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams, error);
  }
  Result<std::string> csv = jobs_->FetchCsv(job_id);
  if (!csv.ok()) {
    return ErrorResponse(request.id, CodeForStatus(csv.status()),
                         csv.status().message());
  }
  Json result = Json::Object();
  result.Set("job_id", Json::Number(static_cast<int64_t>(job_id)));
  result.Set("csv", Json::Str(std::move(*csv)));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleCancel(const Request& request) {
  uint64_t job_id = 0;
  std::string error;
  if (!GetJobId(request.params, &job_id, &error)) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams, error);
  }
  if (!jobs_->Cancel(job_id)) {
    return ErrorResponse(request.id, ErrorCode::kNotFound,
                         "no job " + std::to_string(job_id));
  }
  Json result = Json::Object();
  result.Set("job_id", Json::Number(static_cast<int64_t>(job_id)));
  result.Set("cancelled", Json::Bool(true));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleRegisterTable(const Request& request) {
  const Json& params = request.params;
  const std::string name = params.GetString("name", "");
  if (name.empty()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         "params.name (non-empty string) is required");
  }
  const Json* csv = params.Find("csv");
  const Json* generalized = params.Find("generalized_csv");
  if (csv == nullptr || !csv->is_string() || generalized == nullptr ||
      !generalized->is_string()) {
    return ErrorResponse(
        request.id, ErrorCode::kInvalidParams,
        "params.csv and params.generalized_csv (strings) are required");
  }
  Result<ParsedTable> parsed = ParseCsvAndSpec(
      csv->string_value(), params.GetString("spec", ""), &schemes_);
  if (!parsed.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         parsed.status().ToString());
  }
  std::istringstream generalized_stream(generalized->string_value());
  Result<GeneralizedTable> table =
      ReadGeneralizedCsv(parsed->scheme, generalized_stream);
  if (!table.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         table.status().ToString());
  }
  const size_t rows = parsed->dataset.num_rows();
  const Status registered = tables_.Register(
      name, std::make_shared<PublishedTable>(parsed->scheme,
                                             std::move(parsed->dataset),
                                             std::move(*table)));
  if (!registered.ok()) {
    // A full store is the read path's admission bound — same typed error
    // as the job queue's.
    return ErrorResponse(request.id, ErrorCode::kOverloaded,
                         registered.message());
  }
  Json result = Json::Object();
  result.Set("name", Json::Str(name));
  result.Set("rows", Json::Number(static_cast<int64_t>(rows)));
  result.Set("tables", Json::Number(static_cast<int64_t>(tables_.size())));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleVerify(const Request& request) {
  const Json& params = request.params;
  const std::string name = params.GetString("table", "");
  const std::shared_ptr<const PublishedTable> published = tables_.Find(name);
  if (published == nullptr) {
    return ErrorResponse(request.id, ErrorCode::kNotFound,
                         "no published table '" + name + "'");
  }
  const int64_t k = params.GetInt("k", 0);
  if (k < 1) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         "params.k must be a positive integer");
  }
  Result<AnonymityNotion> notion =
      ParseNotionName(params.GetString("notion", "k-anonymity"));
  if (!notion.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         notion.status().message());
  }
  Result<NotionWitness> witness =
      WitnessNotion(*notion, published->dataset, published->table,
                    static_cast<size_t>(k));
  if (!witness.ok()) {
    return ErrorResponse(request.id, CodeForStatus(witness.status()),
                         witness.status().ToString());
  }
  Json result = Json::Object();
  result.Set("table", Json::Str(name));
  result.Set("notion", Json::Str(AnonymityNotionName(*notion)));
  result.Set("k", Json::Number(k));
  result.Set("satisfied", Json::Bool(witness->satisfied));
  if (!witness->satisfied) {
    result.Set("witness",
               Json::Str(witness->ToString(static_cast<size_t>(k))));
    result.Set("row", Json::Number(static_cast<int64_t>(witness->row)));
    result.Set("observed",
               Json::Number(static_cast<int64_t>(witness->observed)));
  }
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleAttack(const Request& request) {
  const Json& params = request.params;
  const std::string name = params.GetString("table", "");
  const std::shared_ptr<const PublishedTable> published = tables_.Find(name);
  if (published == nullptr) {
    return ErrorResponse(request.id, ErrorCode::kNotFound,
                         "no published table '" + name + "'");
  }
  const int64_t k = params.GetInt("k", 0);
  if (k < 1) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams,
                         "params.k must be a positive integer");
  }
  const AttackResult attack = MatchReductionAttack(
      published->dataset, published->table, static_cast<size_t>(k));
  Json result = Json::Object();
  result.Set("table", Json::Str(name));
  result.Set("k", Json::Number(k));
  result.Set("rows", Json::Number(static_cast<int64_t>(
                         published->dataset.num_rows())));
  result.Set("min_neighbors",
             Json::Number(static_cast<int64_t>(attack.min_neighbors())));
  result.Set("min_matches",
             Json::Number(static_cast<int64_t>(attack.min_matches())));
  result.Set("breached", Json::Number(static_cast<int64_t>(
                             attack.breached_records.size())));
  result.Set("reidentified", Json::Number(static_cast<int64_t>(
                                 attack.reidentified_records.size())));
  result.Set("breached_records", IdList(attack.breached_records));
  result.Set("reidentified_records", IdList(attack.reidentified_records));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleFetchTrace(const Request& request) {
  uint64_t job_id = 0;
  std::string error;
  if (!GetJobId(request.params, &job_id, &error)) {
    return ErrorResponse(request.id, ErrorCode::kInvalidParams, error);
  }
  Result<std::string> trace = jobs_->FetchTrace(job_id);
  if (!trace.ok()) {
    return ErrorResponse(request.id, CodeForStatus(trace.status()),
                         trace.status().message());
  }
  Json result = Json::Object();
  result.Set("job_id", Json::Number(static_cast<int64_t>(job_id)));
  result.Set("trace", Json::Str(std::move(*trace)));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleFlightRecorder(const Request& request) {
  Json events = Json::Array();
  size_t capacity = 0;
  uint64_t total = 0;
  if (flight_ != nullptr) {
    capacity = flight_->capacity();
    total = flight_->total_recorded();
    for (const std::string& line : flight_->Snapshot()) {
      // Every recorded line is rendered JSON, but a live endpoint should
      // not trust that: an unparseable line is returned as a raw string
      // rather than poisoning the whole response.
      Result<Json> parsed = Json::Parse(line);
      events.Push(parsed.ok() ? std::move(*parsed) : Json::Str(line));
    }
  }
  Json result = Json::Object();
  result.Set("events", std::move(events));
  result.Set("capacity", Json::Number(static_cast<int64_t>(capacity)));
  result.Set("total_recorded", Json::Number(static_cast<int64_t>(total)));
  return OkResponse(request.id, std::move(result));
}

std::string Server::HandleMetrics(const Request& request) {
  if (metrics_ == nullptr) {
    return OkResponse(request.id, Json::Object());
  }
  RefreshUptime();
  Result<Json> parsed = Json::Parse(metrics_->ToJson(true));
  if (!parsed.ok()) {
    return ErrorResponse(request.id, ErrorCode::kInternal,
                         parsed.status().ToString());
  }
  return OkResponse(request.id, std::move(*parsed));
}

void Server::ReapConnections(bool join_all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = it->get();
    if (join_all || conn->done.load(std::memory_order_acquire)) {
      if (conn->thread.joinable()) conn->thread.join();
      if (conn->fd >= 0) ::close(conn->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  if (connections_open_ != nullptr) {
    connections_open_->Set(static_cast<double>(conns_.size()));
  }
}

void Server::SeverConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (!conn->done.load(std::memory_order_acquire) && conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
}

}  // namespace serve
}  // namespace kanon
