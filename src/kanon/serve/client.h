#ifndef KANON_SERVE_CLIENT_H_
#define KANON_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "kanon/common/result.h"
#include "kanon/serve/framing.h"
#include "kanon/serve/json.h"

namespace kanon {
namespace serve {

/// A blocking kanond client: one TCP connection, sequential
/// request/response calls. Used by the kanond_client tool and the e2e test
/// harness; deliberately low-level enough (SendBytes, raw frames) that the
/// protocol-robustness tests can speak broken framing through it too.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port. `recv_timeout_ms` > 0 arms SO_RCVTIMEO so a
  /// wedged server cannot hang a test forever.
  static Result<Client> Connect(const std::string& host, int port,
                                int recv_timeout_ms = 0);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Raw bytes, no framing — how tests send truncated or hostile prefixes.
  Status SendBytes(const std::string& bytes);

  /// One protocol frame out / in.
  Status SendFrame(const std::string& payload);
  Result<std::string> ReadResponseFrame(
      size_t max_payload = kDefaultMaxFrameBytes);

  /// Sends {"id":<n>,"method":...,"params":...} and returns the decoded
  /// *response envelope* ({"id","ok","result"/"error"}) — the caller can
  /// branch on error.code. Transport problems surface as Status.
  Result<Json> CallRaw(const std::string& method, Json params);

  /// CallRaw, unwrapped: returns `result` on ok responses; a typed error
  /// response becomes a Status whose message is "<code>: <message>".
  Result<Json> Call(const std::string& method, Json params);

  /// Polls `poll` until the job leaves the queue/running states or
  /// `timeout_ms` elapses; returns the final snapshot (the caller checks
  /// "state" for done vs failed).
  Result<Json> WaitJob(uint64_t job_id, int poll_interval_ms = 20,
                       int timeout_ms = 120000);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  int64_t next_id_ = 1;
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_CLIENT_H_
