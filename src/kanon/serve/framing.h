#ifndef KANON_SERVE_FRAMING_H_
#define KANON_SERVE_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "kanon/common/result.h"

namespace kanon {
namespace serve {

/// The kanond wire format (docs/serving.md): every message — request or
/// response — is one frame, a 4-byte big-endian unsigned payload length
/// followed by that many bytes of UTF-8 JSON. Length 0 is a valid frame
/// with an empty payload (the peer will reject it as unparsable JSON, but
/// the framing layer itself stays in sync).
///
/// The functions below speak the format over a blocking socket fd. They
/// retry short reads/writes and EINTR, never raise SIGPIPE (writes use
/// MSG_NOSIGNAL), and report every failure as a Status so a malformed or
/// hostile peer can at worst get its own connection dropped.

/// Largest payload either side accepts by default: large enough for a
/// multi-hundred-thousand-row CSV job, small enough that a hostile length
/// prefix cannot balloon memory.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;  // 64 MiB.

/// Reads one frame. Error taxonomy, which the server maps to behavior:
///   - NotFound("clean eof"): the peer closed between frames (normal end).
///   - IOError: truncated prefix or payload, or a socket error — the frame
///     stream is out of sync and the connection must be dropped.
///   - InvalidArgument: the prefix announces more than `max_payload` bytes;
///     the connection must be dropped (the payload cannot be skipped
///     safely), but a typed error reply is still possible first.
Result<std::string> ReadFrame(int fd, size_t max_payload);

/// Writes one frame (prefix + payload), looping until complete.
Status WriteFrame(int fd, const std::string& payload);

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_FRAMING_H_
