#ifndef KANON_SERVE_HTTP_EXPORTER_H_
#define KANON_SERVE_HTTP_EXPORTER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "kanon/common/status.h"
#include "kanon/telemetry/flight_recorder.h"
#include "kanon/telemetry/metrics.h"

namespace kanon {
namespace serve {

struct HttpExporterOptions {
  /// Loopback by default, like the main listener: no authentication layer.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via HttpExporter::port().
  int port = 0;
  /// Not owned; may be null (the endpoint then serves an empty page).
  MetricsRegistry* metrics = nullptr;
  /// Not owned; may be null (GET /flight then 404s).
  FlightRecorder* flight = nullptr;
  /// Called before each /metrics render — the hook that refreshes
  /// scrape-time gauges (uptime) without a background ticker thread.
  std::function<void()> before_scrape;
};

/// A deliberately tiny HTTP/1.0 scrape listener so Prometheus (or curl)
/// can pull the daemon's metrics without speaking the kanond frame
/// protocol. One accept thread, connections served inline (a scrape is
/// one short request/response), bounded reads, `Connection: close` on
/// every response — no keep-alive, no chunking, no dependencies beyond
/// the sockets the server already uses.
///
/// Routes: GET /metrics (Prometheus text 0.0.4), GET /healthz ("ok"),
/// GET /flight (the flight recorder's current ring as JSON lines);
/// anything else is 404.
class HttpExporter {
 public:
  explicit HttpExporter(HttpExporterOptions options);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();
  int port() const { return port_; }

  /// Stops accepting and joins. Idempotent; called by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void ServeClient(int fd);

  const HttpExporterOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace kanon

#endif  // KANON_SERVE_HTTP_EXPORTER_H_
