#include "kanon/serve/table_store.h"

namespace kanon {
namespace serve {

Status TableStore::Register(const std::string& name,
                            std::shared_ptr<const PublishedTable> table) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tables_.find(name);
  if (it == tables_.end() && tables_.size() >= capacity_) {
    return Status::FailedPrecondition(
        "table store is full (" + std::to_string(capacity_) +
        " tables); remove one first");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

std::shared_ptr<const PublishedTable> TableStore::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

bool TableStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.erase(name) > 0;
}

size_t TableStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

std::vector<std::string> TableStore::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace serve
}  // namespace kanon
