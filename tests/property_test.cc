// Parameterized property sweeps: every anonymization pipeline, run over a
// grid of (n, k, seed, measure), must uphold the paper's invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/anonymizer.h"
#include "kanon/anonymity/verify.h"
#include "kanon/datasets/art.h"
#include "kanon/loss/entropy_measure.h"
#include "kanon/loss/lm_measure.h"
#include "kanon/loss/table_metrics.h"
#include "kanon/loss/tree_measure.h"
#include "test_util.h"

namespace kanon {
namespace {

using testing::SmallRandomDataset;
using testing::SmallScheme;
using testing::Unwrap;

enum class MeasureKind { kEntropy, kLm, kTree };

const LossMeasure& GetMeasure(MeasureKind kind) {
  static const EntropyMeasure em;
  static const LmMeasure lm;
  static const TreeMeasure tm;
  switch (kind) {
    case MeasureKind::kEntropy:
      return em;
    case MeasureKind::kLm:
      return lm;
    case MeasureKind::kTree:
      return tm;
  }
  KANON_CHECK(false);
  return em;
}

using SweepParam =
    std::tuple<size_t /*n*/, size_t /*k*/, uint64_t /*seed*/, MeasureKind,
               AnonymizationMethod>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, UpholdsInvariants) {
  const auto [n, k, seed, measure_kind, method] = GetParam();
  auto scheme = SmallScheme();
  Dataset d = SmallRandomDataset(*scheme, n, seed);
  PrecomputedLoss loss(scheme, d, GetMeasure(measure_kind));

  AnonymizerConfig config;
  config.k = k;
  config.method = method;
  AnonymizationResult result = Unwrap(Anonymize(d, loss, config));
  const GeneralizedTable& t = result.table;

  // Structural invariants.
  ASSERT_EQ(t.num_rows(), d.num_rows());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_TRUE(t.ConsistentPair(d, i, i)) << "row " << i;
  }

  // Loss is within [0, worst case 1 or log2(max domain)].
  EXPECT_GE(result.loss, 0.0);
  const double worst =
      measure_kind == MeasureKind::kEntropy ? std::log2(8.0) : 1.0;
  EXPECT_LE(result.loss, worst + 1e-9);

  // The promised anonymity notion holds — and so do all notions implied by
  // the Figure 1 inclusions.
  switch (method) {
    case AnonymizationMethod::kAgglomerative:
    case AnonymizationMethod::kModifiedAgglomerative:
    case AnonymizationMethod::kForest:
      EXPECT_TRUE(Unwrap(IsKAnonymous(t, k)));
      EXPECT_TRUE(Unwrap(IsGlobal1KAnonymous(d, t, k)));
      EXPECT_TRUE(Unwrap(IsKKAnonymous(d, t, k)));
      break;
    case AnonymizationMethod::kKKNearestNeighbors:
    case AnonymizationMethod::kKKGreedyExpansion:
      EXPECT_TRUE(Unwrap(IsKKAnonymous(d, t, k)));
      break;
    case AnonymizationMethod::kGlobal:
      EXPECT_TRUE(Unwrap(IsGlobal1KAnonymous(d, t, k)));
      EXPECT_TRUE(Unwrap(IsKKAnonymous(d, t, k)));
      break;
    case AnonymizationMethod::kFullDomain:
      EXPECT_TRUE(Unwrap(IsKAnonymous(t, k)));
      break;
  }

  // Every notion implies (1,k) and (k,1).
  EXPECT_TRUE(Unwrap(Is1KAnonymous(d, t, k)));
  EXPECT_TRUE(Unwrap(IsK1Anonymous(d, t, k)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Combine(
        ::testing::Values<size_t>(12, 33),
        ::testing::Values<size_t>(2, 4),
        ::testing::Values<uint64_t>(1, 2, 3),
        ::testing::Values(MeasureKind::kEntropy, MeasureKind::kLm),
        ::testing::Values(AnonymizationMethod::kAgglomerative,
                          AnonymizationMethod::kModifiedAgglomerative,
                          AnonymizationMethod::kForest,
                          AnonymizationMethod::kKKNearestNeighbors,
                          AnonymizationMethod::kKKGreedyExpansion,
                          AnonymizationMethod::kGlobal)));

// The tree measure in a separate, smaller sweep (it depends only on the
// hierarchy shape, so fewer seeds suffice).
INSTANTIATE_TEST_SUITE_P(
    TreeMeasure, PipelineSweep,
    ::testing::Combine(::testing::Values<size_t>(20),
                       ::testing::Values<size_t>(3),
                       ::testing::Values<uint64_t>(4),
                       ::testing::Values(MeasureKind::kTree),
                       ::testing::Values(
                           AnonymizationMethod::kAgglomerative,
                           AnonymizationMethod::kKKGreedyExpansion,
                           AnonymizationMethod::kGlobal)));

// Distance-function sweep: every distance function yields a valid
// k-anonymization whose clusters respect the size bounds.
using DistanceParam = std::tuple<DistanceFunction, size_t /*k*/, bool /*mod*/>;

class DistanceSweep : public ::testing::TestWithParam<DistanceParam> {};

TEST_P(DistanceSweep, ValidKAnonymization) {
  const auto [distance, k, modified] = GetParam();
  auto scheme = SmallScheme();
  Dataset d = SmallRandomDataset(*scheme, 41, 17);
  PrecomputedLoss loss(scheme, d, EntropyMeasure());
  AgglomerativeOptions options;
  options.distance = distance;
  options.modified = modified;
  Clustering c = Unwrap(AgglomerativeCluster(d, loss, k, options));
  EXPECT_TRUE(c.IsPartitionOf(41));
  EXPECT_GE(c.min_cluster_size(), k);
  GeneralizedTable t = TableFromClustering(scheme, d, c);
  EXPECT_TRUE(Unwrap(IsKAnonymous(t, k)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistanceSweep,
    ::testing::Combine(::testing::ValuesIn(kAllDistanceFunctions),
                       ::testing::Values<size_t>(2, 5),
                       ::testing::Bool()));

// The agglomerative engine uses lazily repaired nearest-neighbor caches;
// this sweep asserts (by exhaustive per-merge scan) that every merge it
// performs is at the globally minimal distance — i.e., the optimization is
// behavior-preserving with respect to Algorithm 1.
class ExactMergeSweep : public ::testing::TestWithParam<DistanceParam> {};

TEST_P(ExactMergeSweep, EveryMergeIsGloballyMinimal) {
  const auto [distance, k, modified] = GetParam();
  auto scheme = SmallScheme();
  for (uint64_t seed : {5u, 6u}) {
    Dataset d = SmallRandomDataset(*scheme, 28, seed);
    PrecomputedLoss loss(scheme, d, EntropyMeasure());
    AgglomerativeOptions options;
    options.distance = distance;
    options.modified = modified;
    options.check_exact_merges = true;  // KANON_CHECK aborts on violation.
    Clustering c = Unwrap(AgglomerativeCluster(d, loss, k, options));
    EXPECT_TRUE(c.IsPartitionOf(28));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactMergeSweep,
    ::testing::Combine(::testing::ValuesIn(kAllDistanceFunctions),
                       ::testing::Values<size_t>(2, 4),
                       ::testing::Bool()));

// ART-workload sweep: the paper's synthetic data with its exact
// generalization collections.
class ArtSweep : public ::testing::TestWithParam<size_t /*k*/> {};

TEST_P(ArtSweep, AllPipelinesValidOnArt) {
  const size_t k = GetParam();
  Workload w = Unwrap(MakeArtWorkload(60, 5));
  PrecomputedLoss loss(w.scheme, w.dataset, EntropyMeasure());
  for (AnonymizationMethod method :
       {AnonymizationMethod::kAgglomerative,
        AnonymizationMethod::kKKGreedyExpansion,
        AnonymizationMethod::kGlobal}) {
    AnonymizerConfig config;
    config.k = k;
    config.method = method;
    AnonymizationResult result = Unwrap(Anonymize(w.dataset, loss, config));
    EXPECT_TRUE(Unwrap(Is1KAnonymous(w.dataset, result.table, k)))
        << AnonymizationMethodName(method);
    EXPECT_TRUE(Unwrap(IsK1Anonymous(w.dataset, result.table, k)))
        << AnonymizationMethodName(method);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, ArtSweep, ::testing::Values<size_t>(2, 3, 6));

// Loss-measure properties over random hierarchies.
class MeasureSweep : public ::testing::TestWithParam<MeasureKind> {};

TEST_P(MeasureSweep, NonNegativeAndFreeSingletons) {
  const MeasureKind kind = GetParam();
  const LossMeasure& measure = GetMeasure(kind);
  Hierarchy h = Unwrap(Hierarchy::Intervals(12, {2, 4}));
  Rng rng(3);
  std::vector<uint32_t> counts(12);
  for (auto& c : counts) c = static_cast<uint32_t>(rng.NextBounded(20));
  for (SetId a = 0; a < h.num_sets(); ++a) {
    EXPECT_GE(measure.SetCost(h, counts, a), 0.0);
  }
  for (ValueCode v = 0; v < 12; ++v) {
    EXPECT_DOUBLE_EQ(measure.SetCost(h, counts, h.LeafOf(v)), 0.0);
  }
}

TEST_P(MeasureSweep, SizeMonotoneMeasuresAreMonotone) {
  // LM and the tree measure are monotone under set inclusion. The entropy
  // measure deliberately is not (a subset dominated by one heavy value can
  // have *lower* conditional entropy than a balanced smaller subset), so
  // only bound it by log2 of the subset size.
  const MeasureKind kind = GetParam();
  const LossMeasure& measure = GetMeasure(kind);
  Hierarchy h = Unwrap(Hierarchy::Intervals(12, {2, 4}));
  Rng rng(3);
  std::vector<uint32_t> counts(12);
  for (auto& c : counts) c = static_cast<uint32_t>(rng.NextBounded(20));
  for (SetId a = 0; a < h.num_sets(); ++a) {
    if (kind == MeasureKind::kEntropy) {
      EXPECT_LE(measure.SetCost(h, counts, a),
                std::log2(static_cast<double>(h.SizeOf(a))) + 1e-12);
      continue;
    }
    for (SetId b = 0; b < h.num_sets(); ++b) {
      if (h.set(a).IsSubsetOf(h.set(b))) {
        EXPECT_LE(measure.SetCost(h, counts, a),
                  measure.SetCost(h, counts, b) + 1e-12)
            << "sets " << a << " and " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, MeasureSweep,
                         ::testing::Values(MeasureKind::kEntropy,
                                           MeasureKind::kLm,
                                           MeasureKind::kTree));

}  // namespace
}  // namespace kanon
