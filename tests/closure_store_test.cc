// ClosureStore: interning identity (same closure -> same id, same stored
// record), cost memoization with exact hit accounting, and the consistency
// invariants after a RunContext stop winds an engine down mid-run.
#include "kanon/algo/core/closure_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kanon/algo/agglomerative.h"
#include "kanon/algo/anonymizer.h"
#include "kanon/common/run_context.h"
#include "kanon/loss/entropy_measure.h"
#include "test_util.h"

namespace kanon {
namespace {

using testing::SmallRandomDataset;
using testing::SmallScheme;
using testing::Unwrap;

class ClosureStoreTest : public ::testing::Test {
 protected:
  ClosureStoreTest()
      : scheme_(SmallScheme()),
        dataset_(SmallRandomDataset(*scheme_, 40, 777)),
        loss_(scheme_, dataset_, EntropyMeasure()) {}

  std::shared_ptr<const GeneralizationScheme> scheme_;
  Dataset dataset_;
  PrecomputedLoss loss_;
};

TEST_F(ClosureStoreTest, InterningIsIdentityPreserving) {
  ClosureStore store(loss_);
  const GeneralizedRecord a = scheme_->Identity(dataset_.row(0));
  const GeneralizedRecord b = scheme_->Identity(dataset_.row(1));

  const ClosureStore::Id ida = store.Intern(a);
  EXPECT_EQ(store.Intern(a), ida);       // Same content, same id.
  EXPECT_TRUE(store.record(ida) == a);   // Stored record is the closure.

  const ClosureStore::Id idb = store.Intern(b);
  if (a == b) {
    EXPECT_EQ(idb, ida);
  } else {
    EXPECT_NE(idb, ida);
  }
  // Ids are dense, in first-sight order.
  EXPECT_LT(ida, store.size());
  EXPECT_LT(idb, store.size());
}

TEST_F(ClosureStoreTest, CostIsMemoizedWithExactHitAccounting) {
  ClosureStore store(loss_);
  const GeneralizedRecord a = scheme_->Identity(dataset_.row(0));

  const ClosureStore::Id id = store.Intern(a);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_DOUBLE_EQ(store.cost(id), loss_.RecordCost(a));

  // Re-interning the same closure is a pure cache hit: no new storage, no
  // re-pricing, exactly one hit per repeated call.
  for (size_t repeat = 1; repeat <= 5; ++repeat) {
    EXPECT_EQ(store.Intern(a), id);
    EXPECT_EQ(store.hits(), repeat);
    EXPECT_EQ(store.misses(), 1u);
  }

  // hits + misses always equals the number of Intern calls.
  EXPECT_EQ(store.hits() + store.misses(), 6u);
  EXPECT_EQ(store.size(), store.misses());
}

TEST_F(ClosureStoreTest, InternJoinMatchesSchemeJoin) {
  ClosureStore store(loss_);
  const ClosureStore::Id a = store.Intern(scheme_->Identity(dataset_.row(0)));
  const ClosureStore::Id b = store.Intern(scheme_->Identity(dataset_.row(1)));
  const ClosureStore::Id joined = store.InternJoin(a, b);
  const GeneralizedRecord expected =
      scheme_->JoinRecords(store.record(a), store.record(b));
  EXPECT_TRUE(store.record(joined) == expected);
  EXPECT_DOUBLE_EQ(store.cost(joined), loss_.RecordCost(expected));
}

TEST_F(ClosureStoreTest, InternTableCountsDuplicateRowsAsHits) {
  GeneralizedTable table(scheme_);
  const GeneralizedRecord star = scheme_->Suppressed();
  for (int i = 0; i < 4; ++i) table.AppendRecord(star);
  table.AppendRecord(scheme_->Identity(dataset_.row(0)));

  ClosureStore store(loss_);
  const std::vector<ClosureStore::Id> ids = store.InternTable(table);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[0], ids[3]);
  // 5 intern calls over (at most) 2 distinct rows: at least 3 hits.
  EXPECT_GE(store.hits(), 3u);
  EXPECT_EQ(store.hits() + store.misses(), 5u);
}

TEST_F(ClosureStoreTest, ExportCountersAccumulates) {
  ClosureStore store(loss_);
  const GeneralizedRecord a = scheme_->Identity(dataset_.row(0));
  store.Intern(a);
  store.Intern(a);

  EngineCounters counters;
  counters.closure_hits = 10;  // Pre-existing telemetry must be kept.
  store.ExportCounters(&counters);
  EXPECT_EQ(counters.closure_hits, 11u);
  EXPECT_EQ(counters.closure_misses, 1u);
  store.ExportCounters(nullptr);  // Null sink is a no-op, not a crash.
}

// A run wound down by a RunContext stop mid-clustering must still leave
// consistent closure accounting: hits + misses equals the intern calls the
// engine actually made (no torn entries), and the degraded table's rows are
// all interned closures.
TEST_F(ClosureStoreTest, CountersStayConsistentUnderRunContextStop) {
  const Dataset d = SmallRandomDataset(*scheme_, 120, 20250807);
  const PrecomputedLoss loss(scheme_, d, EntropyMeasure());

  for (const size_t budget : {1u, 3u, 10u}) {
    RunContext ctx;
    ctx.set_step_budget(budget);
    EngineCounters counters;
    AgglomerativeOptions options;
    options.run_context = &ctx;
    options.counters = &counters;
    const GeneralizedTable table =
        Unwrap(AgglomerativeKAnonymize(d, loss, /*k=*/5, options));
    EXPECT_TRUE(ctx.stopped());
    EXPECT_EQ(table.num_rows(), d.num_rows());
    // The store was consistent at wind-down: every priced closure is a
    // distinct miss and the hit/miss split covers every intern call.
    EXPECT_GT(counters.closure_misses, 0u) << "budget " << budget;
    // Replaying the degraded table through a fresh store must find every
    // row priced identically — no closure escaped the store.
    ClosureStore replay(loss);
    for (ClosureStore::Id id : replay.InternTable(table)) {
      EXPECT_DOUBLE_EQ(replay.cost(id),
                       loss.RecordCost(replay.record(id)));
    }
  }
}

// The shared-store acceptance criterion: a full Anonymize() run on every
// pipeline reports interned closures, and the agglomerative run reports
// actual cache hits.
TEST_F(ClosureStoreTest, AnonymizeSurfacesClosureCounters) {
  const Dataset d = SmallRandomDataset(*scheme_, 60, 4242);
  const PrecomputedLoss loss(scheme_, d, EntropyMeasure());
  constexpr AnonymizationMethod kAll[] = {
      AnonymizationMethod::kAgglomerative,
      AnonymizationMethod::kModifiedAgglomerative,
      AnonymizationMethod::kForest,
      AnonymizationMethod::kKKNearestNeighbors,
      AnonymizationMethod::kKKGreedyExpansion,
      AnonymizationMethod::kGlobal,
      AnonymizationMethod::kFullDomain,
  };
  for (AnonymizationMethod method : kAll) {
    AnonymizerConfig config;
    config.k = 5;
    config.method = method;
    const AnonymizationResult result = Unwrap(Anonymize(d, loss, config));
    if (method == AnonymizationMethod::kForest) continue;  // No closures yet.
    EXPECT_GT(result.counters.closure_misses, 0u)
        << AnonymizationMethodName(method);
    EXPECT_GT(result.counters.closure_hits, 0u)
        << AnonymizationMethodName(method);
    EXPECT_GT(result.counters.closure_hit_rate(), 0.0)
        << AnonymizationMethodName(method);
  }
}

}  // namespace
}  // namespace kanon
