#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "kanon/datasets/adult.h"
#include "kanon/datasets/art.h"
#include "kanon/datasets/cmc.h"
#include "test_util.h"

namespace kanon {
namespace {

using testing::Unwrap;

TEST(ArtWorkloadTest, ShapeMatchesPaper) {
  Workload w = Unwrap(MakeArtWorkload(500, 1));
  EXPECT_EQ(w.name, "ART");
  EXPECT_EQ(w.dataset.num_rows(), 500u);
  ASSERT_EQ(w.dataset.num_attributes(), 6u);
  const size_t domain_sizes[] = {2, 4, 4, 25, 10, 5};
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(w.dataset.schema().attribute(j).size(), domain_sizes[j]);
    EXPECT_EQ(w.scheme->hierarchy(j).domain_size(), domain_sizes[j]);
    EXPECT_TRUE(w.scheme->hierarchy(j).IsLaminar());
  }
}

TEST(ArtWorkloadTest, SubsetCountsMatchPaper) {
  Workload w = Unwrap(MakeArtWorkload(10, 1));
  // Singletons + full set + the paper's non-trivial groups.
  EXPECT_EQ(w.scheme->hierarchy(0).num_sets(), 2u + 1u);
  EXPECT_EQ(w.scheme->hierarchy(1).num_sets(), 4u + 1u + 2u);
  EXPECT_EQ(w.scheme->hierarchy(2).num_sets(), 4u + 1u + 2u);
  EXPECT_EQ(w.scheme->hierarchy(3).num_sets(), 25u + 1u + 6u);
  EXPECT_EQ(w.scheme->hierarchy(4).num_sets(), 10u + 1u + 6u);
  EXPECT_EQ(w.scheme->hierarchy(5).num_sets(), 5u + 1u + 3u);
}

TEST(ArtWorkloadTest, DistributionsApproximatelyMatch) {
  Workload w = Unwrap(MakeArtWorkload(40000, 7));
  const std::vector<uint32_t> counts = w.dataset.ValueCounts(0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.7, 0.02);
  EXPECT_NEAR(counts[1] / 40000.0, 0.3, 0.02);
  const std::vector<uint32_t> c6 = w.dataset.ValueCounts(5);
  EXPECT_NEAR(c6[2] / 40000.0, 0.5, 0.02);
}

TEST(ArtWorkloadTest, DeterministicInSeed) {
  Workload a = Unwrap(MakeArtWorkload(100, 42));
  Workload b = Unwrap(MakeArtWorkload(100, 42));
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.dataset.row(i), b.dataset.row(i));
  }
  Workload c = Unwrap(MakeArtWorkload(100, 43));
  bool any_diff = false;
  for (size_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = a.dataset.row(i) != c.dataset.row(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ArtWorkloadTest, RejectsZeroRows) {
  EXPECT_FALSE(MakeArtWorkload(0, 1).ok());
}

TEST(AdultWorkloadTest, ShapeAndHierarchies) {
  Workload w = Unwrap(MakeAdultWorkload(300, 3));
  EXPECT_EQ(w.name, "ADT");
  EXPECT_EQ(w.dataset.num_rows(), 300u);
  ASSERT_EQ(w.dataset.num_attributes(), 9u);
  EXPECT_EQ(w.dataset.schema().attribute(0).name(), "age");
  EXPECT_EQ(w.dataset.schema().attribute(8).name(), "native-country");
  EXPECT_EQ(w.dataset.schema().attribute(8).size(), 41u);
  for (size_t j = 0; j < 9; ++j) {
    EXPECT_TRUE(w.scheme->hierarchy(j).IsLaminar()) << "attribute " << j;
  }
  EXPECT_TRUE(w.dataset.has_class_column());
  EXPECT_EQ(w.dataset.class_domain().size(), 2u);
}

TEST(AdultWorkloadTest, MarginalsRoughlyRealistic) {
  Workload w = Unwrap(MakeAdultWorkload(20000, 5));
  // work-class: Private dominates.
  const auto workclass = w.dataset.ValueCounts(1);
  EXPECT_NEAR(workclass[0] / 20000.0, 0.73, 0.03);
  // native-country: United-States ≈ 0.9.
  const auto country = w.dataset.ValueCounts(8);
  const ValueCode us =
      Unwrap(w.dataset.schema().attribute(8).CodeOf("United-States"));
  EXPECT_NEAR(country[us] / 20000.0, 0.9, 0.03);
  // sex: ~2/3 male.
  const auto sex = w.dataset.ValueCounts(7);
  EXPECT_NEAR(sex[0] / 20000.0, 0.67, 0.03);
}

TEST(AdultWorkloadTest, RelationshipFollowsMaritalAndSex) {
  Workload w = Unwrap(MakeAdultWorkload(5000, 9));
  const Schema& schema = w.dataset.schema();
  const ValueCode married = Unwrap(schema.attribute(3).CodeOf("Married-civ-spouse"));
  const ValueCode male = Unwrap(schema.attribute(7).CodeOf("Male"));
  const ValueCode husband = Unwrap(schema.attribute(5).CodeOf("Husband"));
  const ValueCode wife = Unwrap(schema.attribute(5).CodeOf("Wife"));
  size_t married_males = 0;
  size_t husbands = 0;
  size_t wrong_wife = 0;
  for (size_t i = 0; i < w.dataset.num_rows(); ++i) {
    if (w.dataset.at(i, 3) == married && w.dataset.at(i, 7) == male) {
      ++married_males;
      if (w.dataset.at(i, 5) == husband) ++husbands;
      if (w.dataset.at(i, 5) == wife) ++wrong_wife;
    }
  }
  ASSERT_GT(married_males, 100u);
  EXPECT_GT(husbands, married_males * 9 / 10);
  EXPECT_EQ(wrong_wife, 0u);
}

TEST(AdultWorkloadTest, AgeBandsJoin) {
  Workload w = Unwrap(MakeAdultWorkload(10, 1));
  const Hierarchy& age = w.scheme->hierarchy(0);
  // Ages 17 and 21 (codes 0 and 4) share the first 5-year band.
  EXPECT_EQ(age.SizeOf(age.Join(age.LeafOf(0), age.LeafOf(4))), 5u);
  // Codes 0 and 9 need a 10-year band.
  EXPECT_EQ(age.SizeOf(age.Join(age.LeafOf(0), age.LeafOf(9))), 10u);
}

TEST(AdultWorkloadTest, LoadRealFileRoundTrip) {
  // Synthesize a tiny adult.data-shaped file and load it.
  const char* path = "/tmp/kanon_adult_test.data";
  {
    std::ofstream f(path);
    f << "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
         " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n";
    f << "50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse,"
         " Exec-managerial, Husband, White, Male, 0, 0, 13, United-States,"
         " >50K\n";
    f << "38, ?, 215646, HS-grad, 9, Divorced, Handlers-cleaners,"
         " Not-in-family, White, Male, 0, 0, 40, United-States, <=50K\n";
  }
  Workload w = Unwrap(LoadAdultWorkload(path, 0));
  EXPECT_EQ(w.dataset.num_rows(), 2u);  // The '?' row is skipped.
  EXPECT_EQ(w.dataset.schema().attribute(0).label(w.dataset.at(0, 0)), "39");
  EXPECT_EQ(w.dataset.class_of(0), 0);
  EXPECT_EQ(w.dataset.class_of(1), 1);
  std::remove(path);
}

TEST(AdultWorkloadTest, LoadRespectsMaxRows) {
  const char* path = "/tmp/kanon_adult_test2.data";
  {
    std::ofstream f(path);
    for (int i = 0; i < 5; ++i) {
      f << "40, Private, 1, HS-grad, 9, Divorced, Sales, Not-in-family,"
           " White, Female, 0, 0, 40, Canada, <=50K\n";
    }
  }
  Workload w = Unwrap(LoadAdultWorkload(path, 3));
  EXPECT_EQ(w.dataset.num_rows(), 3u);
  std::remove(path);
}

TEST(AdultWorkloadTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadAdultWorkload("/nonexistent/adult.data", 0).ok());
}

TEST(CmcWorkloadTest, ShapeAndHierarchies) {
  Workload w = Unwrap(MakeCmcWorkload(1473, 2));
  EXPECT_EQ(w.name, "CMC");
  EXPECT_EQ(w.dataset.num_rows(), 1473u);
  ASSERT_EQ(w.dataset.num_attributes(), 9u);
  EXPECT_TRUE(w.dataset.has_class_column());
  EXPECT_EQ(w.dataset.class_domain().size(), 3u);
  for (size_t j = 0; j < 9; ++j) {
    EXPECT_TRUE(w.scheme->hierarchy(j).IsLaminar()) << "attribute " << j;
  }
}

TEST(CmcWorkloadTest, MarginalsRoughlyRealistic) {
  Workload w = Unwrap(MakeCmcWorkload(20000, 3));
  // Wife education skews high.
  const auto edu = w.dataset.ValueCounts(1);
  EXPECT_GT(edu[3], edu[0]);
  // Media exposure overwhelmingly "good" (code 0).
  const auto media = w.dataset.ValueCounts(8);
  EXPECT_NEAR(media[0] / 20000.0, 0.926, 0.02);
}

TEST(CmcWorkloadTest, ClassCorrelatesWithChildlessness) {
  Workload w = Unwrap(MakeCmcWorkload(20000, 4));
  size_t childless = 0;
  size_t childless_no_use = 0;
  size_t parent = 0;
  size_t parent_no_use = 0;
  for (size_t i = 0; i < w.dataset.num_rows(); ++i) {
    if (w.dataset.at(i, 3) == 0) {
      ++childless;
      if (w.dataset.class_of(i) == 0) ++childless_no_use;
    } else {
      ++parent;
      if (w.dataset.class_of(i) == 0) ++parent_no_use;
    }
  }
  ASSERT_GT(childless, 200u);
  EXPECT_GT(childless_no_use * parent,
            parent_no_use * childless);  // Rate comparison.
}

TEST(CmcWorkloadTest, LoadRealFileFormat) {
  const char* path = "/tmp/kanon_cmc_test.data";
  {
    std::ofstream f(path);
    f << "24,2,3,3,1,1,2,3,0,1\n";
    f << "45,1,3,10,1,1,3,4,0,1\n";
    f << "43,2,3,7,1,1,3,4,0,2\n";
  }
  Workload w = Unwrap(LoadCmcWorkload(path));
  EXPECT_EQ(w.dataset.num_rows(), 3u);
  EXPECT_EQ(w.dataset.schema().attribute(0).label(w.dataset.at(0, 0)), "24");
  EXPECT_EQ(w.dataset.class_of(0), 0);
  EXPECT_EQ(w.dataset.class_of(2), 1);
  std::remove(path);
}

TEST(CmcWorkloadTest, LoadRejectsBadClass) {
  const char* path = "/tmp/kanon_cmc_bad.data";
  {
    std::ofstream f(path);
    f << "24,2,3,3,1,1,2,3,0,9\n";
  }
  EXPECT_FALSE(LoadCmcWorkload(path).ok());
  std::remove(path);
}


TEST(ArtWorkloadTest, PaperGroupsArePermissible) {
  // Spot-check that the exact subsets printed in Section VI exist.
  Workload w = Unwrap(MakeArtWorkload(10, 1));
  const Hierarchy& a4 = w.scheme->hierarchy(3);
  // {a1..a6} and {a13..a25} (1-based) must be permissible subsets.
  ValueSet first(25);
  for (ValueCode v = 0; v < 6; ++v) first.Insert(v);
  EXPECT_TRUE(a4.IdOf(first).ok());
  ValueSet second(25);
  for (ValueCode v = 12; v < 25; ++v) second.Insert(v);
  EXPECT_TRUE(a4.IdOf(second).ok());
  // An unlisted subset, e.g. {a1,a7}, is not permissible.
  EXPECT_FALSE(a4.IdOf(ValueSet::Of(25, {0, 6})).ok());

  const Hierarchy& a6 = w.scheme->hierarchy(5);
  EXPECT_TRUE(a6.IdOf(ValueSet::Of(5, {2, 3, 4})).ok());   // {a3,a4,a5}.
  EXPECT_FALSE(a6.IdOf(ValueSet::Of(5, {0, 1, 2})).ok());  // Not listed.
}

TEST(AdultWorkloadTest, LoaderRejectsOutOfRangeAge) {
  const char* path = "/tmp/kanon_adult_badage.data";
  {
    std::ofstream f(path);
    f << "12, Private, 1, HS-grad, 9, Divorced, Sales, Not-in-family,"
         " White, Female, 0, 0, 40, Canada, <=50K\n";
  }
  EXPECT_FALSE(LoadAdultWorkload(path, 0).ok());
  std::remove(path);
}

}  // namespace
}  // namespace kanon
